//! Degenerate-configuration edge cases: empty place sets, k larger than
//! |P|, a single cell, protection ranges covering the whole space, one
//! unit. All schemes must agree with the oracle and never panic.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::naive::{NaiveIncremental, NaiveRecompute};
use ctup::core::oracle::Oracle;
use ctup::core::types::{LocationUpdate, Place, PlaceId, UnitId};
use ctup::core::{BasicCtup, OptCtup};
use ctup::spatial::{Grid, Point};
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;

fn all_algorithms(
    config: &CtupConfig,
    store: &Arc<dyn PlaceStore>,
    units: &[Point],
) -> Vec<Box<dyn CtupAlgorithm>> {
    vec![
        Box::new(NaiveRecompute::new(config.clone(), store.clone(), units).expect("clean store")),
        Box::new(NaiveIncremental::new(config.clone(), store.clone(), units).expect("clean store")),
        Box::new(BasicCtup::new(config.clone(), store.clone(), units).expect("clean store")),
        Box::new(OptCtup::new(config.clone(), store.clone(), units).expect("clean store")),
    ]
}

fn drive_and_check(
    config: CtupConfig,
    store: Arc<dyn PlaceStore>,
    mut units: Vec<Point>,
    moves: &[(u32, Point)],
) {
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    let mut algs = all_algorithms(&config, &store, &units);
    let radius = config.protection_radius;
    for alg in &algs {
        oracle.assert_result_matches(&alg.result(), &units, radius, config.mode);
    }
    for &(unit, new) in moves {
        units[unit as usize] = new;
        for alg in algs.iter_mut() {
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit),
                new,
            })
            .expect("clean store");
            oracle.assert_result_matches(&alg.result(), &units, radius, config.mode);
        }
    }
}

fn jagged_moves() -> Vec<(u32, Point)> {
    vec![
        (0, Point::new(0.9, 0.9)),
        (0, Point::new(0.1, 0.9)),
        (0, Point::new(0.5, 0.5)),
        (0, Point::new(0.500001, 0.5)),
        (0, Point::new(0.0, 0.0)),
        (0, Point::new(1.0, 1.0)),
    ]
}

#[test]
fn empty_place_set() {
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(4), vec![]));
    drive_and_check(
        CtupConfig::with_k(5),
        store,
        vec![Point::new(0.5, 0.5)],
        &jagged_moves(),
    );
}

#[test]
fn k_larger_than_place_count() {
    let places = vec![
        Place::point(PlaceId(0), Point::new(0.2, 0.2), 3),
        Place::point(PlaceId(1), Point::new(0.8, 0.8), 1),
    ];
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(4), places));
    drive_and_check(
        CtupConfig::with_k(10),
        store,
        vec![Point::new(0.5, 0.5)],
        &jagged_moves(),
    );
}

#[test]
fn single_cell_grid() {
    let places: Vec<Place> = (0..30)
        .map(|i| Place::point(PlaceId(i), Point::new(i as f64 / 30.0, 0.5), 1 + i % 4))
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(1), places));
    drive_and_check(
        CtupConfig::with_k(5),
        store,
        vec![Point::new(0.5, 0.5), Point::new(0.1, 0.5)],
        &jagged_moves(),
    );
}

#[test]
fn protection_range_covering_the_whole_space() {
    // Every unit protects everything: all relations are Full everywhere.
    let places: Vec<Place> = (0..20)
        .map(|i| Place::point(PlaceId(i), Point::new(i as f64 / 20.0, 0.3), 1 + i % 3))
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(5), places));
    let config = CtupConfig {
        protection_radius: 2.0,
        ..CtupConfig::with_k(4)
    };
    drive_and_check(config, store, vec![Point::new(0.5, 0.5)], &jagged_moves());
}

#[test]
fn tiny_protection_range() {
    let places: Vec<Place> = (0..20)
        .map(|i| Place::point(PlaceId(i), Point::new(i as f64 / 20.0, 0.5), 1))
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(5), places));
    let config = CtupConfig {
        protection_radius: 1e-6,
        ..CtupConfig::with_k(3)
    };
    drive_and_check(config, store, vec![Point::new(0.5, 0.5)], &jagged_moves());
}

#[test]
fn stacked_places_and_units() {
    // Many places at the same position, unit exactly on top of them.
    let places: Vec<Place> = (0..10)
        .map(|i| Place::point(PlaceId(i), Point::new(0.5, 0.5), i))
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(3), places));
    let units = vec![Point::new(0.5, 0.5), Point::new(0.5, 0.5)];
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    let config = CtupConfig::with_k(4);
    let mut algs = all_algorithms(&config, &store, &units);
    let mut positions = units;
    // Move both units off and back on the stack.
    for &(unit, new) in &[
        (0u32, Point::new(0.9, 0.9)),
        (1, Point::new(0.9, 0.9)),
        (0, Point::new(0.5, 0.5)),
        (1, Point::new(0.5, 0.5)),
    ] {
        positions[unit as usize] = new;
        for alg in algs.iter_mut() {
            alg.handle_update(LocationUpdate {
                unit: UnitId(unit),
                new,
            })
            .expect("clean store");
            oracle.assert_result_matches(&alg.result(), &positions, 0.1, QueryMode::TopK(4));
        }
    }
}

#[test]
fn threshold_never_matched() {
    let places: Vec<Place> = (0..15)
        .map(|i| Place::point(PlaceId(i), Point::new(i as f64 / 15.0, 0.5), 0))
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(4), places));
    let config = CtupConfig {
        mode: QueryMode::Threshold(-100),
        ..CtupConfig::paper_default()
    };
    let mut opt =
        OptCtup::new(config, store.clone(), &[Point::new(0.5, 0.5)]).expect("clean store");
    assert!(opt.result().is_empty());
    for (unit, new) in jagged_moves() {
        opt.handle_update(LocationUpdate {
            unit: UnitId(unit),
            new,
        })
        .expect("clean store");
        assert!(opt.result().is_empty());
    }
    // Nothing can ever cross the threshold, so no cell is ever accessed.
    assert_eq!(opt.metrics().cells_accessed, 0);
}

#[test]
fn zero_required_protection_everywhere() {
    // All safeties are >= 0; the top-k is still well-defined.
    let places: Vec<Place> = (0..25)
        .map(|i| {
            Place::point(
                PlaceId(i),
                Point::new((i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0),
                0,
            )
        })
        .collect();
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(5), places));
    drive_and_check(
        CtupConfig::with_k(6),
        store,
        vec![Point::new(0.4, 0.4)],
        &jagged_moves(),
    );
}
