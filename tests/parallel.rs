//! Differential suite for the sharded parallel engine.
//!
//! The sharded engine's contract: for any update stream, any shard
//! count, and any cell-cache configuration, its `SK`, its top-k safety
//! sequence, and every entry strictly below `SK` must equal the
//! sequential [`OptCtup`]'s at every timestamp, and the reported set
//! must match the brute-force oracle. Entries *tied at* `SK` are
//! unordered by definition (the oracle makes the same allowance):
//! sequential `OptCtup` only maintains a place once its cell's bound
//! falls strictly below `SK`, so its pick among equal-safety places is
//! access-history-dependent, while the sharded merge always reports the
//! canonical smallest `(safety, place)` pairs. With one shard the two
//! engines coincide exactly. These tests sweep the shard-count ×
//! cache-size matrix over seeded workloads — including a degraded feed
//! produced by the chaos suite's fault plans — so a merge bug, an
//! ownership-partition bug, or a stale cache read cannot hide behind a
//! lucky interleaving.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::ingest::{stamp_stream, IngestConfig, IngestGate, StampedUpdate};
use ctup::core::metrics::ResilienceStats;
use ctup::core::types::{LocationUpdate, TopKEntry, UnitId};
use ctup::core::{OptCtup, Oracle, ShardedCtup};
use ctup::mogen::{FaultPlan, PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::{Grid, Point};
use ctup::storage::{CachedStore, CellLocalStore, PlaceStore};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

const NUM_UNITS: u32 = 20;
const RADIUS: f64 = 0.1;
const K: usize = 10;

/// Miri executes threads faithfully but slowly; the nightly Miri job gets
/// a short stream while CI and local runs sweep the full one.
const STEPS: usize = if cfg!(miri) { 10 } else { 250 };

fn setup(seed: u64) -> (Workload, Arc<dyn PlaceStore>) {
    let workload = Workload::generate(WorkloadParams {
        num_units: NUM_UNITS,
        places: PlaceGenConfig {
            count: 1_000,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    (workload, store)
}

fn updates_from(workload: &mut Workload, n: usize) -> Vec<LocationUpdate> {
    workload
        .next_updates(n)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect()
}

/// Wraps `base` in a cell-read cache of `pages` pages; zero leaves the
/// store unwrapped, matching the CLI's `--cell-cache-pages 0` default.
fn with_cache(base: &Arc<dyn PlaceStore>, pages: u64) -> Arc<dyn PlaceStore> {
    if pages == 0 {
        base.clone()
    } else {
        Arc::new(CachedStore::new(base.clone(), pages))
    }
}

/// Asserts the sharded-vs-sequential contract: identical `SK`, identical
/// top-k safety sequence (both results are sorted by `(safety, place)`,
/// so equal sequences mean equal safety multisets), and identical
/// entries strictly below `SK`. The tail tied *at* `SK` is
/// implementation-chosen on both sides — callers verify its truthfulness
/// against the oracle — and with one shard the results must be exactly
/// equal, tie picks included.
fn assert_equivalent(seq: &OptCtup, sharded: &ShardedCtup, num_shards: u32, label: &str) {
    let sk = seq.sk();
    assert_eq!(sk, sharded.sk(), "{label}: SK");
    let seq_result = seq.result();
    let sharded_result = sharded.result();
    if num_shards <= 1 {
        assert_eq!(
            seq_result, sharded_result,
            "{label}: single shard must be exact"
        );
        return;
    }
    let safeties: Vec<_> = seq_result.iter().map(|e| e.safety).collect();
    let sharded_safeties: Vec<_> = sharded_result.iter().map(|e| e.safety).collect();
    assert_eq!(safeties, sharded_safeties, "{label}: safety sequence");
    let strictly_below = |result: &[TopKEntry]| -> Vec<TopKEntry> {
        result
            .iter()
            .filter(|e| sk.is_none_or(|sk| e.safety < sk))
            .copied()
            .collect()
    };
    assert_eq!(
        strictly_below(&seq_result),
        strictly_below(&sharded_result),
        "{label}: entries strictly below SK"
    );
}

/// The core differential sweep: shard counts 1, 2, 3, 7 × cache budgets
/// 0 (disabled), 1 (pathological thrash), and large (whole grid resident).
/// The sharded engine must stay equivalent to the sequential `OptCtup`
/// after every single update, and oracle-true throughout the run.
#[test]
fn sharded_matches_sequential_for_all_shard_counts_and_cache_sizes() {
    for num_shards in [1u32, 2, 3, 7] {
        for cache_pages in [0u64, 1, 256] {
            let seed = 0x5EED ^ u64::from(num_shards) ^ (cache_pages << 8);
            let (mut workload, base) = setup(seed);
            let units = workload.unit_positions();
            let config = CtupConfig::with_k(K);
            let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
            let mut sharded =
                ShardedCtup::new(config, with_cache(&base, cache_pages), &units, num_shards)
                    .expect("clean store");
            let label = format!("{num_shards} shards, {cache_pages} cache pages");
            assert_equivalent(&seq, &sharded, num_shards, &format!("{label}: init"));
            let oracle = Oracle::from_store(base.as_ref()).expect("clean store");
            oracle.assert_result_matches(&sharded.result(), &units, RADIUS, QueryMode::TopK(K));

            let mut positions = units.clone();
            for (step, update) in updates_from(&mut workload, STEPS).into_iter().enumerate() {
                seq.handle_update(update).expect("seq update");
                sharded.handle_update(update).expect("sharded update");
                positions[update.unit.index()] = update.new;
                assert_equivalent(&seq, &sharded, num_shards, &format!("{label}: step {step}"));
                // The oracle pass is brute force over every place; sample it.
                if step % 50 == 49 {
                    oracle.assert_result_matches(
                        &sharded.result(),
                        &positions,
                        RADIUS,
                        QueryMode::TopK(K),
                    );
                }
            }
            oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
        }
    }
}

/// Randomly poisons a wire report, mirroring the chaos suite: NaN
/// coordinate, position far outside the monitored space, or an unknown
/// unit id. The ingest gate must reject all three.
fn corrupt_report(report: &mut StampedUpdate, rng: &mut StdRng) {
    match rng.gen_range(0..3u8) {
        0 => report.update.new = Point::new(f64::NAN, report.update.new.y),
        1 => report.update.new = Point::new(5.0, 5.0),
        _ => report.update.unit = UnitId(10_000),
    }
}

/// The chaos-suite fault plans, pointed at the sharded engine: a degraded
/// feed (drops, duplicates, reordering, corruption) is run through the
/// ingest gate, and the surviving effective stream must drive the sharded
/// engine and the sequential `OptCtup` to equivalent results at every
/// timestamp — ending oracle-true.
#[test]
fn chaos_fault_plan_feed_is_exact_across_shards() {
    let (mut workload, base) = setup(0xC4A5);
    let units = workload.unit_positions();
    let clean = updates_from(&mut workload, if cfg!(miri) { 40 } else { 600 });
    let plan = FaultPlan {
        seed: 0xFA17,
        drop_prob: 0.06,
        dup_prob: 0.03,
        reorder_prob: 0.25,
        reorder_window: 5,
        corrupt_prob: 0.02,
        delay_prob: 0.02,
        max_delay: 12,
        ..FaultPlan::default()
    };
    let (degraded, log) = plan.apply(stamp_stream(clean), corrupt_report);
    assert!(log.dropped > 0 && log.duplicated > 0 && log.reordered > 0 && log.corrupted > 0);

    // The gate turns the degraded wire feed into the effective stream both
    // engines consume — exactly as the supervised pipeline would.
    let mut gate = IngestGate::new(IngestConfig {
        space: *base.grid().space(),
        num_units: NUM_UNITS as usize,
        lease_ttl: None,
    });
    let mut stats = ResilienceStats::default();
    let mut effective = Vec::new();
    for &wire in &degraded {
        if let Ok(admitted) = gate.admit(wire, &mut stats) {
            effective.extend(admitted);
        }
    }
    assert!(!effective.is_empty());

    let config = CtupConfig::with_k(K);
    let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
    let mut sharded =
        ShardedCtup::new(config, with_cache(&base, 128), &units, 3).expect("clean store");
    let mut positions = units.clone();
    let oracle = Oracle::from_store(base.as_ref()).expect("clean store");
    for (step, &update) in effective.iter().enumerate() {
        seq.handle_update(update).expect("seq update");
        sharded.handle_update(update).expect("sharded update");
        positions[update.unit.index()] = update.new;
        assert_equivalent(&seq, &sharded, 3, &format!("chaos step {step}"));
        if step % 100 == 99 {
            oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
        }
    }
    oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
}

/// Batched ingest with ragged batch sizes: the engine sees the stream as
/// batches of 1, 3, 8, 17, … while the sequential reference applies the
/// same updates one at a time. Results must stay equivalent at every
/// batch boundary (the engine's observable timestamps) and oracle-true
/// at the end.
#[test]
fn batched_ingest_matches_sequential_at_boundaries_with_cache() {
    let (mut workload, base) = setup(0xBA7C);
    let units = workload.unit_positions();
    let stream = updates_from(&mut workload, STEPS);
    let config = CtupConfig::with_k(K);
    let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
    let mut sharded =
        ShardedCtup::new(config, with_cache(&base, 64), &units, 4).expect("clean store");

    let sizes = [1usize, 3, 8, 17];
    let mut positions = units.clone();
    let mut fed = 0usize;
    let mut batch_no = 0usize;
    while fed < stream.len() {
        let take = sizes[batch_no % sizes.len()].min(stream.len() - fed);
        let batch = &stream[fed..fed + take];
        for &update in batch {
            seq.handle_update(update).expect("seq update");
            positions[update.unit.index()] = update.new;
        }
        sharded.handle_batch(batch.to_vec()).expect("batch");
        assert_equivalent(&seq, &sharded, 4, &format!("batch {batch_no}"));
        fed += take;
        batch_no += 1;
    }
    assert_eq!(sharded.metrics().updates_processed, stream.len() as u64);
    let oracle = Oracle::from_store(base.as_ref()).expect("clean store");
    oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
}

/// Degenerate population: fewer places than `k`, and more shards than
/// occupied cells — most shards own nothing. The merged result must still
/// be the full (short) list with `SK` absent, exactly like the sequential
/// scheme.
#[test]
fn fewer_places_than_k_with_mostly_empty_shards() {
    let places = vec![
        ctup::core::types::Place::point(ctup::core::types::PlaceId(0), Point::new(0.2, 0.2), 1),
        ctup::core::types::Place::point(ctup::core::types::PlaceId(1), Point::new(0.5, 0.55), 2),
        ctup::core::types::Place::point(ctup::core::types::PlaceId(2), Point::new(0.8, 0.8), 3),
    ];
    let base: Arc<dyn PlaceStore> =
        Arc::new(CellLocalStore::build(Grid::unit_square(8), places.clone()));
    let units: Vec<Point> = (0..6)
        .map(|i| Point::new(0.1 + 0.15 * f64::from(i), 0.5))
        .collect();
    let config = CtupConfig::with_k(K);
    let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
    let mut sharded =
        ShardedCtup::new(config, with_cache(&base, 16), &units, 7).expect("clean store");
    assert_eq!(seq.result(), sharded.result());
    assert_eq!(sharded.result().len(), places.len());
    assert_eq!(sharded.sk(), None);

    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..STEPS {
        let update = LocationUpdate {
            unit: UnitId((next() * 6.0) as u32 % 6),
            new: Point::new(next(), next()),
        };
        seq.handle_update(update).expect("seq update");
        sharded.handle_update(update).expect("sharded update");
        assert_eq!(seq.result(), sharded.result());
        assert_eq!(seq.sk(), sharded.sk());
        assert_eq!(sharded.sk(), None, "fewer than k places can have no SK");
    }
}

/// The cache must be transparent *and* effective: the same deterministic
/// sharded run consults the cache exactly as often as the uncached run
/// touches the lower level, only misses reach the lower level, and the
/// paged bytes read can only shrink.
#[test]
fn cache_consults_equal_uncached_lower_level_reads() {
    let run = |cache_pages: u64| {
        let (mut workload, base) = setup(0xCAFE);
        let units = workload.unit_positions();
        let stream = updates_from(&mut workload, STEPS);
        let store = with_cache(&base, cache_pages);
        let mut sharded =
            ShardedCtup::new(CtupConfig::with_k(K), store, &units, 2).expect("clean store");
        for &update in &stream {
            sharded.handle_update(update).expect("sharded update");
        }
        (sharded.result(), base.stats().snapshot())
    };
    let (uncached_result, uncached) = run(0);
    let (cached_result, cached) = run(256);
    assert_eq!(uncached_result, cached_result, "cache changed the result");
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(uncached.cache_misses, 0);
    // Determinism: both runs issue the same logical cell-read sequence, so
    // every uncached lower-level read is a cache consult in the cached run.
    assert_eq!(cached.cache_hits + cached.cache_misses, uncached.cell_reads);
    // Only misses reach the lower level.
    assert_eq!(cached.cell_reads, cached.cache_misses);
    assert!(cached.pages_read <= uncached.pages_read);
}
