//! Write-invalidation racing the cell-read cache.
//!
//! The repo's lower-level stores are read-only, so in normal runs the
//! [`CachedStore`] is coherent by construction — which means the
//! write-invalidation path (`invalidate_cell` / `invalidate_all`) and its
//! race against the unlocked miss window only get exercised when something
//! deliberately attacks them. These tests do exactly that, three ways:
//! invalidation storms at batch boundaries (differential vs. the
//! sequential engine), a hook store that fires an invalidation inside
//! *every* miss window (the deterministic worst case — every insert is
//! raced), and a real-thread invalidator hammering the cache while the
//! sharded engine runs. The deterministic-schedule version of the same
//! race lives in `ctup_sched::models::cache`, where every interleaving of
//! the miss protocol is explored exhaustively.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::core::{OptCtup, Oracle, ShardedCtup};
use ctup::mogen::{PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::{CellId, Grid};
use ctup::storage::{
    CachedStore, CellLocalStore, PlaceRecord, PlaceStore, StorageError, StorageStats,
};
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};

const NUM_UNITS: u32 = 16;
const RADIUS: f64 = 0.1;
const K: usize = 8;
const STEPS: usize = if cfg!(miri) { 8 } else { 200 };

fn setup(seed: u64) -> (Workload, Arc<dyn PlaceStore>) {
    let workload = Workload::generate(WorkloadParams {
        num_units: NUM_UNITS,
        places: PlaceGenConfig {
            count: 600,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    (workload, store)
}

fn updates_from(workload: &mut Workload, n: usize) -> Vec<LocationUpdate> {
    workload
        .next_updates(n)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect()
}

/// Invalidation storms between batches: after every batch the test drops
/// a rotating slice of cells from the cache (and periodically the whole
/// cache). A coherent cache must make this entirely invisible — identical
/// results to the sequential uncached engine at every boundary, and the
/// final answer oracle-true.
#[test]
fn invalidation_storm_between_batches_is_transparent() {
    let (mut workload, base) = setup(0x1A7E);
    let units = workload.unit_positions();
    let stream = updates_from(&mut workload, STEPS);
    let config = CtupConfig::with_k(K);
    let cache = Arc::new(CachedStore::new(base.clone(), 64));
    let cache_as_store: Arc<dyn PlaceStore> = cache.clone();
    let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
    let mut sharded = ShardedCtup::new(config, cache_as_store, &units, 3).expect("clean store");

    let all_cells: Vec<CellId> = base.grid().cells().collect();
    let mut positions = units.clone();
    for (batch_no, chunk) in stream.chunks(5).enumerate() {
        for &update in chunk {
            seq.handle_update(update).expect("seq update");
            positions[update.unit.index()] = update.new;
        }
        sharded.handle_batch(chunk.to_vec()).expect("batch");
        assert_eq!(
            seq.sk(),
            sharded.sk(),
            "batch {batch_no}: SK diverged under invalidation storm"
        );
        assert_eq!(
            seq.result().iter().map(|e| e.safety).collect::<Vec<_>>(),
            sharded
                .result()
                .iter()
                .map(|e| e.safety)
                .collect::<Vec<_>>(),
            "batch {batch_no}: safety sequence diverged under invalidation storm"
        );
        // The storm: drop a rotating third of the grid, and every fourth
        // batch the whole cache.
        for cell in all_cells.iter().skip(batch_no % 3).step_by(3) {
            cache.invalidate_cell(*cell);
        }
        if batch_no % 4 == 3 {
            cache.invalidate_all();
            assert_eq!(cache.resident_pages(), 0, "invalidate_all left residents");
        }
    }
    let oracle = Oracle::from_store(base.as_ref()).expect("clean store");
    oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
}

/// A lower level that invalidates the wrapping cache in the middle of
/// every `read_cell` — i.e. inside the unlocked miss window, after the
/// cache captured its generation and before it re-locks to insert. With
/// the generation check, every such raced insert must be refused.
struct InvalidatingStore {
    inner: Arc<dyn PlaceStore>,
    target: Mutex<Option<Weak<CachedStore>>>,
}

impl PlaceStore for InvalidatingStore {
    fn grid(&self) -> &Grid {
        self.inner.grid()
    }
    fn num_places(&self) -> usize {
        self.inner.num_places()
    }
    fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
        let target = self.target.lock().expect("hook lock");
        if let Some(cache) = target.as_ref().and_then(Weak::upgrade) {
            cache.invalidate_cell(cell);
        }
        self.inner.read_cell(cell)
    }
    fn cell_extent_margin(&self, cell: CellId) -> f64 {
        self.inner.cell_extent_margin(cell)
    }
    fn cell_pages(&self, cell: CellId) -> u64 {
        self.inner.cell_pages(cell)
    }
    fn stats(&self) -> &StorageStats {
        self.inner.stats()
    }
    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
        self.inner.for_each_place(f)
    }
}

/// Every miss raced: the hook store invalidates the touched cell inside
/// every miss window, so the generation check must refuse every insert.
/// The engine must still compute exact results (raced reads are served,
/// just not cached), and nothing may ever become resident.
#[test]
fn every_miss_raced_by_invalidation_still_serves_true_data() {
    let (mut workload, base) = setup(0xACED);
    let units = workload.unit_positions();
    let stream = updates_from(&mut workload, STEPS);
    let hook = Arc::new(InvalidatingStore {
        inner: base.clone(),
        target: Mutex::new(None),
    });
    let cache = Arc::new(CachedStore::new(hook.clone(), 64));
    *hook.target.lock().expect("hook lock") = Some(Arc::downgrade(&cache));
    let cache_as_store: Arc<dyn PlaceStore> = cache.clone();

    let config = CtupConfig::with_k(K);
    let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
    let mut sharded = ShardedCtup::new(config, cache_as_store, &units, 2).expect("clean store");
    let mut positions = units.clone();
    for (step, update) in stream.into_iter().enumerate() {
        seq.handle_update(update).expect("seq update");
        sharded.handle_update(update).expect("sharded update");
        positions[update.unit.index()] = update.new;
        assert_eq!(seq.sk(), sharded.sk(), "step {step}: SK diverged");
        assert_eq!(
            cache.resident_pages(),
            0,
            "step {step}: a raced insert slipped past the generation check"
        );
    }
    let snap = base.stats().snapshot();
    assert_eq!(
        snap.cache_hits, 0,
        "nothing was cacheable, so nothing may hit"
    );
    assert!(
        snap.cache_misses > 0,
        "the engine never consulted the cache"
    );
    let oracle = Oracle::from_store(base.as_ref()).expect("clean store");
    oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
}

/// Real threads: an invalidator loops over every cell (plus periodic full
/// flushes) while the main thread drives the sharded engine — the shard
/// workers' cache reads genuinely race the invalidations. Any torn state,
/// deadlock, or stale read shows up as a divergence from the sequential
/// engine or an oracle failure. This is also the suite the ThreadSanitizer
/// CI job runs, where a data race fails the build even if the results
/// happen to come out right.
#[test]
fn concurrent_invalidator_thread_never_perturbs_results() {
    let (mut workload, base) = setup(0x7EAD);
    let units = workload.unit_positions();
    let stream = updates_from(&mut workload, STEPS);
    let config = CtupConfig::with_k(K);
    let cache = Arc::new(CachedStore::new(base.clone(), 32));
    let cache_as_store: Arc<dyn PlaceStore> = cache.clone();
    let mut seq = OptCtup::new(config.clone(), base.clone(), &units).expect("clean store");
    let mut sharded = ShardedCtup::new(config, cache_as_store, &units, 3).expect("clean store");

    let stop = Arc::new(AtomicBool::new(false));
    let invalidator = {
        let cache = cache.clone();
        let stop = stop.clone();
        let cells: Vec<CellId> = cache.grid().cells().collect();
        std::thread::spawn(move || {
            let mut laps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for &cell in &cells {
                    cache.invalidate_cell(cell);
                }
                laps += 1;
                if laps.is_multiple_of(8) {
                    cache.invalidate_all();
                }
                std::thread::yield_now();
            }
            laps
        })
    };

    let mut positions = units.clone();
    for (step, update) in stream.into_iter().enumerate() {
        seq.handle_update(update).expect("seq update");
        sharded.handle_update(update).expect("sharded update");
        positions[update.unit.index()] = update.new;
        assert_eq!(
            seq.sk(),
            sharded.sk(),
            "step {step}: SK diverged under invalidator"
        );
        assert_eq!(
            seq.result().iter().map(|e| e.safety).collect::<Vec<_>>(),
            sharded
                .result()
                .iter()
                .map(|e| e.safety)
                .collect::<Vec<_>>(),
            "step {step}: safety sequence diverged under invalidator"
        );
    }
    stop.store(true, Ordering::Relaxed);
    let laps = invalidator.join().expect("invalidator thread panicked");
    assert!(laps > 0, "the invalidator never ran a full lap");
    let oracle = Oracle::from_store(base.as_ref()).expect("clean store");
    oracle.assert_result_matches(&sharded.result(), &positions, RADIUS, QueryMode::TopK(K));
}
