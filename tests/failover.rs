//! Failover: a standby restored from a checkpoint must behave exactly
//! like the primary from that point on — identical results and identical
//! logical costs, with no re-initialization scan — and the two-level
//! recovery subsystem must survive a kill matrix:
//!
//! * **Level 1** — the front door revives its own engine from the
//!   durable slot + journal tail and exits degraded mode on its own.
//! * **Level 2** — a warm standby follows the replication stream,
//!   promotes behind a fencing probe when the primary goes dark, fences
//!   stale-epoch frames, and serves the oracle-exact top-k. A primary
//!   that comes back during the dark window aborts the promotion.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::checkpoint::Checkpoint;
use ctup::core::config::CtupConfig;
use ctup::core::ingest::{stamp_stream, TracedReport};
use ctup::core::net::wire::{FrameDecoder, FrameWriter, Message, MAX_CHUNK_DATA};
use ctup::core::net::{
    ClientConfig, EngineReviver, EngineSink, FailoverDialer, FeedClient, IngestServer,
    NetServerConfig, PipelineSink, RecoveryConfig, RecoveryPlan, SinkError, StandbyConfig,
    StandbyPhase, StandbyServer, TcpDialer,
};
use ctup::core::supervisor::{ResilienceConfig, SupervisedPipeline};
use ctup::core::types::{LocationUpdate, TopKEntry, UnitId};
use ctup::core::{DurableState, OptCtup, Oracle, QueryMode};
use ctup::mogen::{PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{CellLocalStore, PlaceStore};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn setup(seed: u64) -> (Workload, Arc<dyn PlaceStore>) {
    let params = WorkloadParams {
        num_units: 30,
        places: PlaceGenConfig {
            count: 2_000,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    };
    let workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    (workload, store)
}

#[test]
fn restored_monitor_is_indistinguishable_from_the_primary() {
    let (mut workload, store) = setup(71);
    let units = workload.unit_positions();
    let mut primary =
        OptCtup::new(CtupConfig::paper_default(), store.clone(), &units).expect("clean store");

    // Warm phase on the primary.
    for update in workload.next_updates(500) {
        primary
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
    }

    // Checkpoint, serialize through the text codec, restore on a "standby".
    let mut buf = Vec::new();
    primary
        .checkpoint()
        .write(&mut buf)
        .expect("write checkpoint");
    let restored_cp = Checkpoint::read(buf.as_slice()).expect("read checkpoint");
    let mut standby = OptCtup::restore(restored_cp, store.clone()).expect("restore checkpoint");

    assert_eq!(
        standby.result(),
        primary.result(),
        "results differ right after restore"
    );
    assert_eq!(standby.sk(), primary.sk());
    assert_eq!(standby.maintained_places(), primary.maintained_places());
    assert_eq!(standby.dechash_len(), primary.dechash_len());
    // Restore never touches the lower level.
    let io_before = store.stats().snapshot();

    // Both servers process the same tail of the stream and must stay in
    // lockstep, including their logical costs.
    let p_before = primary.metrics().clone();
    let s_before = standby.metrics().clone();
    for update in workload.next_updates(500) {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        primary.handle_update(location_update).expect("clean store");
        standby.handle_update(location_update).expect("clean store");
        assert_eq!(standby.result(), primary.result());
    }
    let p_delta = primary.metrics().since(&p_before);
    let s_delta = standby.metrics().since(&s_before);
    assert_eq!(p_delta.cells_accessed, s_delta.cells_accessed);
    assert_eq!(p_delta.lb_decrements, s_delta.lb_decrements);
    assert_eq!(
        p_delta.lb_decrements_suppressed,
        s_delta.lb_decrements_suppressed
    );
    standby.check_lb_invariant();

    let io = store.stats().snapshot().since(&io_before);
    // Only the continued monitoring reads cells, and both monitors read the
    // same amount; crucially there is no |P|-sized re-initialization scan.
    assert!(
        io.records_read < 2 * 500 * 40,
        "restore caused excessive lower-level traffic: {io:?}"
    );
}

#[test]
fn checkpoint_roundtrips_with_extents_and_threshold_mode() {
    let params = WorkloadParams {
        num_units: 10,
        places: PlaceGenConfig {
            count: 500,
            extent_prob: 0.3,
            extent_max_side: 0.03,
            ..PlaceGenConfig::default()
        },
        seed: 72,
        ..WorkloadParams::default()
    };
    let mut workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(6),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();
    let config = CtupConfig {
        mode: ctup::core::QueryMode::Threshold(-2),
        ..CtupConfig::paper_default()
    };
    let mut primary = OptCtup::new(config, store.clone(), &units).expect("clean store");
    for update in workload.next_updates(200) {
        primary
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
    }
    let mut buf = Vec::new();
    primary.checkpoint().write(&mut buf).unwrap();
    let mut standby = OptCtup::restore(Checkpoint::read(buf.as_slice()).unwrap(), store)
        .expect("restore checkpoint");
    assert_eq!(standby.result(), primary.result());
    for update in workload.next_updates(200) {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        primary.handle_update(location_update).expect("clean store");
        standby.handle_update(location_update).expect("clean store");
        assert_eq!(standby.result(), primary.result());
    }
}

// ---------------------------------------------------------------------
// Two-level recovery kill matrix.
// ---------------------------------------------------------------------

const RADIUS: f64 = 0.1;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctup-failover-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn clean_stream(workload: &mut Workload, n: usize) -> Vec<LocationUpdate> {
    workload
        .next_updates(n)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect()
}

/// A durable pipeline sink pair for the primary front door.
fn durable_sink(
    store: &Arc<dyn PlaceStore>,
    units: &[ctup::spatial::Point],
    resilience: ResilienceConfig,
) -> Arc<dyn EngineSink> {
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), units).expect("clean store");
    let initial = monitor.result();
    let pipeline = SupervisedPipeline::spawn(monitor, resilience, 4096);
    Arc::new(PipelineSink::new(pipeline, initial))
}

/// Level-1 reviver: rebuilds the engine from the durable directory and
/// seeds the fresh sink with the restore-time top-k (pipeline events only
/// carry changes).
struct DirReviver {
    dir: PathBuf,
    store: Arc<dyn PlaceStore>,
    resilience: ResilienceConfig,
}

impl EngineReviver for DirReviver {
    fn revive(&self) -> Result<Arc<dyn EngineSink>, String> {
        let (checkpoint, _journal) =
            DurableState::load(&self.dir).map_err(|e| format!("load: {e:?}"))?;
        let preview = OptCtup::restore(checkpoint, Arc::clone(&self.store))
            .map_err(|e| format!("restore: {e:?}"))?;
        let initial = preview.result();
        drop(preview);
        let pipeline = SupervisedPipeline::recover_from_dir::<OptCtup>(
            &self.dir,
            Arc::clone(&self.store),
            self.resilience.clone(),
            4096,
        )
        .map_err(|e| format!("recover: {e:?}"))?;
        Ok(Arc::new(PipelineSink::new(pipeline, initial)))
    }
}

/// Reserves a loopback address by binding and immediately dropping a
/// listener; the port is then free for the promoted server to claim.
fn reserve_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("reserved addr")
}

/// Waits for the standby's `wal_applied` counter to stop moving (no feed
/// is active, so in-flight replication frames drain within milliseconds)
/// and returns its settled value.
fn settled_wal_applied(standby: &StandbyServer) -> u64 {
    let mut last = standby.status().wal_applied;
    let mut stable_since = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = standby.status().wal_applied;
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_millis(250) {
            return last;
        }
        assert!(
            Instant::now() < deadline,
            "wal_applied never settled (last {last})"
        );
    }
}

/// Acks are durable-gated: a report is acked once journaled, which can be
/// *before* the engine applied it and before the watchdog's periodic
/// last-good refresh observed the result. Polls a top-k reader until its
/// value holds still, returning the settled result.
fn settled_topk(read: impl Fn() -> Vec<TopKEntry>) -> Vec<TopKEntry> {
    let mut last = read();
    let mut stable_since = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = read();
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_millis(300) {
            return last;
        }
        assert!(Instant::now() < deadline, "top-k never settled");
    }
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, deadline: Duration, mut probe: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !probe() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Level 1: the engine is killed mid-stream and the front door revives it
/// from the durable slot + journal tail on its own — every offered report
/// is acked, degraded mode clears without an operator, and the final
/// top-k is oracle-exact.
#[test]
fn level_one_self_heal_revives_the_engine_and_stays_oracle_exact() {
    let (mut workload, store) = setup(81);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 600);
    let stamped = stamp_stream(clean.clone());
    let dir = temp_dir("selfheal");

    let resilience = ResilienceConfig {
        checkpoint_every: 48,
        state_dir: Some(dir.clone()),
        kill_at: Some(300),
        tear_slot_on_kill: true,
        ..ResilienceConfig::default()
    };
    let sink = durable_sink(&store, &units, resilience.clone());
    let recovery = RecoveryPlan {
        reviver: Arc::new(DirReviver {
            dir: dir.clone(),
            store: store.clone(),
            resilience: ResilienceConfig {
                kill_at: None,
                tear_slot_on_kill: false,
                ..resilience
            },
        }),
        config: RecoveryConfig {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            ..RecoveryConfig::default()
        },
    };
    let mut cfg = NetServerConfig::default();
    cfg.admission.ingest_deadline = Duration::from_secs(10);
    let server =
        IngestServer::spawn_with_recovery("127.0.0.1:0", cfg, sink, Some(recovery)).unwrap();

    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(60)).expect("clean links");
    let stats = client.finish();
    // Reports that arrive while the reviver is rebuilding the engine are
    // shed at the door with `EngineDegraded` — that is degraded mode
    // working as designed, and the client is told. What self-heal must
    // guarantee: every other report is acked, nothing hangs, and nothing
    // acked is lost.
    assert_eq!(
        stats.acked + stats.shed_total(),
        600,
        "every report must become terminal: {stats:?}"
    );
    assert!(
        stats
            .sheds
            .iter()
            .all(|s| s.reason == ctup::core::net::ShedReason::EngineDegraded),
        "only revival-window sheds are acceptable: {stats:?}"
    );

    wait_for("degraded mode to clear", Duration::from_secs(15), || {
        !server.degraded()
    });
    assert!(
        !server.breaker_tripped(),
        "one kill must not trip the breaker"
    );
    let topk = settled_topk(|| server.last_good_topk());
    let net = server.shutdown();
    assert_eq!(net.engine_restarts, 1, "exactly one revival: {net:?}");
    assert_eq!(net.reports_accepted, stats.acked);
    assert!(!net.degraded, "degraded mode must have cleared");

    // Oracle truth over exactly the applied (acked) updates: the client's
    // wire seq is assigned at enqueue, so seq i maps to `clean[i - 1]`.
    let shed_seqs: std::collections::HashSet<u64> = stats.sheds.iter().map(|s| s.seq).collect();
    let mut positions = units.clone();
    for (i, update) in clean.iter().enumerate() {
        if !shed_seqs.contains(&(u64::try_from(i).expect("fits") + 1)) {
            positions[update.unit.index()] = update.new;
        }
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(&topk, &positions, RADIUS, QueryMode::TopK(10));
    std::fs::remove_dir_all(&dir).ok();
}

/// The engine can die *after* the admission queue has drained — with no
/// further hand-off to fail, only the pump's idle liveness probe can
/// notice. The unacked in-flight tail must be re-fed to the revived
/// engine and acked, not hang until the client gives up.
#[test]
fn silent_engine_death_after_queue_drain_is_probed_and_healed() {
    /// Accepts every hand-off but only takes durable ownership of the
    /// first 100; once everything was handed it reports itself dead —
    /// so death is only observable through the probe, never through a
    /// failing `try_ingest`.
    struct SilentlyDyingSink {
        handed: AtomicU64,
    }
    impl EngineSink for SilentlyDyingSink {
        fn try_ingest(&self, _report: TracedReport) -> Result<(), SinkError> {
            self.handed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn topk(&self) -> Vec<TopKEntry> {
            Vec::new()
        }
        fn durable_mark(&self) -> u64 {
            self.handed.load(Ordering::SeqCst).min(100)
        }
        fn dead(&self) -> bool {
            self.handed.load(Ordering::SeqCst) >= 200
        }
    }
    /// The revived engine: durable immediately, never dies.
    struct HealthySink {
        handed: AtomicU64,
    }
    impl EngineSink for HealthySink {
        fn try_ingest(&self, _report: TracedReport) -> Result<(), SinkError> {
            self.handed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn topk(&self) -> Vec<TopKEntry> {
            Vec::new()
        }
        fn durable_mark(&self) -> u64 {
            self.handed.load(Ordering::SeqCst)
        }
    }
    struct FreshReviver;
    impl EngineReviver for FreshReviver {
        fn revive(&self) -> Result<Arc<dyn EngineSink>, String> {
            Ok(Arc::new(HealthySink {
                handed: AtomicU64::new(0),
            }))
        }
    }

    let plan = RecoveryPlan {
        reviver: Arc::new(FreshReviver),
        config: RecoveryConfig {
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            ..RecoveryConfig::default()
        },
    };
    let sink: Arc<dyn EngineSink> = Arc::new(SilentlyDyingSink {
        handed: AtomicU64::new(0),
    });
    let mut cfg = NetServerConfig::default();
    cfg.admission.ingest_deadline = Duration::from_secs(10);
    let server = IngestServer::spawn_with_recovery("127.0.0.1:0", cfg, sink, Some(plan)).unwrap();

    let (mut workload, _store) = setup(80);
    let stamped = stamp_stream(clean_stream(&mut workload, 200));
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    let stats = client.finish();
    assert_eq!(
        stats.acked, 200,
        "the probed recovery must ack the hanging tail: {stats:?}"
    );
    assert!(stats.sheds.is_empty(), "no report may be shed: {stats:?}");
    wait_for("degraded mode to clear", Duration::from_secs(10), || {
        !server.degraded()
    });
    let net = server.shutdown();
    assert_eq!(
        net.engine_restarts, 1,
        "exactly one probed revival: {net:?}"
    );
    assert_eq!(net.shed_total(), 0);
}

/// Level 2, mid-batch kill: the primary dies with the client's feed still
/// in flight. The standby promotes at epoch + 1 behind the fencing probe,
/// the client walks over via its failover address list, and the promoted
/// server finishes the feed — zero acked-report loss, oracle-exact.
#[test]
fn standby_promotes_after_primary_death_and_serves_the_oracle_topk() {
    let (mut workload, store) = setup(82);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 600);
    let stamped = stamp_stream(clean.clone());
    let dir_primary = temp_dir("promote-primary");
    let dir_standby = temp_dir("promote-standby");

    let resilience = ResilienceConfig {
        checkpoint_every: 32,
        state_dir: Some(dir_primary.clone()),
        ..ResilienceConfig::default()
    };
    let sink = durable_sink(&store, &units, resilience);
    let cfg = NetServerConfig {
        state_dir: Some(dir_primary.clone()),
        epoch: 1,
        ..NetServerConfig::default()
    };
    let primary = IngestServer::spawn("127.0.0.1:0", cfg, sink).unwrap();
    let primary_addr = primary.local_addr();

    let standby_addr = reserve_addr();
    let standby = StandbyServer::spawn::<OptCtup>(
        StandbyConfig {
            primary_ingest: primary_addr,
            serve_addr: standby_addr.to_string(),
            resilience: ResilienceConfig {
                state_dir: Some(dir_standby.clone()),
                ..ResilienceConfig::default()
            },
            probe_interval: Duration::from_millis(50),
            probe_failures: 2,
            ..StandbyConfig::default()
        },
        store.clone(),
    );

    // Phase 1a: a priming batch makes the primary's durable state real so
    // the standby's checkpoint sync can complete. Every report is acked
    // (= durable) before the standby bootstraps, so the checkpoint plus
    // journal covers the batch exactly.
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(primary_addr)),
        ClientConfig::default(),
    );
    for &report in &stamped[..64] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    assert_eq!(client.finish().acked, 64);
    wait_for("checkpoint sync", Duration::from_secs(10), || {
        standby.status().phase == StandbyPhase::Following
    });
    assert_eq!(standby.status().epoch, 1);
    // The sync may have landed mid-priming, in which case part of the
    // priming batch arrives as journal or live frames and counts toward
    // `wal_applied`. Let the counter settle before taking the baseline.
    let base = settled_wal_applied(&standby);

    // Phase 1b: the rest of the pre-kill feed arrives over the live WAL
    // tail; each frame is fresh (not in the shipped checkpoint), so
    // `wal_applied` counts it on top of the baseline.
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(primary_addr)),
        ClientConfig::default(),
    );
    for &report in &stamped[64..300] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    assert_eq!(client.finish().acked, 236);
    wait_for("live WAL tail", Duration::from_secs(10), || {
        standby.status().wal_applied >= base + 236
    });

    // Kill the primary. The standby's probes go dark and it promotes.
    let net = primary.shutdown();
    assert_eq!(net.reports_accepted, 300);
    wait_for("promotion", Duration::from_secs(10), || {
        standby.status().phase == StandbyPhase::Promoted
    });
    let status = standby.status();
    assert_eq!(status.epoch, 2, "promotion must bump the fencing epoch");
    let promoted = standby.promoted_addr().expect("promoted front door");
    assert_eq!(promoted, standby_addr);
    let health = standby.promoted_health().expect("promoted health");
    assert!(
        health.contains("\"failovers\":1") && health.contains("\"epoch\":2"),
        "promoted health must report the failover: {health}"
    );

    // Phase 2: the rest of the feed walks over to the promoted server.
    let mut client = FeedClient::new(
        Box::new(FailoverDialer::new(vec![primary_addr, standby_addr])),
        ClientConfig::default(),
    );
    for &report in &stamped[300..] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("walk-over");
    let stats = client.finish();
    assert_eq!(
        stats.acked, 300,
        "the promoted server must accept the tail: {stats:?}"
    );

    let topk = settled_topk(|| standby.promoted_topk().expect("promoted top-k"));
    let mut positions = units.clone();
    for update in &clean {
        positions[update.unit.index()] = update.new;
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(&topk, &positions, RADIUS, QueryMode::TopK(10));

    standby.shutdown();
    std::fs::remove_dir_all(&dir_primary).ok();
    std::fs::remove_dir_all(&dir_standby).ok();
}

/// Kill before/during checkpoint ship: a standby that never completed a
/// sync has nothing correct to serve, so it must keep retrying — never
/// promote, never fail into serving garbage.
#[test]
fn standby_never_promotes_without_a_synced_checkpoint() {
    let (_workload, store) = setup(83);
    let dead = reserve_addr();
    let standby = StandbyServer::spawn::<OptCtup>(
        StandbyConfig {
            primary_ingest: dead,
            serve_addr: "127.0.0.1:0".to_string(),
            probe_interval: Duration::from_millis(25),
            probe_failures: 1,
            resync_delay: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(100),
            ..StandbyConfig::default()
        },
        store,
    );
    std::thread::sleep(Duration::from_millis(600));
    let status = standby.status();
    assert_eq!(
        status.phase,
        StandbyPhase::Syncing,
        "an unsynced standby must keep retrying"
    );
    assert!(standby.promoted_addr().is_none());
    standby.shutdown();
}

/// Kill mid-promotion window: the primary drops its connections but comes
/// back before the standby's probe budget runs out. The fencing probe
/// answers, so the standby aborts the promotion and resyncs — no dual
/// primary.
#[test]
fn revived_primary_aborts_promotion_via_the_fencing_probe() {
    let (mut workload, store) = setup(84);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 200);
    let stamped = stamp_stream(clean);
    let dir = temp_dir("fence");

    let resilience = ResilienceConfig {
        checkpoint_every: 32,
        state_dir: Some(dir.clone()),
        ..ResilienceConfig::default()
    };
    let sink = durable_sink(&store, &units, resilience.clone());
    let cfg = NetServerConfig {
        state_dir: Some(dir.clone()),
        ..NetServerConfig::default()
    };
    let primary = IngestServer::spawn("127.0.0.1:0", cfg.clone(), sink).unwrap();
    let primary_addr = primary.local_addr();

    // The whole feed is durable before the standby bootstraps, so its
    // first checkpoint sync carries everything and it settles into
    // Following with nothing left to tail.
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(primary_addr)),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    assert_eq!(client.finish().acked, 200);

    let standby = StandbyServer::spawn::<OptCtup>(
        StandbyConfig {
            primary_ingest: primary_addr,
            serve_addr: "127.0.0.1:0".to_string(),
            probe_interval: Duration::from_millis(300),
            probe_failures: 3,
            ..StandbyConfig::default()
        },
        store.clone(),
    );
    wait_for("checkpoint sync", Duration::from_secs(10), || {
        standby.status().phase == StandbyPhase::Following
    });

    // Bounce the primary: down just long enough to lose the replication
    // connection, back up before three 300 ms probes all go dark.
    primary.shutdown();
    let replacement = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let sink = SupervisedPipeline::recover_from_dir::<OptCtup>(
                &dir,
                store.clone(),
                ResilienceConfig {
                    state_dir: Some(dir.clone()),
                    ..ResilienceConfig::default()
                },
                4096,
            )
            .map(|pipeline| {
                Arc::new(PipelineSink::new(pipeline, Vec::new())) as Arc<dyn EngineSink>
            })
            .expect("recover replacement");
            match IngestServer::spawn(&primary_addr.to_string(), cfg.clone(), sink) {
                Ok(server) => break server,
                Err(e) => {
                    assert!(Instant::now() < deadline, "rebind failed for 5s: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };

    // Give the standby a full probe cycle plus slack: it must observe the
    // loss, probe, find the primary alive, and go back to following.
    std::thread::sleep(Duration::from_millis(1_500));
    let status = standby.status();
    assert_ne!(
        status.phase,
        StandbyPhase::Promoted,
        "a live primary must fence the promotion: {status:?}"
    );
    assert_eq!(status.epoch, 1, "no epoch bump without promotion");
    assert!(standby.promoted_addr().is_none());

    standby.shutdown();
    replacement.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Epoch fencing on the replication stream itself: frames stamped with a
/// stale epoch are rejected and counted; only current-epoch frames are
/// applied. Driven by a hand-rolled fake primary speaking the wire
/// protocol.
#[test]
fn stale_epoch_wal_frames_are_rejected_by_the_standby() {
    let (workload, store) = setup(85);
    let units = workload.unit_positions();
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units).expect("clean store");
    let mut body = Vec::new();
    monitor.checkpoint().write(&mut body).expect("checkpoint");

    let listener = TcpListener::bind("127.0.0.1:0").expect("fake primary");
    let addr = listener.local_addr().expect("addr");
    const EPOCH: u64 = 5;
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("standby dials");
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .expect("timeout");
        let mut decoder = FrameDecoder::new();
        // The subscribe frame.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match decoder.read_from(&mut stream) {
                Ok(Message::CheckpointOffer { .. }) => break,
                Ok(other) => panic!("expected subscribe, got {other:?}"),
                Err(e) if e.is_timeout() => {
                    assert!(Instant::now() < deadline, "no subscribe frame");
                }
                Err(e) => panic!("read error: {e:?}"),
            }
        }
        let mut writer = FrameWriter::new();
        writer.push(&Message::CheckpointOffer {
            epoch: EPOCH,
            slot_seq: 0,
            total_len: u64::try_from(body.len()).expect("length fits"),
        });
        let mut offset = 0usize;
        while offset < body.len() {
            let end = (offset + MAX_CHUNK_DATA).min(body.len());
            writer.push(&Message::CheckpointChunk {
                epoch: EPOCH,
                offset: u64::try_from(offset).expect("offset fits"),
                data: body[offset..end].to_vec(),
            });
            offset = end;
        }
        // Three stale frames from "the previous epoch", two current ones.
        for (epoch, unit, unit_seq) in [
            (EPOCH - 1, 0u32, 7u64),
            (EPOCH - 1, 1, 7),
            (EPOCH - 1, 2, 7),
            (EPOCH, 0, 1),
            (EPOCH, 1, 1),
        ] {
            writer.push(&Message::WalAppend {
                epoch,
                unit_seq,
                ts: unit_seq,
                unit,
                x: 0.5,
                y: 0.5,
                trace: 0,
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < deadline, "standby never hung up");
            match writer.flush_into(&mut stream) {
                Ok(true) => {}
                Ok(false) => continue,
                Err(_) => return, // standby closed — done
            }
            // Hold the connection open until the standby says goodbye.
            match decoder.read_from(&mut stream) {
                Ok(Message::Bye { .. }) => return,
                Ok(_) => {}
                Err(e) if e.is_timeout() => {}
                Err(_) => return,
            }
        }
    });

    let standby = StandbyServer::spawn::<OptCtup>(
        StandbyConfig {
            primary_ingest: addr,
            serve_addr: "127.0.0.1:0".to_string(),
            // No probes during the scripted exchange.
            probe_interval: Duration::from_secs(30),
            probe_failures: 100,
            ..StandbyConfig::default()
        },
        store,
    );
    wait_for("the scripted frames", Duration::from_secs(10), || {
        let status = standby.status();
        status.wal_applied >= 2 && status.stale_rejected >= 3
    });
    let status = standby.status();
    assert_eq!(status.phase, StandbyPhase::Following);
    assert_eq!(status.epoch, EPOCH);
    assert_eq!(status.wal_applied, 2, "both current-epoch frames apply");
    assert_eq!(status.stale_rejected, 3, "all stale frames bounce");
    standby.shutdown();
    fake.join().expect("fake primary exits cleanly");
}

/// Trace ids survive standby replication and the promotion epoch bump:
/// every live WAL frame carries its report's trace id, the standby's
/// standby-apply spans adopt those ids unchanged, and a promoted server
/// forces 1-in-1 head sampling so the failover window is fully traced
/// even for clients that never stamped an id.
#[test]
fn trace_ids_survive_standby_promotion_across_the_epoch_bump() {
    use ctup::obs::{sample_trace, SpanSink, Stage};
    use std::collections::BTreeSet;

    let (mut workload, store) = setup(86);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 300);
    let stamped = stamp_stream(clean);
    let dir_primary = temp_dir("trace-primary");
    let dir_standby = temp_dir("trace-standby");

    let resilience = ResilienceConfig {
        checkpoint_every: 32,
        state_dir: Some(dir_primary.clone()),
        ..ResilienceConfig::default()
    };
    let sink = durable_sink(&store, &units, resilience);
    let cfg = NetServerConfig {
        state_dir: Some(dir_primary.clone()),
        epoch: 1,
        ..NetServerConfig::default()
    };
    let primary = IngestServer::spawn("127.0.0.1:0", cfg, sink).unwrap();
    let primary_addr = primary.local_addr();

    // The standby's halves of the traces — standby-apply while following,
    // the full pipeline once promoted — land in this one sink.
    let standby_spans = Arc::new(SpanSink::new(65_536));
    let standby_addr = reserve_addr();
    let standby = StandbyServer::spawn::<OptCtup>(
        StandbyConfig {
            primary_ingest: primary_addr,
            serve_addr: standby_addr.to_string(),
            net: NetServerConfig {
                spans: Some(standby_spans.clone()),
                // Deliberately 0: promotion must force always-sample.
                trace_sample_every: 0,
                ..NetServerConfig::default()
            },
            resilience: ResilienceConfig {
                state_dir: Some(dir_standby.clone()),
                spans: Some(standby_spans.clone()),
                ..ResilienceConfig::default()
            },
            probe_interval: Duration::from_millis(50),
            probe_failures: 2,
            ..StandbyConfig::default()
        },
        store.clone(),
    );

    // Priming batch, deliberately untraced: it only makes the primary's
    // durable state real so the standby's checkpoint sync completes.
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(primary_addr)),
        ClientConfig::default(),
    );
    for &report in &stamped[..64] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    assert_eq!(client.finish().acked, 64);
    wait_for("checkpoint sync", Duration::from_secs(10), || {
        standby.status().phase == StandbyPhase::Following
    });
    let base = settled_wal_applied(&standby);

    // Traced live tail: these ship to the standby as WalAppend frames
    // carrying the client-minted trace ids.
    let trace_seed = 0xBB;
    let client_spans = Arc::new(SpanSink::new(4_096));
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(primary_addr)),
        ClientConfig {
            spans: Some(client_spans.clone()),
            trace_sample_every: 1,
            trace_seed,
            ..ClientConfig::default()
        },
    );
    for &report in &stamped[64..164] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    assert_eq!(client.finish().acked, 100);
    wait_for("live WAL tail", Duration::from_secs(10), || {
        standby.status().wal_applied >= base + 100
    });

    // While still on epoch 1, the standby recorded one standby-apply span
    // per traced frame — under the client's ids, not re-minted ones.
    let applied: BTreeSet<u64> = standby_spans
        .snapshot()
        .spans
        .iter()
        .filter(|s| s.stage == Stage::StandbyApply)
        .map(|s| s.trace)
        .collect();
    for seq in 1..=100u64 {
        let trace = sample_trace(trace_seed, seq, 1);
        assert!(
            applied.contains(&trace),
            "standby-apply span missing for live-tail seq {seq}"
        );
    }

    // Kill the primary: the promotion bumps the fencing epoch but the
    // sink — and every pre-promotion span in it — survives untouched.
    let net = primary.shutdown();
    assert_eq!(net.reports_accepted, 164);
    wait_for("promotion", Duration::from_secs(10), || {
        standby.status().phase == StandbyPhase::Promoted
    });
    assert_eq!(standby.status().epoch, 2, "promotion must bump the epoch");
    let snap = standby_spans.snapshot();
    assert!(
        snap.spans
            .iter()
            .any(|s| s.stage == Stage::StandbyApply && applied.contains(&s.trace)),
        "pre-promotion spans must survive the epoch bump"
    );
    assert!(
        !snap.spans.iter().any(|s| s.stage == Stage::SessionAdmit),
        "no front-door spans can exist before the door opens"
    );

    // An *untraced* client feeding the promoted server still gets traced
    // end to end: promotion forces 1-in-1 head sampling, because a
    // failover window is exactly when operators need exemplar traces.
    let mut client = FeedClient::new(
        Box::new(FailoverDialer::new(vec![primary_addr, standby_addr])),
        ClientConfig::default(),
    );
    for &report in &stamped[164..300] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("walk-over");
    assert_eq!(client.finish().acked, 136);
    let snap = standby_spans.snapshot();
    assert!(
        snap.spans.iter().any(|s| s.stage == Stage::SessionAdmit),
        "promotion must force head sampling of untraced reports"
    );

    standby.shutdown();
    std::fs::remove_dir_all(&dir_primary).ok();
    std::fs::remove_dir_all(&dir_standby).ok();
}
