//! Failover: a standby server restored from a checkpoint must behave
//! exactly like the primary from that point on — identical results and
//! identical logical costs, with no re-initialization scan.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::checkpoint::Checkpoint;
use ctup::core::config::CtupConfig;
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::core::OptCtup;
use ctup::mogen::{PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;

fn setup(seed: u64) -> (Workload, Arc<dyn PlaceStore>) {
    let params = WorkloadParams {
        num_units: 30,
        places: PlaceGenConfig {
            count: 2_000,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    };
    let workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    (workload, store)
}

#[test]
fn restored_monitor_is_indistinguishable_from_the_primary() {
    let (mut workload, store) = setup(71);
    let units = workload.unit_positions();
    let mut primary =
        OptCtup::new(CtupConfig::paper_default(), store.clone(), &units).expect("clean store");

    // Warm phase on the primary.
    for update in workload.next_updates(500) {
        primary
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
    }

    // Checkpoint, serialize through the text codec, restore on a "standby".
    let mut buf = Vec::new();
    primary
        .checkpoint()
        .write(&mut buf)
        .expect("write checkpoint");
    let restored_cp = Checkpoint::read(buf.as_slice()).expect("read checkpoint");
    let mut standby = OptCtup::restore(restored_cp, store.clone()).expect("restore checkpoint");

    assert_eq!(
        standby.result(),
        primary.result(),
        "results differ right after restore"
    );
    assert_eq!(standby.sk(), primary.sk());
    assert_eq!(standby.maintained_places(), primary.maintained_places());
    assert_eq!(standby.dechash_len(), primary.dechash_len());
    // Restore never touches the lower level.
    let io_before = store.stats().snapshot();

    // Both servers process the same tail of the stream and must stay in
    // lockstep, including their logical costs.
    let p_before = primary.metrics().clone();
    let s_before = standby.metrics().clone();
    for update in workload.next_updates(500) {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        primary.handle_update(location_update).expect("clean store");
        standby.handle_update(location_update).expect("clean store");
        assert_eq!(standby.result(), primary.result());
    }
    let p_delta = primary.metrics().since(&p_before);
    let s_delta = standby.metrics().since(&s_before);
    assert_eq!(p_delta.cells_accessed, s_delta.cells_accessed);
    assert_eq!(p_delta.lb_decrements, s_delta.lb_decrements);
    assert_eq!(
        p_delta.lb_decrements_suppressed,
        s_delta.lb_decrements_suppressed
    );
    standby.check_lb_invariant();

    let io = store.stats().snapshot().since(&io_before);
    // Only the continued monitoring reads cells, and both monitors read the
    // same amount; crucially there is no |P|-sized re-initialization scan.
    assert!(
        io.records_read < 2 * 500 * 40,
        "restore caused excessive lower-level traffic: {io:?}"
    );
}

#[test]
fn checkpoint_roundtrips_with_extents_and_threshold_mode() {
    let params = WorkloadParams {
        num_units: 10,
        places: PlaceGenConfig {
            count: 500,
            extent_prob: 0.3,
            extent_max_side: 0.03,
            ..PlaceGenConfig::default()
        },
        seed: 72,
        ..WorkloadParams::default()
    };
    let mut workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(6),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();
    let config = CtupConfig {
        mode: ctup::core::QueryMode::Threshold(-2),
        ..CtupConfig::paper_default()
    };
    let mut primary = OptCtup::new(config, store.clone(), &units).expect("clean store");
    for update in workload.next_updates(200) {
        primary
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
    }
    let mut buf = Vec::new();
    primary.checkpoint().write(&mut buf).unwrap();
    let mut standby = OptCtup::restore(Checkpoint::read(buf.as_slice()).unwrap(), store)
        .expect("restore checkpoint");
    assert_eq!(standby.result(), primary.result());
    for update in workload.next_updates(200) {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        primary.handle_update(location_update).expect("clean store");
        standby.handle_update(location_update).expect("clean store");
        assert_eq!(standby.result(), primary.result());
    }
}
