//! Storage-level integration: the algorithms must behave identically over
//! the memory-resident and the paged-disk lower level, I/O must be
//! accounted, and generated data sets must survive the snapshot format.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::CtupConfig;
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::core::OptCtup;
use ctup::mogen::{PlaceGenConfig, PlaceGenerator, Spread, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{snapshot, CellLocalStore, PagedDiskStore, PlaceStore};
use std::sync::Arc;

#[test]
fn opt_ctup_is_identical_over_memory_and_disk_stores() {
    let params = WorkloadParams {
        num_units: 20,
        places: PlaceGenConfig {
            count: 2_000,
            ..PlaceGenConfig::default()
        },
        seed: 21,
        ..WorkloadParams::default()
    };
    let mut workload = Workload::generate(params);
    let grid = Grid::unit_square(8);
    let mem: Arc<dyn PlaceStore> =
        Arc::new(CellLocalStore::build(grid.clone(), workload.places_vec()));
    let disk: Arc<dyn PlaceStore> = Arc::new(PagedDiskStore::build(grid, workload.places_vec(), 0));
    let units = workload.unit_positions();
    let mut over_mem =
        OptCtup::new(CtupConfig::paper_default(), mem.clone(), &units).expect("clean store");
    let mut over_disk =
        OptCtup::new(CtupConfig::paper_default(), disk.clone(), &units).expect("clean store");
    assert_eq!(over_mem.result(), over_disk.result());
    for update in workload.next_updates(300) {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        over_mem
            .handle_update(location_update)
            .expect("clean store");
        over_disk
            .handle_update(location_update)
            .expect("clean store");
        assert_eq!(over_mem.result(), over_disk.result());
    }
    // Identical logical behaviour implies identical cell access counts.
    let mem_io = mem.stats().snapshot();
    let disk_io = disk.stats().snapshot();
    assert_eq!(mem_io.cell_reads, disk_io.cell_reads);
    assert_eq!(mem_io.records_read, disk_io.records_read);
    // The paged store reads real pages.
    assert!(disk_io.pages_read >= disk_io.cell_reads);
}

#[test]
fn simulated_page_latency_is_observed_and_accounted() {
    let places = PlaceGenerator::new(PlaceGenConfig {
        count: 3_000,
        ..Default::default()
    })
    .generate(5);
    let disk = PagedDiskStore::build(Grid::unit_square(4), places, 50_000);
    let start = std::time::Instant::now();
    for cell in Grid::unit_square(4).cells() {
        disk.read_cell(cell).expect("clean store");
    }
    let elapsed = start.elapsed().as_nanos() as u64;
    let io = disk.stats().snapshot();
    assert!(io.io_nanos >= io.pages_read * 50_000);
    assert!(
        elapsed >= io.io_nanos,
        "wall {elapsed} < simulated {}",
        io.io_nanos
    );
}

#[test]
fn generated_datasets_roundtrip_through_snapshots() {
    for (seed, config) in [
        (
            1u64,
            PlaceGenConfig {
                count: 500,
                ..Default::default()
            },
        ),
        (
            2,
            PlaceGenConfig {
                count: 400,
                extent_prob: 0.5,
                extent_max_side: 0.02,
                ..Default::default()
            },
        ),
        (
            3,
            PlaceGenConfig {
                count: 300,
                spread: Spread::Clustered {
                    clusters: 4,
                    std_dev: 0.05,
                    fraction_clustered: 0.8,
                },
                ..Default::default()
            },
        ),
    ] {
        let places = PlaceGenerator::new(config).generate(seed);
        let mut buf = Vec::new();
        snapshot::write_places(&mut buf, &places).expect("write");
        let restored = snapshot::read_places(buf.as_slice()).expect("read");
        assert_eq!(restored, places, "seed {seed}");
    }
}

#[test]
fn stores_agree_cell_by_cell_on_generated_data() {
    let places = PlaceGenerator::new(PlaceGenConfig {
        count: 1_000,
        extent_prob: 0.3,
        extent_max_side: 0.05,
        ..Default::default()
    })
    .generate(17);
    let grid = Grid::unit_square(7);
    let mem = CellLocalStore::build(grid.clone(), places.clone());
    let disk = PagedDiskStore::build(grid.clone(), places, 0);
    assert_eq!(mem.num_places(), disk.num_places());
    for cell in grid.cells() {
        assert_eq!(
            mem.read_cell(cell).expect("clean store").into_owned(),
            disk.read_cell(cell).expect("clean store").into_owned(),
            "cell {cell:?}"
        );
        assert_eq!(mem.cell_extent_margin(cell), disk.cell_extent_margin(cell));
    }
}
