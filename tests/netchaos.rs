//! Network chaos suite: the ingest front door under faulty links and an
//! overloaded or dying engine.
//!
//! A seeded [`NetFaultPlan`] scripts connection attempts — refused dials,
//! links that die after a byte budget (tearing frames mid-write), and
//! slowloris trickles — while the real supervised pipeline rides behind
//! the [`PipelineSink`]. The invariants are exact, not statistical: every
//! accepted report is applied exactly once (the final top-k matches the
//! brute-force oracle), every refused report carries a typed shed reason,
//! and `accepted + shed` accounts for every sequence number offered.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::ingest::{stamp_stream, StampedUpdate, TracedReport};
use ctup::core::net::client::{ClientConfig, Conn, Dialer};
use ctup::core::net::overload::CountingSink;
use ctup::core::net::wire::{ByeReason, FrameDecoder, Message};
use ctup::core::net::{
    EngineSink, FeedClient, IngestServer, NetServerConfig, PipelineSink, SinkError, TcpDialer,
};
use ctup::core::supervisor::{ResilienceConfig, SupervisedPipeline};
use ctup::core::types::{LocationUpdate, TopKEntry, UnitId};
use ctup::core::{OptCtup, Oracle};
use ctup::mogen::{ChaosStream, NetFaultPlan, PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{CellLocalStore, PlaceStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const NUM_UNITS: u32 = 25;
const RADIUS: f64 = 0.1;

fn setup(seed: u64) -> (Workload, Arc<dyn PlaceStore>) {
    let workload = Workload::generate(WorkloadParams {
        num_units: NUM_UNITS,
        places: PlaceGenConfig {
            count: 1_500,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    (workload, store)
}

fn clean_stream(workload: &mut Workload, n: usize) -> Vec<LocationUpdate> {
    workload
        .next_updates(n)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect()
}

/// Builds the pipeline-backed sink pair: the `Arc<PipelineSink>` the test
/// keeps (to recover the pipeline at the end) and the trait-object clone
/// the server consumes.
fn pipeline_sink(
    store: &Arc<dyn PlaceStore>,
    units: &[ctup::spatial::Point],
    resilience: ResilienceConfig,
    capacity: usize,
) -> (Arc<PipelineSink>, Arc<dyn EngineSink>) {
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), units).expect("clean store");
    let initial = monitor.result();
    let pipeline = SupervisedPipeline::spawn(monitor, resilience, capacity);
    let sink = Arc::new(PipelineSink::new(pipeline, initial));
    let dyn_sink: Arc<dyn EngineSink> = sink.clone();
    (sink, dyn_sink)
}

/// Takes the sink back out of the `Arc` once the server's handler threads
/// have finished dropping their clones (they exit just after the server's
/// shutdown joins, so this can race for a few milliseconds).
fn unwrap_sink(mut sink: Arc<PipelineSink>) -> PipelineSink {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Arc::try_unwrap(sink) {
            Ok(inner) => return inner,
            Err(back) => {
                assert!(Instant::now() < deadline, "server threads kept the sink");
                sink = back;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Dials through a [`ChaosStream`], scripting each attempt off the plan.
struct ChaosDialer {
    addr: SocketAddr,
    plan: NetFaultPlan,
    attempt: u64,
}

impl Dialer for ChaosDialer {
    fn dial(&mut self) -> std::io::Result<Box<dyn Conn>> {
        let script = self.plan.script(self.attempt);
        self.attempt += 1;
        let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(2))?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        stream.set_write_timeout(Some(Duration::from_millis(25)))?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(ChaosStream::new(stream, script)))
    }
}

/// Clean links, real pipeline: every report arrives over TCP, is applied
/// exactly once, and the final top-k is oracle-exact.
#[test]
fn clean_networked_feed_is_oracle_exact() {
    let (mut workload, store) = setup(21);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 600);
    let stamped = stamp_stream(clean.clone());

    let (sink, dyn_sink) = pipeline_sink(&store, &units, ResilienceConfig::default(), 4096);
    let server = IngestServer::spawn("127.0.0.1:0", NetServerConfig::default(), dyn_sink).unwrap();
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).expect("clean links");
    let stats = client.finish();
    assert_eq!(stats.acked, 600);
    assert!(stats.sheds.is_empty());

    let net = server.shutdown();
    assert_eq!(net.reports_accepted, 600);
    assert_eq!(net.shed_total(), 0);
    assert_eq!(net.frames_malformed, 0);

    let report = unwrap_sink(sink).into_pipeline().shutdown();
    assert!(!report.gave_up && !report.killed);
    assert_eq!(report.updates_processed, 600);

    let mut positions = units.clone();
    for update in &clean {
        positions[update.unit.index()] = update.new;
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
}

/// Links that die mid-frame force reconnects; the client replays its
/// unacked tail and the session registry suppresses what the engine
/// already has. The monitor must still converge to the oracle — the proof
/// that reconnect-and-replay never double-applies.
#[test]
fn reconnect_replay_is_duplicate_suppressed_and_oracle_exact() {
    let (mut workload, store) = setup(22);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 600);
    let stamped = stamp_stream(clean.clone());

    let (sink, dyn_sink) = pipeline_sink(&store, &units, ResilienceConfig::default(), 4096);
    let server = IngestServer::spawn("127.0.0.1:0", NetServerConfig::default(), dyn_sink).unwrap();
    // Attempts 0 and 1 die after 264 / 57 written bytes (mid-frame);
    // attempt 2 is clean. The schedule is a pure function of the seed.
    let plan = NetFaultPlan {
        die_per_mille: 500,
        die_min_bytes: 40,
        die_spread_bytes: 400,
        refuse_per_mille: 100,
        ..NetFaultPlan::default()
    };
    let mut client = FeedClient::new(
        Box::new(ChaosDialer {
            addr: server.local_addr(),
            plan,
            attempt: 0,
        }),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client
        .drive(Duration::from_secs(60))
        .expect("bounded retry");
    let stats = client.finish();
    assert!(stats.reconnects > 0, "the plan must force reconnects");
    assert!(
        stats.frames_sent > 600,
        "reconnects must replay the unacked tail"
    );
    assert_eq!(stats.acked, 600);
    assert!(stats.sheds.is_empty());

    let net = server.shutdown();
    assert_eq!(net.reports_accepted, 600);
    assert_eq!(net.shed_total(), 0);
    assert!(
        net.sessions_resumed > 0,
        "reconnects must resume the session: {net:?}"
    );

    let report = unwrap_sink(sink).into_pipeline().shutdown();
    // Exactly once: had any replay slipped past the registry, the count
    // would exceed the clean stream (the gate would also reject it, and
    // duplicates_dropped would light up).
    assert_eq!(report.updates_processed, 600);
    assert_eq!(report.metrics.resilience.duplicates_dropped, 0);

    let mut positions = units.clone();
    for update in &clean {
        positions[update.unit.index()] = update.new;
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
}

/// A sink that records what the engine saw, with a configurable service
/// time so a small admission queue genuinely overflows.
struct SlowRecordingSink {
    delay: Duration,
    got: Mutex<Vec<u64>>,
}

impl EngineSink for SlowRecordingSink {
    fn try_ingest(&self, report: TracedReport) -> Result<(), SinkError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.got.lock().unwrap().push(report.report.seq);
        Ok(())
    }

    fn topk(&self) -> Vec<TopKEntry> {
        Vec::new()
    }
}

/// Overload: a burst into a small queue in front of a slow engine. Sheds
/// are typed, the client sees them, and `accepted + shed` accounts for
/// every offered report — with the engine-side record agreeing exactly.
#[test]
fn overload_sheds_typed_and_accounting_is_exact() {
    let mut cfg = NetServerConfig::default();
    cfg.admission.queue_capacity = 8;
    cfg.admission.high_watermark = 6;
    cfg.admission.low_watermark = 2;
    cfg.admission.ingest_deadline = Duration::from_secs(30);
    cfg.snapshot_push_interval = Duration::ZERO;
    let sink = Arc::new(SlowRecordingSink {
        delay: Duration::from_millis(2),
        got: Mutex::new(Vec::new()),
    });
    let dyn_sink: Arc<dyn EngineSink> = sink.clone();
    let server = IngestServer::spawn("127.0.0.1:0", cfg, dyn_sink).unwrap();
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    let total = 300u64;
    for seq in 1..=total {
        client.enqueue(StampedUpdate {
            seq,
            ts: seq,
            update: LocationUpdate {
                unit: UnitId(7),
                new: ctup::spatial::Point::new(0.25, 0.75),
            },
        });
    }
    client.drive(Duration::from_secs(30)).unwrap();
    let stats = client.finish();
    let engine_saw = sink.got.lock().unwrap().clone();
    let net = server.shutdown();

    // Engine-side truth: exactly the accepted reports, each exactly once.
    let mut unique = engine_saw.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), engine_saw.len(), "engine saw a duplicate");
    assert_eq!(engine_saw.len() as u64, net.reports_accepted);
    // Exact accounting, server- and client-side.
    assert_eq!(net.reports_accepted + net.shed_total(), total, "{net:?}");
    assert!(net.shed_queue_full > 0, "the burst must shed: {net:?}");
    assert_eq!(stats.acked, net.reports_accepted);
    assert_eq!(stats.acked + stats.shed_total(), total);
    // Every client-visible shed carries a typed reason the server counted.
    for shed in &stats.sheds {
        assert!(
            shed_reason_counted(&net, shed.reason),
            "shed {shed:?} not reflected in {net:?}"
        );
    }
}

/// Whether a typed shed reason has a nonzero server-side counter.
fn shed_reason_counted(net: &ctup::core::NetStatsSnapshot, reason: ctup::core::ShedReason) -> bool {
    use ctup::core::ShedReason as R;
    match reason {
        R::QueueFull => net.shed_queue_full > 0,
        R::DeadlineExceeded => net.shed_deadline_exceeded > 0,
        R::SessionQuota => net.shed_session_quota > 0,
        R::EngineDegraded => net.shed_engine_degraded > 0,
    }
}

/// A slowloris sender trickling one byte per 10ms is evicted on the frame
/// deadline, while a healthy client on the same server is untouched.
#[test]
fn slowloris_is_evicted_while_healthy_client_proceeds() {
    let cfg = NetServerConfig {
        frame_deadline: Duration::from_millis(100),
        ..NetServerConfig::default()
    };
    let server =
        IngestServer::spawn("127.0.0.1:0", cfg, Arc::new(CountingSink::default())).unwrap();
    let addr = server.local_addr();
    let slow = std::thread::spawn(move || {
        let plan = NetFaultPlan {
            slow_per_mille: 1000,
            slow_chunk: 1,
            slow_delay: Duration::from_millis(10),
            ..NetFaultPlan::default()
        };
        let mut cfg = ClientConfig::default();
        cfg.backoff.max_attempts = 2;
        let mut client = FeedClient::new(
            Box::new(ChaosDialer {
                addr,
                plan,
                attempt: 0,
            }),
            cfg,
        );
        for seq in 1..=5u64 {
            client.enqueue(StampedUpdate {
                seq,
                ts: seq,
                update: LocationUpdate {
                    unit: UnitId(1),
                    new: ctup::spatial::Point::new(0.5, 0.5),
                },
            });
        }
        // Every frame trickles past the deadline: the server keeps
        // evicting, the bounded retry budget eventually gives up.
        let _ = client.drive(Duration::from_secs(10));
    });
    let mut healthy = FeedClient::new(Box::new(TcpDialer::new(addr)), ClientConfig::default());
    for seq in 1..=100u64 {
        healthy.enqueue(StampedUpdate {
            seq,
            ts: seq,
            update: LocationUpdate {
                unit: UnitId(2),
                new: ctup::spatial::Point::new(0.75, 0.25),
            },
        });
    }
    healthy.drive(Duration::from_secs(10)).unwrap();
    let stats = healthy.finish();
    assert_eq!(stats.acked, 100, "healthy client must be unaffected");
    slow.join().unwrap();
    let net = server.shutdown();
    assert!(
        net.sessions_evicted >= 1,
        "slowloris never evicted: {net:?}"
    );
}

/// A connection that dies mid-frame is counted as a partial disconnect,
/// distinct from a clean goodbye.
#[test]
fn partial_frame_disconnect_is_counted() {
    let server = IngestServer::spawn(
        "127.0.0.1:0",
        NetServerConfig::default(),
        Arc::new(CountingSink::default()),
    )
    .unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut hello = Vec::new();
    Message::Hello { resume_session: 0 }.encode(&mut hello);
    raw.write_all(&hello).unwrap();
    let mut ack = [0u8; 32];
    assert!(raw.read(&mut ack).unwrap() > 0, "handshake ack expected");
    let mut frame = Vec::new();
    Message::Report {
        seq: 1,
        unit_seq: 1,
        ts: 1,
        unit: 7,
        x: 0.5,
        y: 0.5,
        trace: 0,
    }
    .encode(&mut frame);
    raw.write_all(&frame[..frame.len() / 2]).unwrap();
    drop(raw);
    let stats = server.stats();
    let deadline = Instant::now() + Duration::from_secs(3);
    while stats.snapshot().partial_disconnects == 0 {
        assert!(
            Instant::now() < deadline,
            "partial disconnect never counted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// A reconnect storm beyond the session cap: the first `max_sessions`
/// handshakes succeed, the next is refused with a typed `ServerFull` bye
/// and counted as rejected.
#[test]
fn session_cap_refuses_with_server_full() {
    let mut cfg = NetServerConfig::default();
    cfg.session.max_sessions = 2;
    let server =
        IngestServer::spawn("127.0.0.1:0", cfg, Arc::new(CountingSink::default())).unwrap();
    let mut hello = Vec::new();
    Message::Hello { resume_session: 0 }.encode(&mut hello);
    let mut held = Vec::new();
    for i in 0..3 {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        raw.write_all(&hello).unwrap();
        let mut decoder = FrameDecoder::new();
        let msg = loop {
            match decoder.read_from(&mut raw) {
                Ok(m) => break m,
                Err(e) if e.is_timeout() => continue,
                Err(e) => panic!("conn {i}: {e:?}"),
            }
        };
        match (i, msg) {
            (0 | 1, Message::Ack { .. }) => held.push(raw),
            (2, Message::Bye { reason }) => assert_eq!(reason, ByeReason::ServerFull),
            (i, m) => panic!("conn {i}: unexpected {m:?}"),
        }
    }
    drop(held);
    let net = server.shutdown();
    assert_eq!(net.sessions_opened, 2);
    assert!(net.connections_rejected >= 1);
}

/// Engine death mid-run: the front door flips to degraded, sheds with a
/// typed reason, keeps serving the last-good top-k (to `/healthz` readers
/// and snapshot subscribers), and the client's accounting still closes.
#[test]
fn engine_death_degrades_and_serves_last_good() {
    let (mut workload, store) = setup(31);
    let units = workload.unit_positions();
    let stamped = stamp_stream(clean_stream(&mut workload, 300));

    // Small pipeline capacity so engine death surfaces as backpressure,
    // not a silently absorbed buffer; the worker is killed at update 150.
    let resilience = ResilienceConfig {
        kill_at: Some(150),
        ..ResilienceConfig::default()
    };
    let (sink, dyn_sink) = pipeline_sink(&store, &units, resilience, 8);
    let mut cfg = NetServerConfig {
        snapshot_push_interval: Duration::from_millis(50),
        ..NetServerConfig::default()
    };
    cfg.admission.ingest_deadline = Duration::from_secs(5);
    let server = IngestServer::spawn("127.0.0.1:0", cfg, dyn_sink).unwrap();
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );

    // Phase 1: feed 100 with the engine alive, let the watchdog cache a
    // last-good result.
    for &report in &stamped[..100] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(10)).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert!(!server.degraded());
    let last_good = server.last_good_topk();
    assert!(!last_good.is_empty(), "watchdog must cache a live top-k");
    assert!(server.health_body().contains("\"degraded\":false"));

    // Phase 2: the kill fires mid-feed; the tail is shed, typed.
    for &report in &stamped[100..] {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(30)).unwrap();
    assert!(server.degraded(), "engine death must trip degraded mode");
    assert!(server.health_body().contains("\"degraded\":true"));
    // The engine is dead, so the cached result is now frozen — still
    // served, never silently stale-refreshed.
    let frozen = server.last_good_topk();
    assert!(
        !frozen.is_empty(),
        "degraded mode keeps the last-good top-k"
    );

    // A subscriber still gets snapshots, flagged degraded and carrying
    // the frozen result.
    client.listen(Duration::from_millis(300)).unwrap();
    let (degraded, entries) = client.last_snapshot().expect("snapshot push").clone();
    assert!(degraded);
    assert_eq!(
        entries,
        frozen
            .iter()
            .map(|e| (e.place.0, e.safety))
            .collect::<Vec<_>>()
    );
    assert_eq!(server.last_good_topk(), frozen, "frozen result is stable");

    let stats = client.finish();
    assert_eq!(stats.acked + stats.shed_total(), 300);
    let net = server.shutdown();
    assert!(net.degraded);
    assert!(net.shed_engine_degraded > 0, "{net:?}");
    assert!(net.degraded_entries >= 1);
    assert_eq!(net.reports_accepted + net.shed_total(), 300);

    let report = unwrap_sink(sink).into_pipeline().shutdown();
    assert!(report.killed);
}

/// Durable end-to-end: the engine is killed mid-stream behind the front
/// door, a fresh pipeline recovers from the surviving checkpoint slot,
/// and a reconnecting feeder re-delivers the whole stream. The registry
/// is gone (new server), so dedup falls to the ingest gate — and the
/// final top-k must still be oracle-exact.
#[test]
#[cfg_attr(miri, ignore = "touches real files, sockets and threads")]
fn kill_and_recover_over_the_wire_is_oracle_exact() {
    let (mut workload, store) = setup(7);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 600);
    let stamped = stamp_stream(clean.clone());
    let dir = std::env::temp_dir().join(format!("ctup-netchaos-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Phase A: feed through the door until the worker is killed at 300.
    let resilience = ResilienceConfig {
        checkpoint_every: 48,
        state_dir: Some(dir.clone()),
        kill_at: Some(300),
        tear_slot_on_kill: true,
        ..ResilienceConfig::default()
    };
    let (sink, dyn_sink) = pipeline_sink(&store, &units, resilience, 8);
    let mut cfg = NetServerConfig::default();
    cfg.admission.ingest_deadline = Duration::from_secs(5);
    let server = IngestServer::spawn("127.0.0.1:0", cfg, dyn_sink).unwrap();
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(60)).unwrap();
    let stats = client.finish();
    assert!(
        stats.shed_total() > 0,
        "the killed engine must shed the tail"
    );
    let net = server.shutdown();
    assert!(net.degraded, "engine death must degrade the door");
    assert_eq!(net.reports_accepted + net.shed_total(), 600);
    let report = unwrap_sink(sink).into_pipeline().shutdown();
    assert!(report.killed);

    // Phase B: "new process" — recover from the surviving slot, stand up
    // a fresh front door, re-deliver everything.
    let pipeline = SupervisedPipeline::recover_from_dir::<OptCtup>(
        &dir,
        store.clone(),
        ResilienceConfig {
            checkpoint_every: 48,
            state_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        },
        4096,
    )
    .expect("recover from the surviving slot");
    let sink = Arc::new(PipelineSink::new(pipeline, Vec::new()));
    let dyn_sink: Arc<dyn EngineSink> = sink.clone();
    let server = IngestServer::spawn("127.0.0.1:0", NetServerConfig::default(), dyn_sink).unwrap();
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client.drive(Duration::from_secs(60)).unwrap();
    let stats = client.finish();
    assert_eq!(stats.acked, 600, "recovered engine accepts the full feed");
    let net = server.shutdown();
    assert_eq!(net.reports_accepted, 600);
    assert_eq!(net.shed_total(), 0);

    let report = unwrap_sink(sink).into_pipeline().shutdown();
    assert!(!report.gave_up && !report.killed);
    let r = &report.metrics.resilience;
    assert!(r.updates_replayed > 0, "the journal tail must be replayed");
    assert!(
        r.duplicates_dropped + r.stale_dropped > 0,
        "the re-delivered prefix must be deduplicated by the gate"
    );

    let mut positions = units.clone();
    for update in &clean {
        positions[update.unit.index()] = update.new;
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Trace-id survival across reconnect-and-replay: span ids are pure
/// functions of `(trace, stage)`, so a retransmitted report re-records
/// the *same* client-send span instead of forking the trace tree, and
/// every sampled trace still carries exactly one causal chain after the
/// link chaos settles.
#[test]
fn trace_ids_survive_reconnect_replay_without_forking() {
    use ctup::obs::{sample_trace, SpanSink, Stage};
    use std::collections::BTreeMap;

    let (mut workload, store) = setup(29);
    let units = workload.unit_positions();
    let clean = clean_stream(&mut workload, 300);
    let stamped = stamp_stream(clean);

    // One sink shared by client, door and engine: the whole chain lands
    // in one dump, exactly like `ctup serve --span-dump` over loopback.
    let spans = Arc::new(SpanSink::new(65_536));
    let (sink, dyn_sink) = pipeline_sink(
        &store,
        &units,
        ResilienceConfig {
            spans: Some(spans.clone()),
            ..ResilienceConfig::default()
        },
        4096,
    );
    let cfg = NetServerConfig {
        spans: Some(spans.clone()),
        ..NetServerConfig::default()
    };
    let server = IngestServer::spawn("127.0.0.1:0", cfg, dyn_sink).unwrap();
    // The same fault plan as the replay suite: dials that die mid-frame
    // force reconnects and unacked-tail retransmissions.
    let plan = NetFaultPlan {
        die_per_mille: 500,
        die_min_bytes: 40,
        die_spread_bytes: 400,
        refuse_per_mille: 100,
        ..NetFaultPlan::default()
    };
    let trace_seed = 0xA1;
    let mut client = FeedClient::new(
        Box::new(ChaosDialer {
            addr: server.local_addr(),
            plan,
            attempt: 0,
        }),
        ClientConfig {
            spans: Some(spans.clone()),
            trace_sample_every: 1,
            trace_seed,
            ..ClientConfig::default()
        },
    );
    for &report in &stamped {
        client.enqueue(report);
    }
    client
        .drive(Duration::from_secs(60))
        .expect("bounded retry");
    let stats = client.finish();
    assert!(stats.reconnects > 0, "the plan must force reconnects");
    assert!(
        stats.frames_sent > 300,
        "reconnects must replay the unacked tail"
    );
    assert_eq!(stats.acked, 300);

    let net = server.shutdown();
    assert_eq!(net.reports_accepted, 300);
    // Every id was minted client-side; the server must adopt them rather
    // than re-mint (a fork would double this counter).
    assert_eq!(net.traces_sampled, 300, "{net:?}");
    let report = unwrap_sink(sink).into_pipeline().shutdown();
    assert_eq!(report.updates_processed, 300);

    let snap = spans.snapshot();
    assert_eq!(snap.spans_dropped, 0, "sized for the full run");
    let mut by_trace: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
    for s in &snap.spans {
        by_trace.entry(s.trace).or_default().push(s.stage.label());
    }
    // Exactly the 300 client-minted ids appear — replays created no new
    // traces — and every one carries the full canonical chain despite
    // the retransmissions (the session registry suppressed the replays
    // before they could reach the server-side stages a second time).
    assert_eq!(by_trace.len(), 300, "replays must not fork new traces");
    for seq in 1..=300u64 {
        let trace = sample_trace(trace_seed, seq, 1);
        let stages = by_trace.get(&trace).unwrap_or_else(|| {
            panic!("trace for seq {seq} missing from the dump");
        });
        for stage in Stage::CANONICAL_CHAIN {
            assert!(
                stages.contains(&stage.label()),
                "seq {seq}: stage {} missing from {stages:?}",
                stage.label()
            );
        }
    }
}
