//! Generator-level integration: the moving-object workload must produce
//! consistent, deterministic update streams that drive the monitoring
//! server correctly, and the server must emit coherent event sequences.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::CtupConfig;
use ctup::core::server::{MonitorEvent, Server};
use ctup::core::types::{LocationUpdate, PlaceId, UnitId};
use ctup::core::OptCtup;
use ctup::mogen::{CityParams, PlaceGenConfig, RoadNetwork, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{CellLocalStore, PlaceStore};
use std::collections::HashMap;
use std::sync::Arc;

fn small_params(seed: u64) -> WorkloadParams {
    WorkloadParams {
        num_units: 12,
        places: PlaceGenConfig {
            count: 400,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    }
}

#[test]
fn server_event_stream_replays_to_the_current_result() {
    let mut workload = Workload::generate(small_params(31));
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(6),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();
    let alg = OptCtup::new(CtupConfig::with_k(6), store, &units).expect("clean store");
    let mut server = Server::new(alg);

    // Maintain a replica purely from the event stream.
    let mut replica: HashMap<PlaceId, i64> = server
        .result()
        .iter()
        .map(|e| (e.place, e.safety))
        .collect();
    for update in workload.next_updates(500) {
        let (events, _) = server
            .ingest(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
        for event in events {
            match event {
                MonitorEvent::Entered { place, safety } => {
                    assert!(
                        replica.insert(place, safety).is_none(),
                        "{place:?} entered twice"
                    );
                }
                MonitorEvent::Left { place } => {
                    assert!(
                        replica.remove(&place).is_some(),
                        "{place:?} left but absent"
                    );
                }
                MonitorEvent::SafetyChanged { place, old, new } => {
                    let slot = replica.get_mut(&place).expect("changed but absent");
                    assert_eq!(*slot, old, "stale old safety for {place:?}");
                    *slot = new;
                }
            }
        }
        let truth: HashMap<PlaceId, i64> = server
            .result()
            .iter()
            .map(|e| (e.place, e.safety))
            .collect();
        assert_eq!(replica, truth, "replica diverged from result");
    }
}

#[test]
fn update_streams_are_deterministic_and_chained() {
    let mut a = Workload::generate(small_params(32));
    let mut b = Workload::generate(small_params(32));
    assert_eq!(a.next_updates(300), b.next_updates(300));
    // `from` of every update chains from the previous report of that unit.
    let mut fresh = Workload::generate(small_params(32));
    let mut last = fresh.unit_positions();
    for update in fresh.next_updates(300) {
        assert_eq!(update.from, last[update.object as usize]);
        last[update.object as usize] = update.to;
    }
}

#[test]
fn network_constrained_units_respect_city_geometry() {
    let net = RoadNetwork::synthetic_city(&CityParams::default(), 33);
    assert!(net.is_connected());
    let mut workload = Workload::generate(small_params(33));
    for update in workload.next_updates(400) {
        assert!((0.0..=1.0).contains(&update.to.x));
        assert!((0.0..=1.0).contains(&update.to.y));
        // Report threshold: no update without meaningful displacement.
        assert!(update.from.dist(update.to) >= 0.002);
    }
}

#[test]
fn monitoring_costs_scale_with_update_count() {
    let mut workload = Workload::generate(small_params(34));
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(6),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();
    let mut alg = OptCtup::new(CtupConfig::with_k(6), store, &units).expect("clean store");
    for update in workload.next_updates(250) {
        alg.handle_update(LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        })
        .expect("clean store");
    }
    let m = alg.metrics();
    assert_eq!(m.updates_processed, 250);
    assert!(m.maintain_nanos > 0);
    assert!(m.maintained_peak >= m.maintained_now);
}
