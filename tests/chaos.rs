//! Chaos suite: the supervised pipeline under a degraded feed.
//!
//! A seeded [`FaultPlan`] drops, duplicates, reorders and corrupts the wire
//! stream, and the supervisor is crashed mid-run. The surviving monitor
//! must be *exactly* right: its final top-k is checked against the
//! brute-force oracle evaluated on the effective update sequence — the
//! updates that survive the ingest gate (validation, dedup, liveness
//! leases) — reproduced independently by a mirror gate in the test.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::ingest::{stamp_stream, IngestConfig, IngestGate, StampedUpdate};
use ctup::core::metrics::ResilienceStats;
use ctup::core::supervisor::{ResilienceConfig, SupervisedPipeline};
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::core::{OptCtup, Oracle};
use ctup::mogen::{FaultPlan, PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::{Grid, Point};
use ctup::storage::{
    CellLocalStore, DiskFaultPlan, FaultDisk, PlaceStore, RetryPolicy, StorageError,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

const NUM_UNITS: u32 = 25;
const RADIUS: f64 = 0.1;

fn setup(seed: u64) -> (Workload, Arc<dyn PlaceStore>) {
    let workload = Workload::generate(WorkloadParams {
        num_units: NUM_UNITS,
        places: PlaceGenConfig {
            count: 1_500,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    (workload, store)
}

/// Randomly poisons a wire report: NaN coordinate, position far outside
/// the monitored space, or an unknown unit id. All three must be caught by
/// the ingest gate's validation.
fn corrupt_report(report: &mut StampedUpdate, rng: &mut StdRng) {
    match rng.gen_range(0..3u8) {
        0 => report.update.new = Point::new(f64::NAN, report.update.new.y),
        1 => report.update.new = Point::new(5.0, 5.0),
        _ => report.update.unit = UnitId(10_000),
    }
}

/// The chaos scenario for one seed: generate, stamp, degrade, survive.
fn run_chaos(seed: u64) {
    let (mut workload, store) = setup(seed);
    let units = workload.unit_positions();

    // Clean stamped stream, then the degraded delivery of it.
    let clean: Vec<LocationUpdate> = workload
        .next_updates(600)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect();
    let plan = FaultPlan {
        seed: seed ^ 0xFA17,
        drop_prob: 0.06,
        dup_prob: 0.03,
        reorder_prob: 0.25,
        reorder_window: 5,
        corrupt_prob: 0.02,
        delay_prob: 0.02,
        max_delay: 12,
        panic_at: vec![50],
        ..FaultPlan::default()
    };
    let (degraded, log) = plan.apply(stamp_stream(clean), corrupt_report);
    assert!(log.dropped > 0 && log.duplicated > 0 && log.reordered > 0 && log.corrupted > 0);

    // The supervised pipeline rides the degraded feed and is crashed once.
    let resilience = ResilienceConfig {
        lease_ttl: Some(150),
        checkpoint_every: 64,
        max_restarts: 8,
        panic_at: plan.panic_at.clone(),
        ..ResilienceConfig::default()
    };
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units).expect("clean store");
    let pipeline = SupervisedPipeline::spawn(monitor, resilience, 4096);
    for &report in &degraded {
        pipeline.send(report).expect("worker alive");
    }
    let report = pipeline.shutdown();
    assert!(!report.gave_up, "seed {seed}: supervisor gave up");
    assert_eq!(report.reports_received, degraded.len() as u64);
    assert_eq!(report.metrics.resilience.worker_panics, 1);
    assert_eq!(report.metrics.resilience.worker_restarts, 1);
    assert!(report.metrics.resilience.checkpoints_taken > 0);

    // Mirror gate: reproduce the effective update sequence independently
    // and track where every unit ends up (parked units included).
    let mut mirror = IngestGate::new(IngestConfig {
        space: *store.grid().space(),
        num_units: NUM_UNITS as usize,
        lease_ttl: Some(150),
    });
    let mut mirror_stats = ResilienceStats::default();
    let mut positions = units.clone();
    let mut effective_count = 0u64;
    for &wire in &degraded {
        if let Ok(effective) = mirror.admit(wire, &mut mirror_stats) {
            for update in effective {
                positions[update.unit.index()] = update.new;
                effective_count += 1;
            }
        }
    }
    assert_eq!(
        report.updates_processed, effective_count,
        "seed {seed}: pipeline and mirror disagree on the effective sequence"
    );
    // The gate-level counters must match the mirror exactly.
    let r = &report.metrics.resilience;
    for (name, got, want) in [
        (
            "rejected_non_finite",
            r.rejected_non_finite,
            mirror_stats.rejected_non_finite,
        ),
        (
            "rejected_out_of_space",
            r.rejected_out_of_space,
            mirror_stats.rejected_out_of_space,
        ),
        (
            "rejected_unknown_unit",
            r.rejected_unknown_unit,
            mirror_stats.rejected_unknown_unit,
        ),
        ("stale_dropped", r.stale_dropped, mirror_stats.stale_dropped),
        (
            "duplicates_dropped",
            r.duplicates_dropped,
            mirror_stats.duplicates_dropped,
        ),
        (
            "lease_expiries",
            r.lease_expiries,
            mirror_stats.lease_expiries,
        ),
        (
            "lease_reinstates",
            r.lease_reinstates,
            mirror_stats.lease_reinstates,
        ),
    ] {
        assert_eq!(got, want, "seed {seed}: {name} mismatch");
    }
    // Dedup must have caught at least the duplicates the plan injected that
    // were not preceded by a drop of their original.
    assert!(
        r.duplicates_dropped + r.stale_dropped > 0,
        "seed {seed}: no dedup exercised"
    );

    // Ground truth: the oracle on the final effective unit positions.
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
}

#[test]
fn survives_degraded_feed_seed_1() {
    run_chaos(1);
}

#[test]
fn survives_degraded_feed_seed_2() {
    run_chaos(2);
}

#[test]
fn survives_degraded_feed_seed_3() {
    run_chaos(3);
}

/// Leases under silence: cutting one unit's reports out of the feed
/// entirely must retract its protection — the monitor ends up agreeing
/// with an oracle that has the unit parked, not where it last reported.
#[test]
fn silent_unit_is_parked_and_result_stays_truthful() {
    let (mut workload, store) = setup(42);
    let units = workload.unit_positions();
    let clean: Vec<LocationUpdate> = workload
        .next_updates(400)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect();
    // Unit 0 goes silent after its first 2 reports.
    let mut seen = 0;
    let muted: Vec<StampedUpdate> = stamp_stream(clean)
        .into_iter()
        .filter(|r| {
            if r.update.unit != UnitId(0) {
                return true;
            }
            seen += 1;
            seen <= 2
        })
        .collect();

    let resilience = ResilienceConfig {
        lease_ttl: Some(100),
        ..ResilienceConfig::default()
    };
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units).expect("clean store");
    let pipeline = SupervisedPipeline::spawn(monitor, resilience, 4096);
    for &report in &muted {
        pipeline.send(report).expect("worker alive");
    }
    let report = pipeline.shutdown();
    assert!(!report.gave_up);
    assert!(
        report.metrics.resilience.lease_expiries > 0,
        "the muted unit's lease never expired (TTL too long for this stream?)"
    );

    // Mirror to get final positions, then check the oracle agrees.
    let mut mirror = IngestGate::new(IngestConfig {
        space: *store.grid().space(),
        num_units: NUM_UNITS as usize,
        lease_ttl: Some(100),
    });
    let mut stats = ResilienceStats::default();
    let mut positions = units.clone();
    for &wire in &muted {
        if let Ok(effective) = mirror.admit(wire, &mut stats) {
            for update in effective {
                positions[update.unit.index()] = update.new;
            }
        }
    }
    assert!(
        !mirror.is_alive(UnitId(0)),
        "unit 0 should have lost its lease"
    );
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
}

/// Storage-fault matrix, transient case: the disk fails 5% of page reads
/// per attempt behind the default 3-retry backoff policy. Retries absorb
/// (nearly) everything; any give-up is contained by the supervisor exactly
/// like a worker panic — so the final top-k is still oracle-exact.
#[test]
fn transient_read_errors_are_retried_and_contained() {
    let mut workload = Workload::generate(WorkloadParams {
        num_units: NUM_UNITS,
        places: PlaceGenConfig {
            count: 1_500,
            ..PlaceGenConfig::default()
        },
        seed: 11,
        ..WorkloadParams::default()
    });
    let disk = Arc::new(FaultDisk::build(
        Grid::unit_square(8),
        workload.places_vec(),
        0,
        DiskFaultPlan {
            seed: 0xD15C,
            read_error_prob: 0.05,
            ..DiskFaultPlan::default()
        },
        RetryPolicy::default(),
    ));
    assert!(disk.corrupted_pages().is_empty(), "no build-time damage");
    let store: Arc<dyn PlaceStore> = disk.clone();
    let units = workload.unit_positions();
    let clean: Vec<LocationUpdate> = workload
        .next_updates(600)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect();

    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units)
        .expect("transient faults are absorbed by retries at init");
    let pipeline = SupervisedPipeline::spawn(monitor, ResilienceConfig::default(), 4096);
    for &report in &stamp_stream(clean.clone()) {
        pipeline.send(report).expect("worker alive");
    }
    let report = pipeline.shutdown();
    assert!(!report.gave_up, "retry budget must carry the run");
    assert_eq!(report.updates_processed, 600);

    let snap = disk.stats().snapshot();
    assert!(snap.read_retries > 0, "a 5% fault rate must force retries");
    assert_eq!(snap.corrupt_pages, 0, "transient faults are not corruption");
    // Any reads that exhausted the retry budget were contained as storage
    // errors (checkpoint-restore-replay), never silently mis-served.
    let r = &report.metrics.resilience;
    assert_eq!(r.worker_panics, 0);
    assert!(r.storage_errors <= r.worker_restarts);

    // Clean stream + no leases: every update is effective; ground truth is
    // simply the last reported position of each unit.
    let mut positions = units.clone();
    for update in &clean {
        positions[update.unit.index()] = update.new;
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("bulk scan skips transient faults");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
}

/// Storage-fault matrix, persistent case: torn page writes and bit flips
/// damage the disk at build time. Every read of a damaged cell must fail
/// with a typed corruption error — zero silently wrong reads — while the
/// undamaged cells still serve records identical to the in-memory store.
#[test]
fn build_time_corruption_is_always_detected_never_served() {
    let workload = Workload::generate(WorkloadParams {
        num_units: NUM_UNITS,
        places: PlaceGenConfig {
            count: 1_500,
            ..PlaceGenConfig::default()
        },
        seed: 13,
        ..WorkloadParams::default()
    });
    let places = workload.places_vec();
    let disk = FaultDisk::build(
        Grid::unit_square(8),
        places.clone(),
        0,
        DiskFaultPlan {
            seed: 99,
            torn_writes: 3,
            bit_flips: 3,
            ..DiskFaultPlan::default()
        },
        RetryPolicy::default(),
    );
    let damaged = disk.corrupted_cells();
    assert!(
        !damaged.is_empty(),
        "the plan must damage at least one cell"
    );

    let mirror = CellLocalStore::build(Grid::unit_square(8), places);
    for cell in disk.grid().cells().collect::<Vec<_>>() {
        match disk.read_cell(cell) {
            Ok(got) => {
                assert!(
                    !damaged.contains(&cell),
                    "damaged cell {cell:?} served records"
                );
                let want = mirror.read_cell(cell).expect("mem store");
                assert_eq!(got.as_ref(), want.as_ref(), "cell {cell:?}");
            }
            Err(e) => {
                assert!(matches!(e, StorageError::CorruptPage { .. }), "{e}");
                assert!(damaged.contains(&cell), "clean cell {cell:?} failed: {e}");
            }
        }
    }
    let snap = disk.stats().snapshot();
    assert!(snap.corrupt_pages > 0);
    assert!(
        snap.read_giveups > 0,
        "corruption is permanent, not retried"
    );

    // A monitor cannot even be initialized over the damaged store: the
    // full-cell init scan hits the corruption and surfaces it as a value.
    let units = workload.unit_positions();
    match OptCtup::new(CtupConfig::with_k(10), Arc::new(disk), &units) {
        Ok(_) => panic!("init over a corrupt store must fail"),
        Err(e) => assert!(matches!(e, StorageError::CorruptPage { .. }), "{e}"),
    }
}

/// Durable kill-and-restart: the worker dies abruptly mid-stream — while
/// tearing the newest checkpoint slot, as a death mid-checkpoint-write —
/// and a fresh pipeline recovers from the surviving A/B slot plus the
/// journal tail. Re-delivering the full feed (the gate dedups the already
/// covered prefix) must converge to the oracle of the uninterrupted run.
#[test]
#[cfg_attr(miri, ignore = "touches real files and spawns threads")]
fn kill_mid_checkpoint_write_recovers_from_surviving_slot() {
    let (mut workload, store) = setup(7);
    let units = workload.unit_positions();
    let clean: Vec<LocationUpdate> = workload
        .next_updates(600)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect();
    let stamped = stamp_stream(clean.clone());
    let dir = std::env::temp_dir().join(format!("ctup-chaos-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let resilience = ResilienceConfig {
        checkpoint_every: 48,
        state_dir: Some(dir.clone()),
        kill_at: Some(300),
        tear_slot_on_kill: true,
        ..ResilienceConfig::default()
    };
    let monitor = OptCtup::new(CtupConfig::with_k(10), store.clone(), &units).expect("clean store");
    let pipeline = SupervisedPipeline::spawn(monitor, resilience, 4096);
    for &report in &stamped {
        if pipeline.send(report).is_err() {
            break; // the kill fired; the worker is gone
        }
    }
    let report = pipeline.shutdown();
    assert!(report.killed, "kill_at must halt the worker");
    assert!(!report.gave_up);
    assert!(
        report.final_result.is_empty(),
        "a killed worker reports no result"
    );

    // Recovery in a "new process": load the surviving slot, replay the
    // journal tail, then re-deliver the whole feed.
    let pipeline = SupervisedPipeline::recover_from_dir::<OptCtup>(
        &dir,
        store.clone(),
        ResilienceConfig {
            checkpoint_every: 48,
            state_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        },
        4096,
    )
    .expect("recover from the surviving slot");
    for &report in &stamped {
        pipeline.send(report).expect("recovered worker alive");
    }
    let report = pipeline.shutdown();
    assert!(!report.gave_up && !report.killed);
    let r = &report.metrics.resilience;
    assert!(r.updates_replayed > 0, "the journal tail must be replayed");
    assert!(
        r.duplicates_dropped + r.stale_dropped > 0,
        "re-delivered prefix must be deduplicated by the gate"
    );

    let mut positions = units.clone();
    for update in &clean {
        positions[update.unit.index()] = update.new;
    }
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    oracle.assert_result_matches(
        &report.final_result,
        &positions,
        RADIUS,
        QueryMode::TopK(10),
    );
    std::fs::remove_dir_all(&dir).ok();
}
