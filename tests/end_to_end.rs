//! End-to-end pipeline test: generator → storage → every algorithm,
//! checked against the brute-force oracle and against each other on a real
//! (small) road-network workload.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::naive::{NaiveIncremental, NaiveRecompute};
use ctup::core::oracle::Oracle;
use ctup::core::types::{LocationUpdate, Safety, UnitId};
use ctup::core::{BasicCtup, OptCtup};
use ctup::mogen::{PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::{Grid, Point};
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;

fn workload(seed: u64) -> (Workload, Arc<dyn PlaceStore>, Vec<Point>) {
    let params = WorkloadParams {
        num_units: 25,
        places: PlaceGenConfig {
            count: 1_500,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    };
    let workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();
    (workload, store, units)
}

#[test]
fn all_algorithms_track_the_oracle_on_a_road_workload() {
    let (mut workload, store, mut units) = workload(11);
    let config = CtupConfig::with_k(10);
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");

    let mut algs: Vec<Box<dyn CtupAlgorithm>> = vec![
        Box::new(NaiveRecompute::new(config.clone(), store.clone(), &units).expect("clean store")),
        Box::new(
            NaiveIncremental::new(config.clone(), store.clone(), &units).expect("clean store"),
        ),
        Box::new(BasicCtup::new(config.clone(), store.clone(), &units).expect("clean store")),
        Box::new(OptCtup::new(config.clone(), store.clone(), &units).expect("clean store")),
    ];
    for alg in &algs {
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(10));
    }

    for (step, update) in workload.next_updates(400).into_iter().enumerate() {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        units[update.object as usize] = update.to;
        for alg in algs.iter_mut() {
            alg.handle_update(location_update).expect("clean store");
        }
        // Cheap cross-check every step; full oracle check periodically.
        let reference: Vec<Safety> = algs[0].result().iter().map(|e| e.safety).collect();
        for alg in &algs[1..] {
            let got: Vec<Safety> = alg.result().iter().map(|e| e.safety).collect();
            assert_eq!(got, reference, "{} diverged at step {step}", alg.name());
        }
        if step % 50 == 0 {
            for alg in &algs {
                oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(10));
            }
        }
    }
    for alg in &algs {
        oracle.assert_result_matches(&alg.result(), &units, 0.1, QueryMode::TopK(10));
        assert_eq!(alg.metrics().updates_processed, 400);
    }
}

#[test]
fn grid_schemes_do_less_work_than_the_baselines() {
    let (mut workload, store, units) = workload(12);
    let config = CtupConfig::paper_default();
    let mut basic = BasicCtup::new(config.clone(), store.clone(), &units).expect("clean store");
    let mut opt = OptCtup::new(config.clone(), store.clone(), &units).expect("clean store");
    let io_before = store.stats().snapshot();
    for update in workload.next_updates(500) {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        basic.handle_update(location_update).expect("clean store");
        opt.handle_update(location_update).expect("clean store");
    }
    let io = store.stats().snapshot().since(&io_before);
    // Grid schemes touch the lower level far less often than once per
    // update-and-place: 500 updates over 64 cells must not read more than
    // a few thousand cells in total (the naive baseline would read
    // 64 cells * 500 updates = 32000).
    assert!(
        io.cell_reads < 6_000,
        "grid schemes read {} cells",
        io.cell_reads
    );
    // Opt maintains fewer or equally many places than Basic *per cell it
    // covers*; globally it must stay well below the full place count.
    assert!(opt.maintained_places() < store.num_places() / 2);
    assert!(basic.maintained_places() < store.num_places());
}

#[test]
fn adversarial_teleport_stream_stays_correct() {
    // Teleports have no spatial locality at all — every update crosses many
    // cells and flips many relations, the worst case for lower-bound
    // maintenance. Correctness must not depend on locality.
    let params = WorkloadParams {
        num_units: 20,
        places: PlaceGenConfig {
            count: 1_000,
            ..PlaceGenConfig::default()
        },
        seed: 14,
        ..WorkloadParams::default()
    };
    let workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    let mut units = workload.unit_positions();
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    let config = CtupConfig::with_k(10);
    let mut basic = BasicCtup::new(config.clone(), store.clone(), &units).expect("clean store");
    let mut opt = OptCtup::new(config, store, &units).expect("clean store");

    // The monitors resolve old positions from their own unit tables, so
    // only the stream's absolute target positions matter here.
    let mut teleports = ctup::mogen::TeleportSim::new(20, 14);
    for (step, update) in teleports.collect_updates(300).into_iter().enumerate() {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        units[update.object as usize] = update.to;
        basic.handle_update(location_update).expect("clean store");
        opt.handle_update(location_update).expect("clean store");
        oracle.assert_result_matches(&basic.result(), &units, 0.1, QueryMode::TopK(10));
        oracle.assert_result_matches(&opt.result(), &units, 0.1, QueryMode::TopK(10));
        if step % 100 == 0 {
            basic.check_lb_invariant();
            opt.check_lb_invariant();
        }
    }
    basic.check_lb_invariant();
    opt.check_lb_invariant();
}

#[test]
fn extent_workload_is_monitored_correctly() {
    let params = WorkloadParams {
        num_units: 15,
        places: PlaceGenConfig {
            count: 600,
            extent_prob: 0.4,
            extent_max_side: 0.03,
            ..PlaceGenConfig::default()
        },
        seed: 13,
        ..WorkloadParams::default()
    };
    let mut workload = Workload::generate(params);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(8),
        workload.places_vec(),
    ));
    let mut units = workload.unit_positions();
    let oracle = Oracle::from_store(store.as_ref()).expect("clean store");
    let config = CtupConfig::with_k(8);
    let mut basic = BasicCtup::new(config.clone(), store.clone(), &units).expect("clean store");
    let mut opt = OptCtup::new(config, store, &units).expect("clean store");
    oracle.assert_result_matches(&opt.result(), &units, 0.1, QueryMode::TopK(8));
    for (step, update) in workload.next_updates(250).into_iter().enumerate() {
        let location_update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        units[update.object as usize] = update.to;
        basic.handle_update(location_update).expect("clean store");
        opt.handle_update(location_update).expect("clean store");
        oracle.assert_result_matches(&basic.result(), &units, 0.1, QueryMode::TopK(8));
        oracle.assert_result_matches(&opt.result(), &units, 0.1, QueryMode::TopK(8));
        if step % 100 == 0 {
            basic.check_lb_invariant();
            opt.check_lb_invariant();
        }
    }
}
