//! Mutation validation for the deterministic-schedule model checker.
//!
//! Every `ctup-sched` model ships with seeded mutants — variants that
//! re-introduce one specific concurrency bug. This suite is the proof the
//! checkers are not vacuous: for each model, the `Correct` variant must
//! survive a *complete* exhaustive exploration, and every mutant must be
//! caught with the failure the model's documentation promises. If someone
//! weakens an invariant (or a refactor accidentally shrinks a model's
//! schedule space below the interesting interleavings), this matrix goes
//! red before the real code regresses.
//!
//! The same matrix exists as unit tests inside `crates/sched`; this copy
//! runs against the published crate surface, so an API change that would
//! break downstream model authors is also caught here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_sched::models::{admission, barrier, cache, failover, session};
use ctup_sched::{explore_exhaustive, explore_random, Counterexample, ExplorationReport};

const BUDGET: usize = 500_000;

/// Asserts a complete, non-trivial exhaustive pass.
fn assert_clean(report: ExplorationReport, label: &str) {
    assert!(
        report.complete,
        "{label}: schedule space not exhausted: {report:?}"
    );
    assert!(
        report.schedules > 1,
        "{label}: only {} schedule(s) — the model is not concurrent",
        report.schedules
    );
}

/// Asserts the mutant was caught and the failure names the promised check.
fn assert_caught(cex: Counterexample, expect_any: &[&str], label: &str) {
    assert!(
        expect_any.iter().any(|e| cex.failure.contains(e)),
        "{label}: caught, but with the wrong failure: {cex}"
    );
    assert!(
        !cex.schedule.is_empty(),
        "{label}: empty counterexample schedule"
    );
}

#[test]
fn session_correct_is_schedule_clean() {
    let report = explore_exhaustive(|| session::model(session::SessionMutation::Correct), BUDGET)
        .expect("correct session protocol");
    assert_clean(report, "session");
}

#[test]
fn session_mutants_are_caught() {
    use session::SessionMutation as M;
    let matrix: [(M, &[&str]); 3] = [
        (M::ForgetRetract, &["no-ghost-pending"]),
        (M::AckBeforeApply, &["ack-never-precedes-apply"]),
        (M::EnqueueBeforeRegister, &["no-ghost-pending", "monotone"]),
    ];
    for (mutation, expect) in matrix {
        let cex = explore_exhaustive(|| session::model(mutation), BUDGET)
            .expect_err("mutant must be caught");
        assert_caught(cex, expect, &format!("session {mutation:?}"));
    }
}

#[test]
fn admission_correct_is_schedule_clean() {
    let report = explore_exhaustive(
        || admission::model(admission::AdmissionMutation::Correct),
        BUDGET,
    )
    .expect("correct hysteresis");
    assert_clean(report, "admission");
}

#[test]
fn admission_mutants_are_caught() {
    use admission::AdmissionMutation as M;
    let matrix: [(M, &[&str]); 2] = [
        (M::ClearBelowHigh, &["clears-only-at-low"]),
        (M::NeverClear, &["no-shed-latch-up"]),
    ];
    for (mutation, expect) in matrix {
        let cex = explore_exhaustive(|| admission::model(mutation), BUDGET)
            .expect_err("mutant must be caught");
        assert_caught(cex, expect, &format!("admission {mutation:?}"));
    }
}

#[test]
fn cache_correct_is_schedule_clean() {
    let report = explore_exhaustive(|| cache::model(cache::CacheMutation::Correct), BUDGET)
        .expect("generation-checked miss path");
    assert_clean(report, "cache");
}

#[test]
fn cache_mutant_is_caught() {
    let cex = explore_exhaustive(|| cache::model(cache::CacheMutation::SkipGenCheck), BUDGET)
        .expect_err("stale-insert race must be caught");
    assert_caught(cex, &["no-stale-cache-after-write"], "cache SkipGenCheck");
}

#[test]
fn barrier_correct_is_schedule_clean() {
    let report = explore_exhaustive(|| barrier::model(barrier::BarrierMutation::Correct), BUDGET)
        .expect("shard barrier");
    assert_clean(report, "barrier");
}

#[test]
fn barrier_mutant_is_caught() {
    let cex = explore_exhaustive(
        || barrier::model(barrier::BarrierMutation::MergeEarly),
        BUDGET,
    )
    .expect_err("early merge must be caught");
    assert_caught(
        cex,
        &["merge-only-after-barrier", "merged-equals-sequential"],
        "barrier MergeEarly",
    );
}

#[test]
fn failover_correct_is_schedule_clean_under_both_chaos_scripts() {
    use failover::{FailoverMutation as M, FailoverScenario as S};
    for scenario in [S::Kill, S::Partition] {
        let report = explore_exhaustive(|| failover::model(M::Correct, scenario), BUDGET)
            .expect("correct promotion handoff");
        assert_clean(report, &format!("failover {scenario:?}"));
    }
}

#[test]
fn failover_mutants_are_caught() {
    use failover::{FailoverMutation as M, FailoverScenario as S};
    let matrix: [(M, S, &[&str]); 4] = [
        (M::AckBeforeShip, S::Kill, &["no-acked-report-loss"]),
        (M::PromoteBeforeDrain, S::Kill, &["no-acked-report-loss"]),
        (M::PromoteWithoutFence, S::Partition, &["no-dual-primary"]),
        (
            M::IgnoreEpochFencing,
            S::Partition,
            &["stale-frames-fenced"],
        ),
    ];
    for (mutation, scenario, expect) in matrix {
        let cex = explore_exhaustive(|| failover::model(mutation, scenario), BUDGET)
            .expect_err("mutant must be caught");
        assert_caught(cex, expect, &format!("failover {mutation:?}/{scenario:?}"));
    }
}

/// Random exploration is a fallback for models whose schedule space
/// outgrows exhaustive search; it must find the same seeded bugs within a
/// modest iteration budget, and be reproducible from its seed.
#[test]
fn random_exploration_also_catches_the_ghost_pending_mutant() {
    let first = explore_random(
        || session::model(session::SessionMutation::ForgetRetract),
        0xD1CE,
        2_000,
    )
    .expect_err("random exploration must find the ghost within budget");
    let second = explore_random(
        || session::model(session::SessionMutation::ForgetRetract),
        0xD1CE,
        2_000,
    )
    .expect_err("same seed, same result");
    assert_eq!(
        first, second,
        "random exploration must be seed-deterministic"
    );
    assert!(first.failure.contains("no-ghost-pending"), "{first}");
}

/// A counterexample's schedule is a replayable artifact: driving a fresh
/// model with exactly that schedule must reproduce the failure. This is
/// what makes a CI counterexample debuggable rather than a flake report.
#[test]
fn counterexamples_replay_against_a_fresh_model() {
    let cex = explore_exhaustive(|| cache::model(cache::CacheMutation::SkipGenCheck), BUDGET)
        .expect_err("stale-insert race must be caught");
    // Replay by always choosing the recorded thread: run a single-schedule
    // exploration whose chooser follows the counterexample's name sequence.
    let mut cursor = 0usize;
    let schedule = cex.schedule.clone();
    let names = ["reader", "writer"];
    let replayed = cache::model(cache::CacheMutation::SkipGenCheck).run(|n| {
        let want = schedule.get(cursor).map(String::as_str);
        cursor += 1;
        // Map the recorded thread name back to an index among the enabled
        // threads; the model has two threads so enabled indices are stable
        // only while both are runnable — fall back to 0 past the prefix.
        match want {
            Some(name) => names
                .iter()
                .position(|&k| k == name)
                .unwrap_or(0)
                .min(n - 1),
            None => 0,
        }
    });
    let replay_cex = replayed.expect_err("replaying the failing schedule must fail again");
    assert_eq!(replay_cex.failure, cex.failure);
}
