//! Property-based conformance: on arbitrary place sets, unit fleets and
//! update streams, every scheme must report exactly the oracle's safety
//! multiset after every update, and the grid schemes' internal invariants
//! must hold.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::naive::NaiveIncremental;
use ctup::core::oracle::Oracle;
use ctup::core::types::{LocationUpdate, Place, PlaceId, UnitId};
use ctup::core::{BasicCtup, OptCtup};
use ctup::spatial::{Grid, Point};
use ctup::storage::{CellLocalStore, PlaceStore};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Scenario {
    places: Vec<Place>,
    units: Vec<Point>,
    updates: Vec<(usize, Point)>,
    k: usize,
    delta: i64,
    granularity: u32,
    radius: f64,
}

fn point_strategy() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn scenario() -> impl Strategy<Value = Scenario> {
    // ~25% of places carry an extent (the future-work extension), clipped
    // to the unit square around their position.
    let place = (
        point_strategy(),
        0u32..6,
        prop::option::weighted(0.25, (0.0f64..0.04, 0.0f64..0.04)),
    );
    let places = prop::collection::vec(place, 1..60).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (pos, rp, extent))| match extent {
                None => Place::point(PlaceId(i as u32), pos, rp),
                Some((hw, hh)) => {
                    let lo =
                        ctup::spatial::Point::new((pos.x - hw).max(0.0), (pos.y - hh).max(0.0));
                    let hi =
                        ctup::spatial::Point::new((pos.x + hw).min(1.0), (pos.y + hh).min(1.0));
                    Place::extended(PlaceId(i as u32), pos, rp, ctup::spatial::Rect::new(lo, hi))
                }
            })
            .collect::<Vec<_>>()
    });
    let units = prop::collection::vec(point_strategy(), 1..12);
    (places, units, 1usize..8, 0i64..8, 2u32..9, 0.02f64..0.35).prop_flat_map(
        |(places, units, k, delta, granularity, radius)| {
            let num_units = units.len();
            let updates = prop::collection::vec((0..num_units, point_strategy()), 1..40);
            (
                Just(places),
                Just(units),
                updates,
                Just(k),
                Just(delta),
                Just(granularity),
                Just(radius),
            )
                .prop_map(|(places, units, updates, k, delta, granularity, radius)| {
                    Scenario {
                        places,
                        units,
                        updates,
                        k,
                        delta,
                        granularity,
                        radius,
                    }
                })
        },
    )
}

fn run_scenario(s: &Scenario, doo: bool) {
    let oracle = Oracle::new(s.places.clone());
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(s.granularity),
        s.places.clone(),
    ));
    let config = CtupConfig {
        mode: QueryMode::TopK(s.k),
        protection_radius: s.radius,
        delta: s.delta,
        doo_enabled: doo,
        purge_dechash_on_access: true,
    };
    let mut units = s.units.clone();
    let mut basic = BasicCtup::new(config.clone(), store.clone(), &units).expect("clean store");
    let mut opt = OptCtup::new(config.clone(), store.clone(), &units).expect("clean store");
    let mut inc = NaiveIncremental::new(config.clone(), store, &units).expect("clean store");
    let mode = QueryMode::TopK(s.k);
    oracle.assert_result_matches(&basic.result(), &units, s.radius, mode);
    oracle.assert_result_matches(&opt.result(), &units, s.radius, mode);
    oracle.assert_result_matches(&inc.result(), &units, s.radius, mode);
    for &(unit, new) in &s.updates {
        let update = LocationUpdate {
            unit: UnitId(unit as u32),
            new,
        };
        units[unit] = new;
        basic.handle_update(update).expect("clean store");
        opt.handle_update(update).expect("clean store");
        inc.handle_update(update).expect("clean store");
        oracle.assert_result_matches(&basic.result(), &units, s.radius, mode);
        oracle.assert_result_matches(&opt.result(), &units, s.radius, mode);
        oracle.assert_result_matches(&inc.result(), &units, s.radius, mode);
    }
    basic.check_lb_invariant();
    opt.check_lb_invariant();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn schemes_match_oracle_with_doo(s in scenario()) {
        run_scenario(&s, true);
    }

    #[test]
    fn schemes_match_oracle_without_doo(s in scenario()) {
        run_scenario(&s, false);
    }

    /// Threshold mode conformance on the same scenarios.
    #[test]
    fn threshold_mode_matches_oracle(s in scenario(), tau in -6i64..4) {
        let oracle = Oracle::new(s.places.clone());
        let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
            Grid::unit_square(s.granularity),
            s.places.clone(),
        ));
        let config = CtupConfig {
            mode: QueryMode::Threshold(tau),
            protection_radius: s.radius,
            delta: s.delta,
            doo_enabled: true,
            purge_dechash_on_access: true,
        };
        let mut units = s.units.clone();
        let mut opt = OptCtup::new(config, store, &units).expect("clean store");
        let mode = QueryMode::Threshold(tau);
        oracle.assert_result_matches(&opt.result(), &units, s.radius, mode);
        for &(unit, new) in &s.updates {
            units[unit] = new;
            opt.handle_update(LocationUpdate { unit: UnitId(unit as u32), new })
                .expect("clean store");
            oracle.assert_result_matches(&opt.result(), &units, s.radius, mode);
        }
        opt.check_lb_invariant();
    }
}
