//! City patrol: the paper's full experimental setting, live.
//!
//! Generates the Table III workload (150 units on a synthetic road
//! network, 15 000 places), monitors the top-15 unsafe places with
//! OptCTUP wrapped in a [`Server`], streams location updates, and prints
//! every change to the result, then a cost comparison of all algorithms.
//!
//! ```text
//! cargo run --release --example city_patrol [-- <updates>]
//! ```
//!
//! Examples are demos, not library code: aborting on a violated "clean
//! store / live worker" invariant is the right behaviour here, so the
//! workspace-wide expect/unwrap denies are relaxed.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::CtupConfig;
use ctup::core::naive::{NaiveIncremental, NaiveRecompute};
use ctup::core::server::{MonitorEvent, Server};
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::core::{BasicCtup, OptCtup};
use ctup::mogen::Workload;
use ctup::spatial::Grid;
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let updates: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);

    println!("generating the Table III workload …");
    let mut workload = Workload::paper_default(7);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(10),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();

    println!("initializing OptCTUP over {} places …", store.num_places());
    let monitor =
        OptCtup::new(CtupConfig::paper_default(), store.clone(), &units).expect("clean store");
    println!(
        "init done in {:.1} ms; SK = {:?}\n",
        monitor.init_stats().wall.as_secs_f64() * 1e3,
        monitor.sk()
    );
    let mut server = Server::new(monitor);

    println!("streaming {updates} location updates …");
    let stream = workload.next_updates(updates);
    let mut shown = 0;
    for update in &stream {
        let (events, _) = server
            .ingest(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
        for event in events {
            if shown < 25 {
                match event {
                    MonitorEvent::Entered { place, safety } => {
                        println!(
                            "  ALERT  place {:>5} became top-k unsafe (safety {safety})",
                            place.0
                        )
                    }
                    MonitorEvent::Left { place } => {
                        println!("  clear  place {:>5} no longer top-k unsafe", place.0)
                    }
                    MonitorEvent::SafetyChanged { place, old, new } => {
                        println!("  shift  place {:>5} safety {old} -> {new}", place.0)
                    }
                }
                shown += 1;
                if shown == 25 {
                    println!("  … (further events suppressed)");
                }
            }
        }
    }
    let metrics = server.algorithm().metrics();
    println!(
        "\nOptCTUP: {} events, {:.2} cells accessed/update, {} places maintained",
        server.events_emitted(),
        metrics.cells_accessed as f64 / metrics.updates_processed.max(1) as f64,
        metrics.maintained_now
    );

    println!("\ncost comparison on the same stream:");
    let compare: &[(&str, usize)] = &[
        ("NaiveRecompute", updates.min(100)),
        ("NaiveIncremental", updates),
        ("BasicCTUP", updates),
    ];
    for &(name, n) in compare {
        let mut workload = Workload::paper_default(7);
        let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
            Grid::unit_square(10),
            workload.places_vec(),
        ));
        let units = workload.unit_positions();
        let config = CtupConfig::paper_default();
        let mut alg: Box<dyn CtupAlgorithm> = match name {
            "NaiveRecompute" => {
                Box::new(NaiveRecompute::new(config, store, &units).expect("clean store"))
            }
            "NaiveIncremental" => {
                Box::new(NaiveIncremental::new(config, store, &units).expect("clean store"))
            }
            _ => Box::new(BasicCtup::new(config, store, &units).expect("clean store")),
        };
        let stream = workload.next_updates(n);
        let start = Instant::now();
        for update in &stream {
            alg.handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
        }
        println!(
            "  {name:<17} {:>9.1} us/update  ({} updates)",
            start.elapsed().as_micros() as f64 / n as f64,
            n
        );
    }
    let total = metrics.maintain_nanos + metrics.access_nanos;
    println!(
        "  {:<17} {:>9.1} us/update  ({} updates)",
        "OptCTUP",
        total as f64 / 1e3 / metrics.updates_processed.max(1) as f64,
        metrics.updates_processed
    );
}
