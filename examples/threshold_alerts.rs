//! Threshold alerts: "page the dispatcher whenever ANY place falls below a
//! safety threshold" — the paper's future-work variant #3, plus dataset
//! persistence through the snapshot format.
//!
//! ```text
//! cargo run --release --example threshold_alerts
//! ```
//!
//! Examples are demos, not library code: aborting on a violated "clean
//! store / live worker" invariant is the right behaviour here, so the
//! workspace-wide expect/unwrap denies are relaxed.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::CtupConfig;
use ctup::core::ext::threshold::ThresholdMonitor;
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::mogen::{PlaceGenConfig, PlaceGenerator, Spread, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{snapshot, CellLocalStore, PlaceStore};
use std::sync::Arc;

fn main() {
    // A clustered city: most protection demand sits in three hot districts.
    let place_config = PlaceGenConfig {
        count: 5_000,
        spread: Spread::Clustered {
            clusters: 3,
            std_dev: 0.06,
            fraction_clustered: 0.7,
        },
        ..PlaceGenConfig::default()
    };
    let places = PlaceGenerator::new(place_config.clone()).generate(99);

    // Persist and reload the data set through the snapshot format, the way
    // a deployment would ship its place registry.
    let path = std::env::temp_dir().join("ctup_threshold_places.txt");
    snapshot::save_places(&path, &places).expect("save snapshot");
    let restored = snapshot::load_places(&path).expect("load snapshot");
    assert_eq!(restored, places);
    println!(
        "place registry snapshot round-tripped via {}",
        path.display()
    );

    let mut workload = Workload::generate(WorkloadParams {
        num_units: 100,
        places: place_config,
        seed: 99,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> =
        Arc::new(CellLocalStore::build(Grid::unit_square(10), restored));
    let units = workload.unit_positions();

    // Alarm whenever a place is short by 3 or more protectors.
    let tau = -5;
    let mut monitor = ThresholdMonitor::new(tau, CtupConfig::paper_default(), store, &units)
        .expect("clean store");
    println!(
        "monitoring safety < {tau}: initially {} places in alarm\n",
        monitor.alarm_count()
    );

    let mut worst_alarms = 0usize;
    let mut total_alarm_updates = 0u64;
    for update in workload.next_updates(2_000) {
        let before = monitor.alarm_count();
        monitor
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .expect("clean store");
        let after = monitor.alarm_count();
        if after != before {
            total_alarm_updates += 1;
        }
        if after > worst_alarms {
            worst_alarms = after;
            let worst = monitor.unsafe_places();
            println!(
                "new peak: {} places below {tau} (worst: place {} at {})",
                after, worst[0].place.0, worst[0].safety
            );
        }
    }
    println!(
        "\nfinal: {} alarms, peak {}, {} updates changed the alarm set",
        monitor.alarm_count(),
        worst_alarms,
        total_alarm_updates
    );
    let m = monitor.inner().metrics();
    println!(
        "costs: {:.3} cells accessed/update, {} places maintained",
        m.cells_accessed as f64 / m.updates_processed.max(1) as f64,
        m.maintained_now
    );
    let _ = std::fs::remove_file(&path);
}
