//! A tour of the paper's future-work extensions: places with extent,
//! decaying protection kernels, and predictive queries.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```
//!
//! Examples are demos, not library code: aborting on a violated "clean
//! store / live worker" invariant is the right behaviour here, so the
//! workspace-wide expect/unwrap denies are relaxed.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::{CtupConfig, QueryMode};
use ctup::core::ext::decay::{DecayConfig, DecayCtup, DecayKernel, DecayMode, DecayOracle};
use ctup::core::ext::predict::PredictiveCtup;
use ctup::core::opt::OptCtup;
use ctup::core::types::{LocationUpdate, Place, PlaceId, UnitId};
use ctup::spatial::{Grid, Point, Rect};
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;

fn extent_demo() {
    println!("— places with extent —");
    // A shopping mall occupies a whole block; a kiosk is a point. A patrol
    // protects the mall only when its entire footprint is in range.
    let mall = Place::extended(
        PlaceId(0),
        Point::new(0.50, 0.50),
        2,
        Rect::from_coords(0.44, 0.46, 0.56, 0.54),
    );
    let kiosk = Place::point(PlaceId(1), Point::new(0.52, 0.50), 1);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(10),
        vec![mall, kiosk],
    ));
    let mut monitor = OptCtup::new(
        CtupConfig {
            protection_radius: 0.08,
            ..CtupConfig::with_k(2)
        },
        store,
        &[Point::new(0.52, 0.50)],
    )
    .expect("clean store");
    for entry in monitor.result() {
        println!(
            "   place {} safety {:>2}   (the mall needs the whole footprint covered)",
            entry.place.0, entry.safety
        );
    }
    // Moving closer to the mall's center covers the full footprint.
    monitor
        .handle_update(LocationUpdate {
            unit: UnitId(0),
            new: Point::new(0.50, 0.50),
        })
        .expect("clean store");
    println!("   after centering the patrol on the mall:");
    for entry in monitor.result() {
        println!("   place {} safety {:>2}", entry.place.0, entry.safety);
    }
    println!();
}

fn decay_demo() {
    println!("— decaying protection —");
    let places: Vec<Place> = (0..40)
        .map(|i| {
            Place::point(
                PlaceId(i),
                Point::new((i % 8) as f64 / 8.0 + 0.06, (i / 8) as f64 / 5.0 + 0.1),
                1 + i % 3,
            )
        })
        .collect();
    let units: Vec<Point> = vec![Point::new(0.3, 0.3), Point::new(0.7, 0.5)];
    for kernel in [
        DecayKernel::Step { radius: 0.15 },
        DecayKernel::Cone { radius: 0.25 },
        DecayKernel::Gaussian {
            sigma: 0.08,
            cutoff: 0.25,
        },
    ] {
        let oracle = DecayOracle::new(places.clone(), kernel);
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(8), places.clone()));
        let monitor = DecayCtup::new(
            DecayConfig {
                kernel,
                mode: DecayMode::TopK(3),
                delta: 0.5,
            },
            store,
            &units,
        )
        .expect("clean store");
        let top = monitor.result();
        let check = oracle.result(&units, DecayMode::TopK(3));
        assert_eq!(top.len(), check.len());
        print!("   {kernel:?}: top-3 = ");
        for e in &top {
            print!("(p{} {:.2}) ", e.place.0, e.safety);
        }
        println!();
    }
    println!();
}

fn predict_demo() {
    println!("— predictive queries —");
    let places = vec![
        Place::point(PlaceId(0), Point::new(0.2, 0.5), 1),
        Place::point(PlaceId(1), Point::new(0.8, 0.5), 1),
    ];
    let store = CellLocalStore::build(Grid::unit_square(10), places);
    // The single patrol starts near place 0 and reports a move towards
    // place 1; dead reckoning sees where coverage will be lost.
    let mut predictor =
        PredictiveCtup::new(&store, &[Point::new(0.2, 0.5)], 0.12).expect("clean store");
    predictor.observe(LocationUpdate {
        unit: UnitId(0),
        new: Point::new(0.32, 0.5),
    });
    for horizon in [0.0, 2.0, 4.0] {
        let result = predictor.predict(horizon, QueryMode::TopK(1));
        println!(
            "   in {horizon:>3} report-intervals the least safe place is {} (safety {})",
            result[0].place.0, result[0].safety
        );
    }
}

fn main() {
    extent_demo();
    decay_demo();
    predict_demo();
}
