//! Threaded dispatch center: location updates stream in on the main
//! thread while the monitor runs on its own worker ([`ctup::core::Pipeline`]),
//! the way a wireless front-end and a dispatcher console would share the
//! server.
//!
//! ```text
//! cargo run --release --example pipeline_dispatch
//! ```
//!
//! Examples are demos, not library code: aborting on a violated "clean
//! store / live worker" invariant is the right behaviour here, so the
//! workspace-wide expect/unwrap denies are relaxed.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::config::CtupConfig;
use ctup::core::pipeline::{Pipeline, SendError};
use ctup::core::server::MonitorEvent;
use ctup::core::types::{LocationUpdate, UnitId};
use ctup::core::OptCtup;
use ctup::mogen::{PlaceGenConfig, Workload, WorkloadParams};
use ctup::spatial::Grid;
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;

fn main() {
    let mut workload = Workload::generate(WorkloadParams {
        num_units: 80,
        places: PlaceGenConfig {
            count: 8_000,
            ..PlaceGenConfig::default()
        },
        seed: 404,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(10),
        workload.places_vec(),
    ));
    let units = workload.unit_positions();

    println!("spawning the monitor worker …");
    let monitor = OptCtup::new(CtupConfig::with_k(8), store, &units).expect("clean store");
    let pipeline = Pipeline::spawn(monitor, 1024);
    let events = pipeline.events().clone();

    // Consumer thread: the dispatcher console.
    let console = std::thread::spawn(move || {
        let mut shown = 0usize;
        let mut total = 0usize;
        for batch in events.iter() {
            total += batch.events.len();
            for event in &batch.events {
                if shown < 15 {
                    match *event {
                        MonitorEvent::Entered { place, safety } => {
                            println!(
                                "  [upd {:>5}] ALERT place {:>5} (safety {safety})",
                                batch.seq, place.0
                            )
                        }
                        MonitorEvent::Left { place } => {
                            println!("  [upd {:>5}] clear place {:>5}", batch.seq, place.0)
                        }
                        MonitorEvent::SafetyChanged { place, old, new } => {
                            println!(
                                "  [upd {:>5}] place {:>5} {old} -> {new}",
                                batch.seq, place.0
                            )
                        }
                    }
                    shown += 1;
                }
            }
        }
        total
    });

    // Producer: the wireless front-end streaming 5 000 reports.
    let mut dropped = 0usize;
    for update in workload.next_updates(5_000) {
        let update = LocationUpdate {
            unit: UnitId(update.object),
            new: update.to,
        };
        match pipeline.try_send(update) {
            Ok(()) => {}
            Err(SendError::Full) => {
                // Backpressure: a real front-end would coalesce; we block.
                pipeline.send(update).expect("monitor worker alive");
                dropped += 1;
            }
            Err(SendError::WorkerDied) => break,
        }
    }
    let report = pipeline.shutdown();
    let total_events = console.join().expect("console thread");

    println!("\nworker processed {} updates", report.updates_processed);
    println!("events consumed on the console thread: {total_events}");
    println!(
        "events emitted by the monitor:         {}",
        report.events_emitted
    );
    println!("updates that hit backpressure: {dropped}");
    println!(
        "monitor cost: {:.1} us/update, {} places maintained",
        (report.metrics.maintain_nanos + report.metrics.access_nanos) as f64
            / report.metrics.updates_processed.max(1) as f64
            / 1e3,
        report.metrics.maintained_now
    );
}
