//! Quickstart: monitor the top-3 unsafe places in a toy city.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Examples are demos, not library code: aborting on a violated "clean
//! store / live worker" invariant is the right behaviour here, so the
//! workspace-wide expect/unwrap denies are relaxed.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup::core::algorithm::CtupAlgorithm;
use ctup::core::config::CtupConfig;
use ctup::core::opt::OptCtup;
use ctup::core::types::{LocationUpdate, Place, PlaceId, UnitId};
use ctup::spatial::{Grid, Point};
use ctup::storage::{CellLocalStore, PlaceStore};
use std::sync::Arc;

fn print_result(label: &str, alg: &OptCtup) {
    println!("{label}");
    for entry in alg.result() {
        println!("   place {:>2}  safety {:>3}", entry.place.0, entry.safety);
    }
    println!();
}

fn main() {
    // A 1x1 km downtown with a few protected places. RP is how many police
    // cars each place needs nearby (within 100 m).
    let places = vec![
        Place::point(PlaceId(0), Point::new(0.20, 0.30), 2), // bank
        Place::point(PlaceId(1), Point::new(0.25, 0.35), 1), // shop
        Place::point(PlaceId(2), Point::new(0.70, 0.70), 3), // embassy
        Place::point(PlaceId(3), Point::new(0.75, 0.65), 1), // school
        Place::point(PlaceId(4), Point::new(0.50, 0.10), 1), // station
    ];
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(Grid::unit_square(10), places));

    // Three patrol cars.
    let patrols = vec![
        Point::new(0.22, 0.32), // downtown
        Point::new(0.72, 0.68), // embassy district
        Point::new(0.72, 0.66), // embassy district
    ];

    let config = CtupConfig {
        protection_radius: 0.1,
        ..CtupConfig::with_k(3)
    };
    let mut monitor = OptCtup::new(config, store, &patrols).expect("clean store");
    print_result("Initial top-3 unsafe places:", &monitor);

    // Car 0 is called away from downtown towards the station.
    println!("-> patrol 0 drives to the station district");
    monitor
        .handle_update(LocationUpdate {
            unit: UnitId(0),
            new: Point::new(0.50, 0.12),
        })
        .expect("clean store");
    print_result("After the move:", &monitor);

    // Car 1 redeploys downtown to cover the gap.
    println!("-> patrol 1 redeploys downtown");
    monitor
        .handle_update(LocationUpdate {
            unit: UnitId(1),
            new: Point::new(0.21, 0.31),
        })
        .expect("clean store");
    print_result("After the redeployment:", &monitor);

    let m = monitor.metrics();
    println!(
        "processed {} updates, accessed {} cells, {} places maintained in memory",
        m.updates_processed, m.cells_accessed, m.maintained_now
    );
}
