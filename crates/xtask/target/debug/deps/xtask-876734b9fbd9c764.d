/root/repo/crates/xtask/target/debug/deps/xtask-876734b9fbd9c764.d: /root/repo/clippy.toml src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs Cargo.toml

/root/repo/crates/xtask/target/debug/deps/libxtask-876734b9fbd9c764.rmeta: /root/repo/clippy.toml src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
src/fingerprint.rs:
src/json.rs:
src/lexer.rs:
src/rules.rs:
src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
