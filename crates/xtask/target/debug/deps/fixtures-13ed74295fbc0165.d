/root/repo/crates/xtask/target/debug/deps/fixtures-13ed74295fbc0165.d: tests/fixtures.rs

/root/repo/crates/xtask/target/debug/deps/fixtures-13ed74295fbc0165: tests/fixtures.rs

tests/fixtures.rs:
