/root/repo/crates/xtask/target/debug/deps/xtask-0e125e4f847f2375.d: src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs

/root/repo/crates/xtask/target/debug/deps/xtask-0e125e4f847f2375: src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs

src/lib.rs:
src/fingerprint.rs:
src/json.rs:
src/lexer.rs:
src/rules.rs:
src/source.rs:
