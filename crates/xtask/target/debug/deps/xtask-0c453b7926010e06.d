/root/repo/crates/xtask/target/debug/deps/xtask-0c453b7926010e06.d: src/main.rs

/root/repo/crates/xtask/target/debug/deps/xtask-0c453b7926010e06: src/main.rs

src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
