/root/repo/crates/xtask/target/debug/deps/xtask-fa634a3fdb2c4e2f.d: /root/repo/clippy.toml src/main.rs Cargo.toml

/root/repo/crates/xtask/target/debug/deps/libxtask-fa634a3fdb2c4e2f.rmeta: /root/repo/clippy.toml src/main.rs Cargo.toml

/root/repo/clippy.toml:
src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
