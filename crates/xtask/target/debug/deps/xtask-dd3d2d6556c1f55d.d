/root/repo/crates/xtask/target/debug/deps/xtask-dd3d2d6556c1f55d.d: src/main.rs

/root/repo/crates/xtask/target/debug/deps/xtask-dd3d2d6556c1f55d: src/main.rs

src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
