/root/repo/crates/xtask/target/debug/deps/xtask-f983a9e6a25924cd.d: src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs

/root/repo/crates/xtask/target/debug/deps/libxtask-f983a9e6a25924cd.rlib: src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs

/root/repo/crates/xtask/target/debug/deps/libxtask-f983a9e6a25924cd.rmeta: src/lib.rs src/fingerprint.rs src/json.rs src/lexer.rs src/rules.rs src/source.rs

src/lib.rs:
src/fingerprint.rs:
src/json.rs:
src/lexer.rs:
src/rules.rs:
src/source.rs:
