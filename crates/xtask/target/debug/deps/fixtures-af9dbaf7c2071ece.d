/root/repo/crates/xtask/target/debug/deps/fixtures-af9dbaf7c2071ece.d: /root/repo/clippy.toml tests/fixtures.rs Cargo.toml

/root/repo/crates/xtask/target/debug/deps/libfixtures-af9dbaf7c2071ece.rmeta: /root/repo/clippy.toml tests/fixtures.rs Cargo.toml

/root/repo/clippy.toml:
tests/fixtures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
