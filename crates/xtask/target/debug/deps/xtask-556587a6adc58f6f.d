/root/repo/crates/xtask/target/debug/deps/xtask-556587a6adc58f6f.d: /root/repo/clippy.toml src/main.rs Cargo.toml

/root/repo/crates/xtask/target/debug/deps/libxtask-556587a6adc58f6f.rmeta: /root/repo/clippy.toml src/main.rs Cargo.toml

/root/repo/clippy.toml:
src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
