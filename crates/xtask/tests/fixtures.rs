//! End-to-end tests of the lint engine against fixture workspaces written
//! to a temp directory: each test builds a tiny tree, runs [`xtask::run_lint`]
//! exactly like the binary does, and asserts on the resulting report.

// Fixture helpers are plain fns, outside the `allow-unwrap-in-tests` carve-out.
#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::PathBuf;
use xtask::fingerprint::{FingerprintConfig, TrackedItem};
use xtask::rules::MetricsCoverage;
use xtask::{run_lint, LintConfig, LintReport};

/// A throwaway workspace under the OS temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("ctup-xtask-fixture-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    fn lint(&self, config: &LintConfig, update: bool) -> LintReport {
        run_lint(&self.root, config, update).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Rules L001–L003 only; L004/L005 are opt-in per test.
fn base_config() -> LintConfig {
    LintConfig {
        metrics: Vec::new(),
        fingerprints: None,
    }
}

fn rules_at<'a>(report: &'a LintReport, file: &str) -> Vec<(&'a str, usize)> {
    report
        .violations
        .iter()
        .filter(|v| v.file == file)
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l001_flags_lib_panics_but_not_tests_or_out_of_scope_crates() {
    let fx = Fixture::new("l001-scope");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u32>.unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n",
    );
    // Same code in a crate outside the panic-free scope is not flagged.
    fx.write(
        "crates/cli/src/lib.rs",
        "pub fn g(x: Option<u32>) -> u32 {\n    x.expect(\"cli may panic\")\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    assert_eq!(
        rules_at(&report, "crates/core/src/lib.rs"),
        vec![("L001", 2)]
    );
    assert!(rules_at(&report, "crates/cli/src/lib.rs").is_empty());
}

#[test]
fn l001_all_banned_macros_fire() {
    let fx = Fixture::new("l001-macros");
    fx.write(
        "crates/storage/src/lib.rs",
        "pub fn f(n: u32) {\n    if n == 1 { panic!(\"a\") }\n    if n == 2 { unreachable!() }\n    if n == 3 { todo!() }\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    assert_eq!(
        rules_at(&report, "crates/storage/src/lib.rs"),
        vec![("L001", 2), ("L001", 3), ("L001", 4)]
    );
}

#[test]
fn suppression_with_reason_silences_and_is_not_reported_unused() {
    let fx = Fixture::new("allow-ok");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    // ctup-lint: allow(L001, construction-time contract)\n    x.unwrap()\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    assert!(report.clean(), "unexpected: {:?}", report.violations);
}

#[test]
fn trailing_suppression_covers_only_its_own_line() {
    let fx = Fixture::new("allow-trailing");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    let a = x.unwrap(); // ctup-lint: allow(L001, measured hot path)\n    a + y.unwrap()\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    // Line 2 is excused; line 3 is not.
    assert_eq!(
        rules_at(&report, "crates/core/src/lib.rs"),
        vec![("L001", 3)]
    );
}

#[test]
fn l000_flags_malformed_and_never_fired_directives() {
    let fx = Fixture::new("l000");
    fx.write(
        "crates/core/src/lib.rs",
        "// ctup-lint: allow(L001)\npub fn a() {}\n\n// ctup-lint: allow(L999, no such rule)\npub fn b() {}\n\n// ctup-lint: allow(L001, nothing here to excuse)\npub fn c() {}\n",
    );
    let report = fx.lint(&base_config(), false);
    let rules = rules_at(&report, "crates/core/src/lib.rs");
    // Missing reason, unknown rule, and a suppression that never fired.
    assert_eq!(rules, vec![("L000", 1), ("L000", 4), ("L000", 7)]);
}

#[test]
fn l002_flags_float_comparisons_but_not_integer_ones() {
    let fx = Fixture::new("l002");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(x: f64, n: u32) -> bool {\n    let a = x == 0.0;\n    let b = x.fract() != 0.0;\n    let c = n == 3;\n    let d = x.is_infinite();\n    a && b && c && d\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    assert_eq!(
        rules_at(&report, "crates/core/src/lib.rs"),
        vec![("L002", 2), ("L002", 3)]
    );
}

#[test]
fn l003_flags_bare_casts_in_scope_only() {
    let fx = Fixture::new("l003");
    fx.write(
        "crates/spatial/src/lib.rs",
        "pub fn f(n: usize, x: u32) -> u64 {\n    let a = n as u64;\n    let b = x as f64;\n    a + b as u64\n}\n",
    );
    // Storage is outside the checked-cast scope.
    fx.write(
        "crates/storage/src/lib.rs",
        "pub fn g(n: usize) -> u64 {\n    n as u64\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    // Line 2 (usize -> u64) and line 4 (f64 -> u64) fire; f64 target does not.
    assert_eq!(
        rules_at(&report, "crates/spatial/src/lib.rs"),
        vec![("L003", 2), ("L003", 4)]
    );
    assert!(rules_at(&report, "crates/storage/src/lib.rs").is_empty());
}

fn metrics_config() -> LintConfig {
    LintConfig {
        metrics: vec![MetricsCoverage {
            struct_file: "crates/core/src/metrics.rs".into(),
            structs: vec!["Metrics".into()],
            report_files: vec!["crates/cli/src/report.rs".into()],
        }],
        fingerprints: None,
    }
}

#[test]
fn l004_flags_collected_but_unreported_fields() {
    let fx = Fixture::new("l004");
    fx.write(
        "crates/core/src/metrics.rs",
        "/// Counters.\npub struct Metrics {\n    /// a.\n    pub updates: u64,\n    /// b.\n    pub cells_accessed: u64,\n}\n",
    );
    fx.write(
        "crates/cli/src/report.rs",
        "pub fn report(m: &Metrics) -> u64 {\n    m.updates\n}\n",
    );
    let report = fx.lint(&metrics_config(), false);
    let violations: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "L004")
        .collect();
    assert_eq!(violations.len(), 1, "{:?}", report.violations);
    assert!(violations[0].message.contains("cells_accessed"));

    // Reporting the field makes the tree clean.
    fx.write(
        "crates/cli/src/report.rs",
        "pub fn report(m: &Metrics) -> u64 {\n    m.updates + m.cells_accessed\n}\n",
    );
    let report = fx.lint(&metrics_config(), false);
    assert!(report.clean(), "{:?}", report.violations);
}

fn fingerprint_config() -> LintConfig {
    LintConfig {
        metrics: Vec::new(),
        fingerprints: Some(FingerprintConfig {
            version_file: "crates/core/src/checkpoint.rs".into(),
            version_const: "FORMAT_VERSION".into(),
            store: "lint/fingerprints.toml".into(),
            tracked: vec![TrackedItem {
                key: "core::checkpoint::Checkpoint".into(),
                file: "crates/core/src/checkpoint.rs".into(),
                item: "Checkpoint".into(),
            }],
        }),
    }
}

fn checkpoint_src(version: u32, extra_field: bool) -> String {
    format!(
        "pub const FORMAT_VERSION: u32 = {version};\n\npub struct Checkpoint {{\n    pub units: Vec<(f64, f64)>,\n{}}}\n",
        if extra_field { "    pub bounds: Vec<i64>,\n" } else { "" }
    )
}

#[test]
fn l005_update_roundtrip_detects_drift_and_accepts_version_bump() {
    let fx = Fixture::new("l005");
    fx.write("crates/core/src/checkpoint.rs", &checkpoint_src(1, false));

    // No store yet: the rule demands --update-fingerprints.
    let report = fx.lint(&fingerprint_config(), false);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].message.contains("store missing"));

    // Recording then re-linting is clean.
    assert!(fx.lint(&fingerprint_config(), true).clean());
    assert!(fx.lint(&fingerprint_config(), false).clean());

    // Changing a serialized struct without a version bump is a violation
    // pointing at the offending file.
    fx.write("crates/core/src/checkpoint.rs", &checkpoint_src(1, true));
    let report = fx.lint(&fingerprint_config(), false);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].file, "crates/core/src/checkpoint.rs");
    assert!(report.violations[0].message.contains("FORMAT_VERSION bump"));

    // Bumping the version alone still requires re-recording...
    fx.write("crates/core/src/checkpoint.rs", &checkpoint_src(2, true));
    let report = fx.lint(&fingerprint_config(), false);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].message.contains("recorded for 1"));

    // ...and bump + re-record is the sanctioned workflow.
    assert!(fx.lint(&fingerprint_config(), true).clean());
    let report = fx.lint(&fingerprint_config(), false);
    assert!(report.clean(), "{:?}", report.violations);
    let store = fs::read_to_string(fx.root.join("lint/fingerprints.toml")).unwrap();
    assert!(store.contains("format_version = 2"), "{store}");
    assert!(store.contains("core::checkpoint::Checkpoint"), "{store}");
}

#[test]
fn json_report_has_the_documented_shape() {
    let fx = Fixture::new("json");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    let json = xtask::json::render(&report);
    assert!(json.starts_with("{\"clean\":false,"));
    assert!(json.contains("\"files_checked\":1"));
    assert!(json.contains("\"rule\":\"L001\""));
    assert!(json.contains("\"file\":\"crates/core/src/lib.rs\""));
    assert!(json.contains("\"line\":2"));
    // The rule registry rides along for consumers.
    for rule in ["L000", "L001", "L002", "L003", "L004", "L005"] {
        assert!(
            json.contains(&format!("\"id\":\"{rule}\"")),
            "{rule} missing"
        );
    }
}

#[test]
fn files_in_test_directories_are_exempt_by_path() {
    let fx = Fixture::new("test-paths");
    fx.write(
        "crates/core/src/tests/helper.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let report = fx.lint(&base_config(), false);
    assert!(report.clean(), "{:?}", report.violations);
}
