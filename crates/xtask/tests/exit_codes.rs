//! The xtask subcommand exit-code contract, exercised end to end on the
//! real binary: `0` clean, `1` findings, `2` usage or I/O error — for
//! every subcommand, so CI can gate on any of them uniformly.

// The run helper is a plain fn, outside the `allow-expect-in-tests` carve-out.
#![allow(clippy::expect_used)]

use std::io::Write;
use std::process::{Command, Stdio};

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

/// Runs the binary with `args`, feeding `stdin`, and returns the exit code.
fn run(args: &[&str], stdin: &str) -> i32 {
    let mut child = xtask()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn xtask");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    child
        .wait()
        .expect("wait for xtask")
        .code()
        .expect("exit code")
}

#[test]
fn unknown_subcommand_is_usage_error() {
    assert_eq!(run(&["frobnicate"], ""), 2);
}

#[test]
fn missing_flag_argument_is_usage_error() {
    assert_eq!(run(&["lint", "--root"], ""), 2);
}

#[test]
fn lint_on_a_dirty_fixture_tree_is_findings() {
    let dir = std::env::temp_dir().join(format!("xtask-exit-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn same(a: f64, b: f64) -> bool { a == b }\n",
    )
    .expect("write fixture");
    let code = run(&["lint", "--root", dir.to_str().expect("utf-8 path")], "");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(code, 1);
}

#[test]
fn promcheck_clean_and_findings() {
    let clean = "# TYPE ctup_up gauge\nctup_up 1\n";
    assert_eq!(run(&["promcheck"], clean), 0);
    assert_eq!(run(&["promcheck"], "ctup_up{oops 1\n"), 1);
}

#[test]
fn healthcheck_clean_and_findings() {
    let clean = "{\"status\":\"ok\",\"degraded\":false,\"queue_depth\":0,\"sessions\":0,\
                 \"engine_restarts\":0,\"failovers\":0,\"degraded_since_ms\":0,\"epoch\":1,\
                 \"build\":\"0.1.0+abcdef0\"}";
    assert_eq!(run(&["healthcheck"], clean), 0);
    assert_eq!(
        run(&["healthcheck"], "{\"status\":\"ok\",\"degraded\":true}"),
        1
    );
}

#[test]
fn spancheck_requires_a_file_and_rejects_garbage() {
    assert_eq!(run(&["spancheck"], ""), 2);
    let path = std::env::temp_dir().join(format!("xtask-span-{}.jsonl", std::process::id()));
    std::fs::write(&path, "not json\n").expect("write fixture");
    let code = run(&["spancheck", path.to_str().expect("utf-8 path")], "");
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 1);
}

#[test]
fn flightcheck_requires_a_file_and_rejects_garbage() {
    assert_eq!(run(&["flightcheck"], ""), 2);
    let path = std::env::temp_dir().join(format!("xtask-flight-{}.jsonl", std::process::id()));
    std::fs::write(&path, "not json\n").expect("write fixture");
    let code = run(&["flightcheck", path.to_str().expect("utf-8 path")], "");
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 1);
}
