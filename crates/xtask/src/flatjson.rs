//! A tiny flat-JSON object walker shared by the observability validators.
//!
//! Both `cargo xtask flightcheck` (JSONL flight-recorder dumps) and
//! `cargo xtask healthcheck` (`/healthz` bodies) consume the same
//! restricted grammar: one brace-delimited object of `"key":value`
//! pairs whose values are strings, numbers, booleans or null — never
//! nested objects or arrays. This module is the single implementation
//! of that walk; the per-artifact semantic checks live in
//! [`crate::obscheck`].
//!
//! Hand-rolled on purpose: the point of the validators is that a
//! consumer with no knowledge of our code could parse the output, so
//! they must not share a serde model (or any code) with the producer.

/// A scalar value in a flat JSON object: a decoded string, or the raw
/// text of a number / boolean / null token (kept raw so callers can
/// re-parse at whatever width they need).
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A decoded JSON string.
    Str(String),
    /// The raw token of a number, `true`, `false` or `null`.
    Raw(String),
}

/// Decodes one JSON string starting at byte `i` (which must be `"`).
/// Returns the decoded text and the index one past the closing quote.
fn parse_string(bytes: &[u8], mut i: usize) -> Result<(String, usize), String> {
    if bytes.get(i) != Some(&b'"') {
        return Err("expected string".into());
    }
    i += 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = *bytes.get(i + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        // \uXXXX — skip the hex digits, keep a placeholder.
                        out.push('\u{FFFD}');
                        i += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
                i += 2;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

/// Walks one flat JSON object into `(key, value)` pairs. This is a
/// structural validator, not a full JSON parser: it checks the brace
/// framing, walks `"key":value` pairs left to right, and understands
/// strings (with escapes), numbers, booleans and null — exactly the
/// grammar the flight recorder and the `/healthz` endpoint emit.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, FlatValue)>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object (missing braces)".to_string())?;
    let bytes = inner.as_bytes();
    let mut i = 0usize;
    let mut pairs = Vec::new();

    while i < bytes.len() {
        let (key, next) = parse_string(bytes, i)?;
        i = next;
        if bytes.get(i) != Some(&b':') {
            return Err(format!("missing `:` after key {key:?}"));
        }
        i += 1;
        let value_start = i;
        let value_end;
        if bytes.get(i) == Some(&b'"') {
            let (text, next) = parse_string(bytes, i)?;
            value_end = next;
            pairs.push((key, FlatValue::Str(text)));
        } else {
            let mut j = i;
            while j < bytes.len() && bytes[j] != b',' {
                j += 1;
            }
            value_end = j;
            let raw = inner[value_start..value_end].trim();
            let is_number = raw.parse::<f64>().is_ok();
            if !is_number && raw != "true" && raw != "false" && raw != "null" {
                return Err(format!("key {key:?} has unparseable value {raw:?}"));
            }
            pairs.push((key, FlatValue::Raw(raw.to_string())));
        }
        i = value_end;
        match bytes.get(i) {
            Some(&b',') => i += 1,
            None => break,
            Some(other) => return Err(format!("expected `,` got `{}`", *other as char)),
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_scalar_values_parse() {
        let pairs =
            parse_flat_object("{\"a\":\"s\",\"b\":3,\"c\":-1.5,\"d\":true,\"e\":null}").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("a".into(), FlatValue::Str("s".into())),
                ("b".into(), FlatValue::Raw("3".into())),
                ("c".into(), FlatValue::Raw("-1.5".into())),
                ("d".into(), FlatValue::Raw("true".into())),
                ("e".into(), FlatValue::Raw("null".into())),
            ]
        );
    }

    #[test]
    fn escapes_decode() {
        let pairs = parse_flat_object("{\"k\":\"a \\\"b\\\"\\n\\t\\\\\"}").unwrap();
        assert_eq!(pairs[0].1, FlatValue::Str("a \"b\"\n\t\\".into()));
    }

    #[test]
    fn surrounding_whitespace_is_tolerated() {
        assert!(parse_flat_object("  {\"a\":1}\n").is_ok());
    }

    #[test]
    fn missing_braces_are_rejected() {
        assert!(parse_flat_object("\"a\":1").unwrap_err().contains("braces"));
    }

    #[test]
    fn missing_colon_is_rejected() {
        assert!(parse_flat_object("{\"a\" 1}").unwrap_err().contains(":"));
    }

    #[test]
    fn garbage_value_is_rejected() {
        let err = parse_flat_object("{\"a\":wat}").unwrap_err();
        assert!(err.contains("unparseable value"), "{err}");
    }

    #[test]
    fn nested_objects_are_rejected() {
        // The grammar is deliberately flat; a nested object reads as an
        // unparseable value token.
        assert!(parse_flat_object("{\"a\":{\"b\":1}}").is_err());
    }

    #[test]
    fn unterminated_string_is_rejected() {
        assert!(parse_flat_object("{\"a\":\"oops}")
            .unwrap_err()
            .contains("unterminated"));
    }

    #[test]
    fn empty_object_is_ok() {
        assert_eq!(parse_flat_object("{}").unwrap(), Vec::new());
    }
}
