//! `cargo xtask` — workspace automation for the CTUP monitor.
//!
//! Subcommands: `lint`, a dependency-free static-analysis pass enforcing
//! the domain invariants generic tooling cannot (see [`rules`] for the
//! registry, DESIGN.md §10 for the rationale); `promcheck` and
//! `flightcheck`, CI validators for the Prometheus exposition and the
//! flight-recorder dump (see [`obscheck`]). The engine is a library so
//! the rules can be exercised against fixture trees in integration tests.

pub mod concurrency;
pub mod fingerprint;
pub mod flatjson;
pub mod json;
pub mod lexer;
pub mod obscheck;
pub mod rules;
pub mod source;
pub mod spancheck;

use fingerprint::FingerprintConfig;
use rules::{MetricsCoverage, RuleSink, Violation};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Everything `run_lint` needs besides the tree itself.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// L004 coverage specs.
    pub metrics: Vec<MetricsCoverage>,
    /// L005 fingerprint spec; `None` disables the rule.
    pub fingerprints: Option<FingerprintConfig>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            metrics: MetricsCoverage::default_config(),
            fingerprints: Some(FingerprintConfig::default_config()),
        }
    }
}

/// Result of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// All violations, sorted by file, line, rule.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Collects the relative paths of every `.rs` file under the workspace
/// source roots: `src/` and `crates/*/src/`. Integration-test, bench and
/// example trees are intentionally not scanned — the rules govern library
/// code, and test files are classified by path anyway.
fn collect_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for e in entries {
            roots.push(e.join("src"));
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, &mut files)?;
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|f| {
            f.strip_prefix(root)
                .ok()
                .map(|p| p.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full rule registry over the workspace at `root`.
///
/// With `update_fingerprints`, L005 re-records `lint/fingerprints.toml`
/// instead of checking it (the other rules still run).
pub fn run_lint(
    root: &Path,
    config: &LintConfig,
    update_fingerprints: bool,
) -> std::io::Result<LintReport> {
    let mut files: BTreeMap<String, Rc<SourceFile>> = BTreeMap::new();
    for rel in collect_sources(root)? {
        let parsed = source::load(root, &rel)?;
        files.insert(rel.clone(), Rc::new(parsed));
    }
    // L004/L005 may reference files outside the scanned roots; load lazily
    // via the same cache semantics (they are all inside the tree in
    // practice, but fixture trees may be sparser).
    let lookup = |rel: &str| -> Option<Rc<SourceFile>> {
        files
            .get(rel)
            .cloned()
            .or_else(|| source::load(root, rel).ok().map(Rc::new))
    };

    let mut sink = RuleSink::default();
    for file in files.values() {
        rules::check_panics(file, &mut sink);
        rules::check_float_eq(file, &mut sink);
        rules::check_casts(file, &mut sink);
    }
    // L006–L010 are whole-program (the lock-order graph spans crates), so
    // they run over the full tree at once rather than per file.
    concurrency::check_all(&files, &mut sink);
    for cfg in &config.metrics {
        rules::check_metrics_coverage(cfg, &lookup, &mut sink);
    }
    if let Some(cfg) = &config.fingerprints {
        fingerprint::check(cfg, root, &lookup, update_fingerprints, &mut sink);
    }

    // L000: malformed directives, plus suppressions that never fired.
    for file in files.values() {
        for bad in &file.bad_directives {
            sink.violations.push(Violation {
                rule: "L000",
                file: file.rel_path.clone(),
                line: bad.line,
                message: bad.message.clone(),
            });
        }
        for sup in &file.suppressions {
            let fired = sink
                .fired
                .iter()
                .any(|f| f.file == file.rel_path && f.line == sup.line);
            if !fired {
                sink.violations.push(Violation {
                    rule: "L000",
                    file: file.rel_path.clone(),
                    line: sup.line,
                    message: format!(
                        "suppression `allow({}, …)` never fired — remove it or move it next \
                         to the code it excuses",
                        sup.rule
                    ),
                });
            }
        }
    }

    let mut violations = sink.violations;
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintReport {
        violations,
        files_checked: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_points_at_real_files() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.metrics.len(), 8);
        // The span-layer health counters are covered twice, like the net
        // counters: unified report renderer and CLI printouts.
        assert_eq!(
            cfg.metrics
                .iter()
                .filter(|m| m.struct_file == "crates/obs/src/span.rs")
                .count(),
            2
        );
        // The net counters are covered twice: the Prometheus renderer and
        // the `ctup serve` shutdown report must each mention every field.
        assert_eq!(
            cfg.metrics
                .iter()
                .filter(|m| m.struct_file == "crates/core/src/net/stats.rs")
                .count(),
            2
        );
        assert!(cfg
            .metrics
            .iter()
            .any(|m| m.struct_file == "crates/storage/src/stats.rs"));
        // The storage snapshot is covered twice: the chaos printout and the
        // unified report renderer must each mention every field.
        assert!(cfg
            .metrics
            .iter()
            .any(|m| m.report_files == vec!["crates/core/src/report.rs".to_string()]));
        assert!(cfg
            .metrics
            .iter()
            .any(|m| m.struct_file == "crates/obs/src/latency.rs"));
        let fp = cfg.fingerprints.unwrap();
        assert_eq!(fp.version_const, "FORMAT_VERSION");
        assert!(fp.tracked.len() >= 10);
    }
}
