//! L006–L010: the concurrency lints.
//!
//! The sharded engine (`core::parallel`), the networked front door
//! (`core::net`), the supervisor and the cell cache (`storage::cache`)
//! share mutable state across threads. These rules encode the project's
//! concurrency discipline statically, on the same hand-rolled lexer as
//! the rest of the linter:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L006 | the global lock-acquisition order is acyclic (no AB/BA deadlock) |
//! | L007 | no blocking call (channel recv/send, I/O, sleep, join) under a live guard |
//! | L008 | `Ordering::Relaxed` only in counters modules, `stats` chains, or justified |
//! | L009 | a file that spawns threads must join them somewhere, or justify detaching |
//! | L010 | channels must be bounded, or carry a capacity rationale |
//!
//! The analysis is intentionally token-level and conservative-but-honest:
//!
//! * **Lock identity** is `Struct::field` for every field whose declared
//!   type mentions `Mutex` / `RwLock`. Locks bound to locals or passed as
//!   parameters are not tracked (the tree keeps its locks in fields).
//! * **Acquisition** is a `.lock()` / `.read()` / `.write()` call whose
//!   receiver ends in a known lock field, or a call to a method whose
//!   signature returns a `MutexGuard`/`RwLock*Guard` (the poison-recovery
//!   helpers); such helpers count as acquiring whatever they lock.
//! * **Guard lifetime** follows the binding form: `let`-bound guards live
//!   to the end of their block (or an explicit `drop(name)`), guards in an
//!   `if`/`while`/`match` scrutinee live to the end of the construct's
//!   first block (matching Rust 2021 temporary-scope rules), and other
//!   temporaries die at the statement's `;`.
//! * **Call summaries** propagate to a fixpoint, so a method that locks
//!   internally creates an acquired-while-held edge at every call site
//!   that already holds a guard, one level or many levels deep.
//! * `Condvar::wait` / `wait_timeout` are exempt from L007 by design:
//!   they atomically release the guard they are handed.

use crate::lexer::TokenKind;
use crate::rules::{RuleSink, Violation};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Crates whose library code the concurrency rules govern: everything
/// that actually spawns threads or shares state across them.
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/storage/src/",
    "crates/obs/src/",
    "crates/sched/src/",
];

/// Modules allowed to use `Ordering::Relaxed` freely (L008): monotone
/// counters and snapshot gauges whose only consumers are advisory
/// (metrics exposition, shutdown reports). Each module documents why
/// Relaxed is safe for its fields.
const COUNTER_MODULES: &[&str] = &[
    "crates/obs/src/hist.rs",
    "crates/storage/src/stats.rs",
    "crates/core/src/net/stats.rs",
];

/// Method names that block the calling thread (L007). `wait` and
/// `wait_timeout` are deliberately absent: a condvar wait releases the
/// guard it consumes, which is the sanctioned way to sleep on state.
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "send",
    "join",
    "sleep",
    "park",
    "park_timeout",
    "accept",
    "connect",
    "connect_timeout",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
];

fn in_scope(file: &SourceFile) -> bool {
    SCOPE.iter().any(|p| file.rel_path.starts_with(p))
}

/// A lock field discovered in a struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LockField {
    owner: String,
    field: String,
    /// `true` for `RwLock`, `false` for `Mutex`.
    rw: bool,
}

/// Scans `file` for struct definitions whose fields mention `Mutex` or
/// `RwLock` anywhere in their type (so `Arc<Mutex<T>>` counts).
fn collect_lock_fields(file: &SourceFile, out: &mut Vec<LockField>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].kind != TokenKind::Ident || toks[i].text != "struct" {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body `{`; `;` or `(` means unit/tuple struct.
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    body = Some(j);
                    break;
                }
                ";" | "(" => break,
                _ => j += 1,
            }
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        let mut depth = 0isize;
        let mut k = open;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if depth == 1
                        && toks[k].kind == TokenKind::Ident
                        && toks.get(k + 1).map(|n| n.text.as_str()) == Some(":")
                    {
                        // Field `name : type …` — scan the type until the
                        // `,` (or closing `}`) at field depth.
                        let field = toks[k].text.clone();
                        let mut t = k + 2;
                        let mut tdepth = 0isize;
                        let mut kind = None;
                        while t < toks.len() {
                            match toks[t].text.as_str() {
                                "(" | "[" | "{" => tdepth += 1,
                                ")" | "]" => tdepth -= 1,
                                "}" if tdepth == 0 => break,
                                "}" => tdepth -= 1,
                                "," if tdepth == 0 => break,
                                "Mutex" => kind = kind.or(Some(false)),
                                "RwLock" => kind = kind.or(Some(true)),
                                _ => {}
                            }
                            t += 1;
                        }
                        if let Some(rw) = kind {
                            out.push(LockField {
                                owner: name.text.clone(),
                                field,
                                rw,
                            });
                        }
                        k = t.saturating_sub(1);
                    }
                }
            }
            k += 1;
        }
        i = k + 1;
    }
}

/// One `impl` block: the self type and its token span.
#[derive(Debug)]
struct ImplBlock {
    owner: String,
    span: (usize, usize),
}

fn collect_impl_blocks(file: &SourceFile) -> Vec<ImplBlock> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokenKind::Ident || toks[i].text != "impl" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut angle = 0isize;
        let mut owner: Option<String> = None;
        let mut saw_for = false;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "for" if angle == 0 => {
                    saw_for = true;
                    owner = None;
                }
                "where" if angle == 0 => break,
                _ => {
                    if angle == 0 && toks[j].kind == TokenKind::Ident && owner.is_none() {
                        owner = Some(toks[j].text.clone());
                    }
                }
            }
            j += 1;
        }
        let _ = saw_for;
        while j < toks.len() && toks[j].text != "{" {
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let close = match_brace(file, j);
        if let Some(owner) = owner {
            out.push(ImplBlock {
                owner,
                span: (j, close),
            });
        }
        i = j + 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(file: &SourceFile, open: usize) -> usize {
    let toks = &file.tokens;
    let mut depth = 0isize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// One function body in one file.
#[derive(Debug)]
struct Func {
    file: usize,
    owner: Option<String>,
    name: String,
    /// Token indexes of the body's `{` and `}`.
    body: (usize, usize),
    /// The signature's return type mentions a guard type, so calling this
    /// function counts as acquiring whatever it locks.
    returns_guard: bool,
}

fn collect_funcs(file_idx: usize, file: &SourceFile, impls: &[ImplBlock], out: &mut Vec<Func>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].kind != TokenKind::Ident || toks[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body `{` at zero paren/bracket depth; `;` means a
        // trait-method declaration with no body.
        let mut j = i + 2;
        let mut depth = 0isize;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let close = match_brace(file, open);
        let returns_guard = toks[i + 2..open].iter().any(|t| {
            t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"
                )
        });
        let owner = impls
            .iter()
            .filter(|b| b.span.0 < i && i < b.span.1)
            .map(|b| b.owner.clone())
            .next_back();
        out.push(Func {
            file: file_idx,
            owner,
            name: name.text.clone(),
            body: (open, close),
            returns_guard,
        });
        i = open + 1;
    }
}

/// What calling a function does, propagated to a fixpoint over the call
/// graph: the set of locks it (transitively) acquires, and whether it can
/// block the calling thread.
#[derive(Debug, Default, Clone, PartialEq)]
struct Summary {
    acquires: BTreeSet<String>,
    blocks: bool,
}

/// Resolves the lock id of `field`: `Owner::field` when exactly one
/// struct declares it, the bare field name when ambiguous.
fn lock_id(field: &str, fields: &[LockField]) -> Option<String> {
    let owners: Vec<&LockField> = fields.iter().filter(|f| f.field == field).collect();
    match owners.len() {
        0 => None,
        1 => Some(format!("{}::{}", owners[0].owner, owners[0].field)),
        _ => Some(field.to_string()),
    }
}

/// Whether the ident at `idx` is a direct lock acquisition
/// (`receiver.lock()`, `rw.read()`, `rw.write()`), returning the lock id.
fn direct_acquisition(file: &SourceFile, idx: usize, fields: &[LockField]) -> Option<String> {
    let toks = &file.tokens;
    let t = &toks[idx];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let is_lock = t.text == "lock";
    let is_rw = t.text == "read" || t.text == "write";
    if !is_lock && !is_rw {
        return None;
    }
    if toks.get(idx + 1).map(|n| n.text.as_str()) != Some("(") {
        return None;
    }
    if idx < 2 || toks[idx - 1].text != "." {
        return None;
    }
    let recv = &toks[idx - 2];
    if recv.kind != TokenKind::Ident {
        return None;
    }
    let field = fields.iter().find(|f| f.field == recv.text)?;
    // `.lock()` only acquires a Mutex field; `.read()`/`.write()` only an
    // RwLock field (so `file.read()` on an ordinary field is not a lock).
    if (is_lock && !field.rw) || (is_rw && field.rw) {
        lock_id(&recv.text, fields)
    } else {
        None
    }
}

/// Resolves a call at ident `idx` (`recv.name(…)` or `Type::name(…)`) to
/// a function summary key, preferring the enclosing impl's own methods
/// for `self` receivers, then a unique global name.
fn resolve_call(
    file: &SourceFile,
    idx: usize,
    caller_owner: Option<&str>,
    funcs: &[Func],
) -> Option<usize> {
    let toks = &file.tokens;
    let t = &toks[idx];
    if t.kind != TokenKind::Ident || toks.get(idx + 1).map(|n| n.text.as_str()) != Some("(") {
        return None;
    }
    let prev = idx.checked_sub(1).map(|p| toks[p].text.as_str());
    let prev2 = idx.checked_sub(2).map(|p| &toks[p]);
    match prev {
        Some(".") => {
            if let (Some(r), Some(owner)) = (prev2, caller_owner) {
                if r.text == "self" {
                    if let Some(f) = funcs
                        .iter()
                        .position(|f| f.owner.as_deref() == Some(owner) && f.name == t.text)
                    {
                        return Some(f);
                    }
                }
            }
            unique_by_name(&t.text, funcs)
        }
        Some("::") => {
            if let Some(ty) = prev2.filter(|r| r.kind == TokenKind::Ident) {
                if let Some(f) = funcs
                    .iter()
                    .position(|f| f.owner.as_deref() == Some(ty.text.as_str()) && f.name == t.text)
                {
                    return Some(f);
                }
            }
            unique_by_name(&t.text, funcs)
        }
        _ => None,
    }
}

/// Method names too common to resolve by name alone: they collide with
/// std inherent methods (`AtomicBool::load`, `Vec::push`, …), so an
/// untyped `recv.name(…)` call must not be attributed to an unrelated
/// workspace function that happens to share the name. Typed paths
/// (`self.name()` in the owner's impl, `Type::name(…)`) still resolve.
const AMBIENT_METHOD_NAMES: &[&str] = &[
    "load", "store", "swap", "new", "clone", "len", "is_empty", "push", "pop", "get", "insert",
    "remove", "clear", "iter", "next", "drop", "take", "send", "recv", "write", "read", "lock",
    "flush", "join", "spawn", "wait", "unwrap", "expect", "default", "fmt", "from", "into",
];

fn unique_by_name(name: &str, funcs: &[Func]) -> Option<usize> {
    if AMBIENT_METHOD_NAMES.contains(&name) {
        return None;
    }
    let mut found = None;
    for (i, f) in funcs.iter().enumerate() {
        if f.name == name {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(i);
        }
    }
    found
}

/// A live guard during the body walk.
#[derive(Debug)]
struct Live {
    lock: String,
    binder: Option<String>,
    die: Die,
}

#[derive(Debug)]
enum Die {
    /// `let`-bound: dies when its block closes (depth drops below).
    Block(usize),
    /// Plain temporary: dies at the next `;` at its depth.
    Stmt(usize),
    /// `if let` / `while let` / `match` scrutinee temporary: dies when
    /// the construct's first block closes. Armed once the block opens.
    Construct { depth: usize, armed: bool },
}

#[derive(Debug, Default, Clone)]
struct StmtState {
    kind: Option<StmtKind>,
    binder: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum StmtKind {
    Let,
    Construct,
    Expr,
}

/// An acquired-while-held edge with its witness location.
#[derive(Debug, Clone)]
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: usize,
}

/// Walks one function body, producing lock-order edges and L007
/// violations. `summaries` must already be at fixpoint.
#[allow(clippy::too_many_arguments)]
fn walk_function(
    file: &SourceFile,
    func: &Func,
    funcs: &[Func],
    summaries: &[Summary],
    fields: &[LockField],
    edges: &mut Vec<Edge>,
    sink: &mut RuleSink,
) {
    let toks = &file.tokens;
    let (open, close) = func.body;
    let mut depth = 1usize;
    let mut live: Vec<Live> = Vec::new();
    let mut stmt: Vec<StmtState> = vec![StmtState::default(); 2];
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        let text = t.text.as_str();
        match text {
            "{" => {
                depth += 1;
                for l in &mut live {
                    if let Die::Construct { depth: d, armed } = &mut l.die {
                        if *d == depth - 1 {
                            *armed = true;
                        }
                    }
                }
                stmt.resize(depth + 1, StmtState::default());
                stmt[depth] = StmtState::default();
            }
            "}" => {
                depth = depth.saturating_sub(1);
                live.retain(|l| match l.die {
                    Die::Block(d) => d <= depth,
                    Die::Construct { depth: d, armed } => !(armed && d >= depth),
                    Die::Stmt(d) => d <= depth,
                });
                stmt.truncate(depth + 1);
                if stmt.len() <= depth {
                    stmt.resize(depth + 1, StmtState::default());
                }
                stmt[depth] = StmtState::default();
            }
            ";" => {
                live.retain(|l| match l.die {
                    Die::Stmt(d) => d != depth,
                    Die::Construct { depth: d, armed } => armed || d != depth,
                    _ => true,
                });
                stmt[depth] = StmtState::default();
            }
            _ => {
                if t.kind == TokenKind::Ident && stmt[depth].kind.is_none() {
                    stmt[depth].kind = Some(match text {
                        "let" => StmtKind::Let,
                        "if" | "while" | "match" => StmtKind::Construct,
                        _ => StmtKind::Expr,
                    });
                } else if t.kind == TokenKind::Ident
                    && stmt[depth].kind == Some(StmtKind::Let)
                    && stmt[depth].binder.is_none()
                    && text != "mut"
                {
                    stmt[depth].binder = Some(t.text.clone());
                }

                if file.in_test(i) {
                    i += 1;
                    continue;
                }

                // `drop(name)` releases a named guard early.
                if text == "drop"
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                    && toks.get(i + 2).map(|n| n.kind) == Some(TokenKind::Ident)
                {
                    let name = toks[i + 2].text.as_str();
                    live.retain(|l| l.binder.as_deref() != Some(name));
                }

                // Direct acquisition or a guard-returning helper call.
                let mut acquired: Option<String> = None;
                let mut transitive: Option<&Summary> = None;
                let mut callee_name = "";
                if let Some(lock) = direct_acquisition(file, i, fields) {
                    acquired = Some(lock);
                } else if let Some(f) = resolve_call(file, i, func.owner.as_deref(), funcs) {
                    // Don't recurse into ourselves.
                    if !std::ptr::eq(&funcs[f], func) {
                        let s = &summaries[f];
                        callee_name = &funcs[f].name;
                        if funcs[f].returns_guard {
                            acquired = s.acquires.iter().next().cloned();
                        } else if !s.acquires.is_empty() || s.blocks {
                            transitive = Some(s);
                        }
                    }
                }

                if let Some(lock) = acquired {
                    for l in &live {
                        if l.lock != lock {
                            edges.push(Edge {
                                held: l.lock.clone(),
                                acquired: lock.clone(),
                                file: file.rel_path.clone(),
                                line: t.line,
                            });
                        }
                    }
                    let die = match stmt[depth].kind {
                        Some(StmtKind::Let) => Die::Block(depth),
                        Some(StmtKind::Construct) => Die::Construct {
                            depth,
                            armed: false,
                        },
                        _ => Die::Stmt(depth),
                    };
                    live.push(Live {
                        lock,
                        binder: if stmt[depth].kind == Some(StmtKind::Let) {
                            stmt[depth].binder.clone()
                        } else {
                            None
                        },
                        die,
                    });
                } else if let Some(s) = transitive {
                    if !live.is_empty() {
                        for l in &live {
                            for a in &s.acquires {
                                if &l.lock != a {
                                    edges.push(Edge {
                                        held: l.lock.clone(),
                                        acquired: a.clone(),
                                        file: file.rel_path.clone(),
                                        line: t.line,
                                    });
                                }
                            }
                        }
                        if s.blocks {
                            let held = held_list(&live);
                            sink.push(
                                file,
                                Violation {
                                    rule: "L007",
                                    file: file.rel_path.clone(),
                                    line: t.line,
                                    message: format!(
                                        "`{callee_name}()` can block while lock {held} is held: \
                                         release the guard first, or justify with \
                                         `// ctup-lint: allow(L007, why)`"
                                    ),
                                },
                            );
                        }
                    }
                } else if !live.is_empty()
                    && t.kind == TokenKind::Ident
                    && BLOCKING_CALLS.contains(&text)
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                    && i > 0
                    && matches!(toks[i - 1].text.as_str(), "." | "::")
                {
                    // `.write()` on an RwLock field was already handled as
                    // an acquisition above; reaching here it is I/O.
                    let held = held_list(&live);
                    sink.push(
                        file,
                        Violation {
                            rule: "L007",
                            file: file.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "blocking call `.{text}()` while lock {held} is held: \
                                 release the guard first, or justify with \
                                 `// ctup-lint: allow(L007, why)`"
                            ),
                        },
                    );
                }
            }
        }
        i += 1;
    }
}

fn held_list(live: &[Live]) -> String {
    let names: BTreeSet<&str> = live.iter().map(|l| l.lock.as_str()).collect();
    names.into_iter().collect::<Vec<_>>().join(", ")
}

/// Computes per-function summaries (direct pass + call-graph fixpoint).
fn compute_summaries(
    files: &[Rc<SourceFile>],
    funcs: &[Func],
    fields: &[LockField],
) -> Vec<Summary> {
    let mut summaries: Vec<Summary> = vec![Summary::default(); funcs.len()];
    // Direct pass.
    for (fi, func) in funcs.iter().enumerate() {
        let file = &files[func.file];
        let toks = &file.tokens;
        for i in func.body.0 + 1..func.body.1 {
            if file.in_test(i) {
                continue;
            }
            if let Some(lock) = direct_acquisition(file, i, fields) {
                summaries[fi].acquires.insert(lock);
            }
            let t = &toks[i];
            if t.kind == TokenKind::Ident
                && BLOCKING_CALLS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                && i > 0
                && matches!(toks[i - 1].text.as_str(), "." | "::")
            {
                summaries[fi].blocks = true;
            }
        }
    }
    // Fixpoint over calls.
    loop {
        let mut changed = false;
        for (fi, func) in funcs.iter().enumerate() {
            let file = &files[func.file];
            for i in func.body.0 + 1..func.body.1 {
                if file.in_test(i) {
                    continue;
                }
                if let Some(cf) = resolve_call(file, i, func.owner.as_deref(), funcs) {
                    if cf == fi {
                        continue;
                    }
                    let (acq, blocks) = {
                        let s = &summaries[cf];
                        (s.acquires.clone(), s.blocks)
                    };
                    let me = &mut summaries[fi];
                    let before = me.acquires.len();
                    me.acquires.extend(acq);
                    if me.acquires.len() != before || (blocks && !me.blocks) {
                        changed = true;
                    }
                    me.blocks |= blocks;
                }
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// L006: builds the global acquired-while-held graph and reports every
/// cycle with a witness path.
fn check_lock_order(
    files: &[Rc<SourceFile>],
    by_path: &BTreeMap<&str, &SourceFile>,
    sink: &mut RuleSink,
) {
    let mut fields = Vec::new();
    for f in files {
        collect_lock_fields(f, &mut fields);
    }
    let mut funcs = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let impls = collect_impl_blocks(f);
        collect_funcs(i, f, &impls, &mut funcs);
    }
    let summaries = compute_summaries(files, &funcs, &fields);

    let mut edges: Vec<Edge> = Vec::new();
    for func in &funcs {
        walk_function(
            &files[func.file],
            func,
            &funcs,
            &summaries,
            &fields,
            &mut edges,
            sink,
        );
    }

    // First witness per (held, acquired) pair.
    let mut graph: BTreeMap<String, BTreeMap<String, (String, usize)>> = BTreeMap::new();
    for e in &edges {
        graph
            .entry(e.held.clone())
            .or_default()
            .entry(e.acquired.clone())
            .or_insert((e.file.clone(), e.line));
    }

    // DFS cycle detection with path reconstruction; each cycle is
    // reported once, keyed by its sorted node set.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<String> = graph.keys().cloned().collect();
    for start in &nodes {
        let mut stack: Vec<String> = vec![start.clone()];
        let mut on_path: BTreeSet<String> = stack.iter().cloned().collect();
        dfs_cycles(
            start,
            &graph,
            &mut stack,
            &mut on_path,
            &mut reported,
            by_path,
            sink,
        );
    }
}

fn dfs_cycles(
    node: &str,
    graph: &BTreeMap<String, BTreeMap<String, (String, usize)>>,
    stack: &mut Vec<String>,
    on_path: &mut BTreeSet<String>,
    reported: &mut BTreeSet<Vec<String>>,
    by_path: &BTreeMap<&str, &SourceFile>,
    sink: &mut RuleSink,
) {
    let Some(next) = graph.get(node) else {
        return;
    };
    for (succ, witness) in next {
        if let Some(pos) = stack.iter().position(|n| n == succ) {
            // Found a cycle: stack[pos..] + succ.
            let cycle: Vec<String> = stack[pos..].to_vec();
            let mut key = cycle.clone();
            key.sort();
            if !reported.insert(key) {
                continue;
            }
            let mut path = String::new();
            for win in cycle.windows(2) {
                if let Some((f, l)) = graph.get(&win[0]).and_then(|m| m.get(&win[1])) {
                    path.push_str(&format!("{} -> {} ({f}:{l}); ", win[0], win[1]));
                }
            }
            path.push_str(&format!(
                "{} -> {} ({}:{})",
                cycle.last().map(String::as_str).unwrap_or(""),
                succ,
                witness.0,
                witness.1
            ));
            let v = Violation {
                rule: "L006",
                file: witness.0.clone(),
                line: witness.1,
                message: format!(
                    "lock-acquisition-order cycle: {path} — impose one global order \
                     (see DESIGN.md §15) or break the nesting"
                ),
            };
            match by_path.get(witness.0.as_str()) {
                Some(file) => sink.push(file, v),
                None => sink.violations.push(v),
            }
        } else if !on_path.contains(succ) {
            stack.push(succ.clone());
            on_path.insert(succ.clone());
            dfs_cycles(succ, graph, stack, on_path, reported, by_path, sink);
            stack.pop();
            on_path.remove(succ);
        }
    }
}

/// After `ident`, skips an optional turbofish (`::<…>`) and reports
/// whether the next token is `(` — i.e. this ident is called.
fn called_with_optional_turbofish(file: &SourceFile, idx: usize) -> bool {
    let toks = &file.tokens;
    let mut j = idx + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("::")
        && toks.get(j + 1).map(|t| t.text.as_str()) == Some("<")
    {
        let mut angle = 0isize;
        j += 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                ">>" => {
                    angle -= 2;
                    if angle <= 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    toks.get(j).map(|t| t.text.as_str()) == Some("(")
}

/// Back-scan from `idx` to the statement boundary, looking for `what`.
fn statement_mentions(file: &SourceFile, idx: usize, what: &[&str]) -> bool {
    let toks = &file.tokens;
    let mut i = idx;
    let mut seen = 0;
    while i > 0 && seen < 96 {
        i -= 1;
        seen += 1;
        let t = &toks[i];
        if matches!(t.text.as_str(), ";" | "{" | "}") {
            return false;
        }
        if t.kind == TokenKind::Ident && what.contains(&t.text.as_str()) {
            return true;
        }
    }
    false
}

/// L008: `Ordering::Relaxed` needs to be in a counters module, behind a
/// `stats` handle, or justified.
fn check_relaxed(file: &SourceFile, sink: &mut RuleSink) {
    if COUNTER_MODULES.contains(&file.rel_path.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "Relaxed" || file.in_test(i) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let prev2 = i.checked_sub(2).map(|p| toks[p].text.as_str());
        if prev != Some("::") || prev2 != Some("Ordering") {
            continue;
        }
        // Counter bumps routed through a stats handle (`self.stats.x`,
        // `shared.stats.x`) are monotone by convention; the designated
        // counters modules document why Relaxed is sufficient for them.
        if statement_mentions(file, i, &["stats"]) {
            continue;
        }
        sink.push(
            file,
            Violation {
                rule: "L008",
                file: file.rel_path.clone(),
                line: t.line,
                message: "`Ordering::Relaxed` outside a counters module: use a stronger \
                          ordering, move the counter behind a stats handle, or justify with \
                          `// ctup-lint: allow(L008, why Relaxed is safe here)`"
                    .into(),
            },
        );
    }
}

/// L009: a file that spawns OS threads must also join them in non-test
/// code, or each spawn must carry a detach rationale.
fn check_spawn_join(file: &SourceFile, sink: &mut RuleSink) {
    let toks = &file.tokens;
    let mut spawns: Vec<usize> = Vec::new();
    let mut has_join = false;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        match t.text.as_str() {
            "spawn" if called_with_optional_turbofish(file, i) => {
                let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
                let prev2 = i.checked_sub(2).map(|p| toks[p].text.as_str());
                // Only OS-thread spawns: `thread::spawn`, or a `.spawn(…)`
                // on a `thread::Builder` chain. Methods that happen to be
                // called `spawn` (IngestServer::spawn, …) are not threads.
                let os_thread = (prev == Some("::") && prev2 == Some("thread"))
                    || (prev == Some(".") && statement_mentions(file, i, &["Builder", "thread"]));
                if os_thread {
                    spawns.push(i);
                }
            }
            "join"
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                    && i > 0
                    && matches!(toks[i - 1].text.as_str(), "." | "::") =>
            {
                has_join = true;
            }
            _ => {}
        }
    }
    if has_join {
        return;
    }
    for i in spawns {
        sink.push(
            file,
            Violation {
                rule: "L009",
                file: file.rel_path.clone(),
                line: toks[i].line,
                message: "thread spawned but this file never joins a handle: join it on \
                          shutdown, or justify detaching with \
                          `// ctup-lint: allow(L009, why detaching is safe)`"
                    .into(),
            },
        );
    }
}

/// L010: unbounded channels (`mpsc::channel`, crossbeam `unbounded`)
/// need a capacity rationale; `sync_channel`/`bounded` are fine.
fn check_bounded_channels(file: &SourceFile, sink: &mut RuleSink) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        let unbounded = match t.text.as_str() {
            "channel" => {
                // `mpsc::channel()` / `channel::<T>()`; `channel::bounded`
                // and friends have a path segment, not a call, after them.
                i > 0
                    && matches!(toks[i - 1].text.as_str(), "::" | ".")
                    && called_with_optional_turbofish(file, i)
            }
            "unbounded" => called_with_optional_turbofish(file, i),
            _ => false,
        };
        if unbounded {
            sink.push(
                file,
                Violation {
                    rule: "L010",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: "unbounded channel: use a bounded channel (backpressure is \
                              policy, not an accident), or justify the capacity with \
                              `// ctup-lint: allow(L010, why depth is bounded by protocol)`"
                        .into(),
                },
            );
        }
    }
}

/// Entry point: runs L006–L010 over every in-scope file.
pub fn check_all(files: &BTreeMap<String, Rc<SourceFile>>, sink: &mut RuleSink) {
    let scoped: Vec<Rc<SourceFile>> = files
        .values()
        .filter(|f| in_scope(f) && !f.all_test)
        .cloned()
        .collect();
    let by_path: BTreeMap<&str, &SourceFile> = scoped
        .iter()
        .map(|f| (f.rel_path.as_str(), f.as_ref()))
        .collect();
    check_lock_order(&scoped, &by_path, sink);
    for f in &scoped {
        check_relaxed(f, sink);
        check_spawn_join(f, sink);
        check_bounded_channels(f, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src_files: &[(&str, &str)]) -> RuleSink {
        let mut files = BTreeMap::new();
        for (path, src) in src_files {
            files.insert(path.to_string(), Rc::new(SourceFile::parse(path, src)));
        }
        let mut sink = RuleSink::default();
        check_all(&files, &mut sink);
        sink
    }

    fn rules(sink: &RuleSink) -> Vec<(&str, usize)> {
        sink.violations.iter().map(|v| (v.rule, v.line)).collect()
    }

    #[test]
    fn lock_fields_and_impl_owners_are_discovered() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "pub struct A { items: Mutex<Vec<u32>>, r: RwLock<u8>, n: u32 }\n\
             impl A { fn f(&self) {} }\n",
        );
        let mut fields = Vec::new();
        collect_lock_fields(&f, &mut fields);
        assert_eq!(
            fields,
            vec![
                LockField {
                    owner: "A".into(),
                    field: "items".into(),
                    rw: false
                },
                LockField {
                    owner: "A".into(),
                    field: "r".into(),
                    rw: true
                },
            ]
        );
        let impls = collect_impl_blocks(&f);
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].owner, "A");
    }

    #[test]
    fn l006_flags_an_ab_ba_cycle_with_witness() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }\n",
        )]);
        let l006: Vec<_> = sink
            .violations
            .iter()
            .filter(|v| v.rule == "L006")
            .collect();
        assert_eq!(l006.len(), 1, "{:?}", sink.violations);
        assert!(l006[0].message.contains("S::a"), "{}", l006[0].message);
        assert!(l006[0].message.contains("S::b"));
        assert!(l006[0].message.contains("crates/core/src/x.rs:"));
    }

    #[test]
    fn l006_consistent_order_is_clean() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 fn ab2(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
    }

    #[test]
    fn l006_sees_through_guard_returning_helpers() {
        // `lock()` helpers (poison recovery) acquire their mutex at the
        // caller; helper-vs-direct in opposite orders is still a cycle.
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn lock_a(&self) -> MutexGuard<'_, u32> { self.a.lock().unwrap() }\n\
                 fn ab(&self) { let g = self.lock_a(); let h = self.b.lock(); }\n\
                 fn ba(&self) { let g = self.b.lock(); let h = self.lock_a(); }\n\
             }\n",
        )]);
        assert_eq!(
            sink.violations.iter().filter(|v| v.rule == "L006").count(),
            1,
            "{:?}",
            sink.violations
        );
    }

    #[test]
    fn l006_sees_transitive_acquisition_through_methods() {
        // hold a, call a method that locks b internally; and vice versa.
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn touch_b(&self) { let g = self.b.lock(); }\n\
                 fn touch_a(&self) { let g = self.a.lock(); }\n\
                 fn one(&self) { let g = self.a.lock(); self.touch_b(); }\n\
                 fn two(&self) { let g = self.b.lock(); self.touch_a(); }\n\
             }\n",
        )]);
        assert_eq!(
            sink.violations.iter().filter(|v| v.rule == "L006").count(),
            1,
            "{:?}",
            sink.violations
        );
    }

    #[test]
    fn l006_scoped_block_releases_before_next_acquisition() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn one(&self) { { let g = self.a.lock(); } let h = self.b.lock(); }\n\
                 fn two(&self) { { let g = self.b.lock(); } let h = self.a.lock(); }\n\
             }\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
    }

    #[test]
    fn l006_drop_releases_early() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn one(&self) { let g = self.a.lock(); drop(g); let h = self.b.lock(); }\n\
                 fn two(&self) { let g = self.b.lock(); drop(g); let h = self.a.lock(); }\n\
             }\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
    }

    #[test]
    fn l007_flags_blocking_recv_under_guard() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn f(&self, rx: &Receiver<u32>) { let g = self.a.lock(); let v = rx.recv(); }\n\
             }\n",
        )]);
        assert_eq!(rules(&sink), vec![("L007", 3)], "{:?}", sink.violations);
    }

    #[test]
    fn l007_condvar_wait_is_exempt_and_recv_after_scope_is_clean() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn f(&self, cv: &Condvar) { let g = self.a.lock(); let p = cv.wait_timeout(g, t); }\n\
                 fn g(&self, rx: &Receiver<u32>) { { let g = self.a.lock(); } let v = rx.recv(); }\n\
             }\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
    }

    #[test]
    fn l007_match_scrutinee_guard_lives_through_the_arms() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "pub struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn f(&self, rx: &Receiver<u32>) {\n\
                     match self.a.lock() {\n\
                         Ok(g) => { let v = rx.recv(); }\n\
                         Err(_) => {}\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(rules(&sink), vec![("L007", 5)], "{:?}", sink.violations);
    }

    #[test]
    fn l008_flags_relaxed_outside_counters_and_stats_chains() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "fn f(a: &AtomicBool, stats: &S) {\n\
                 a.store(true, Ordering::Relaxed);\n\
                 stats.hits.fetch_add(1, Ordering::Relaxed);\n\
                 a.store(true, Ordering::SeqCst);\n\
             }\n",
        )]);
        assert_eq!(rules(&sink), vec![("L008", 2)], "{:?}", sink.violations);
    }

    #[test]
    fn l008_counters_module_is_allowlisted() {
        let sink = run(&[(
            "crates/core/src/net/stats.rs",
            "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
    }

    #[test]
    fn l009_spawn_without_join_fires_and_join_or_allow_silences() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        )]);
        assert_eq!(rules(&sink), vec![("L009", 1)], "{:?}", sink.violations);

        let sink = run(&[(
            "crates/core/src/x.rs",
            "fn f() { let h = std::thread::spawn(|| {}); let _ = h.join(); }\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);

        let sink = run(&[(
            "crates/core/src/x.rs",
            "fn f() {\n    // ctup-lint: allow(L009, fire-and-forget probe, exits with process)\n    std::thread::spawn(|| {});\n}\n",
        )]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
        assert_eq!(sink.fired.len(), 1);
    }

    #[test]
    fn l009_builder_chain_counts_and_non_thread_spawn_methods_do_not() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "fn f() { let h = std::thread::Builder::new().name(n).spawn(w); }\n\
             fn g() { let s = IngestServer::spawn(addr, cfg, sink); }\n",
        )]);
        assert_eq!(rules(&sink), vec![("L009", 1)], "{:?}", sink.violations);
    }

    #[test]
    fn l010_unbounded_channels_fire_bounded_do_not() {
        let sink = run(&[(
            "crates/core/src/x.rs",
            "fn f() {\n\
                 let (a, b) = std::sync::mpsc::channel::<u32>();\n\
                 let (c, d) = crossbeam::channel::unbounded::<u32>();\n\
                 let (e, g) = crossbeam::channel::bounded::<u32>(64);\n\
                 let (h, i) = std::sync::mpsc::sync_channel::<u32>(8);\n\
             }\n",
        )]);
        assert_eq!(
            rules(&sink),
            vec![("L010", 2), ("L010", 3)],
            "{:?}",
            sink.violations
        );
    }

    #[test]
    fn out_of_scope_files_and_tests_are_exempt() {
        let sink = run(&[
            (
                "crates/cli/src/x.rs",
                "fn f() { let (a, b) = std::sync::mpsc::channel::<u32>(); }\n",
            ),
            (
                "crates/core/src/y.rs",
                "#[cfg(test)]\nmod tests {\n    fn f() { let (a, b) = std::sync::mpsc::channel::<u32>(); std::thread::spawn(|| {}); }\n}\n",
            ),
        ]);
        assert!(rules(&sink).is_empty(), "{:?}", sink.violations);
    }
}
