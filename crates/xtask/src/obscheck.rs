//! CI validators for the observability artifacts.
//!
//! `promcheck` validates a Prometheus text exposition (what
//! `ctup report --format prom` and `ctup serve-metrics` emit):
//! every sample line parses, every series has a `# TYPE` declaration,
//! histogram buckets are cumulative and end in `+Inf` with a matching
//! `_count`. `flightcheck` validates a flight-recorder JSONL dump:
//! every line is a flat JSON object carrying `seq` and `outcome`, and
//! sequence numbers are strictly increasing. `healthcheck` validates a
//! `/healthz` body from `ctup serve`: a flat JSON object whose `status`
//! string and `degraded` boolean agree, with numeric load gauges.
//!
//! Both are hand-rolled on purpose: the point of the check is that a
//! scraper with no knowledge of our code could consume the output, so
//! the validator must not share code with the producer. The flat-JSON
//! walk both flightcheck and healthcheck rely on lives once, in
//! [`crate::flatjson`].

use crate::flatjson::{parse_flat_object, FlatValue};
use std::collections::{BTreeMap, HashMap};

/// One problem found in an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// 1-based line in the artifact.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line into `(name, labels, value)`. Labels keep their
/// braces stripped; `None` labels means no label set.
fn split_sample(line: &str) -> Option<(&str, Option<&str>, &str)> {
    if let Some(open) = line.find('{') {
        let close = line.rfind('}')?;
        if close < open {
            return None;
        }
        let name = &line[..open];
        let labels = &line[open + 1..close];
        let value = line[close + 1..].trim();
        Some((name, Some(labels), value))
    } else {
        let mut parts = line.splitn(2, ' ');
        let name = parts.next()?;
        let value = parts.next()?.trim();
        Some((name, None, value))
    }
}

fn valid_value(value: &str) -> bool {
    matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok()
}

/// Extracts the `le` label of a `_bucket` series, if present.
fn le_of(labels: &str) -> Option<String> {
    for part in labels.split(',') {
        if let Some(rest) = part.trim().strip_prefix("le=") {
            return Some(rest.trim_matches('"').to_string());
        }
    }
    None
}

/// The base metric a series contributes to: `x_bucket`/`x_sum`/`x_count`
/// fold into `x` when `x` is a declared histogram.
fn base_name<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Validates a Prometheus text exposition. Returns every problem found.
pub fn check_prom(text: &str) -> Vec<Problem> {
    let mut problems = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    // (base, labels-without-le) -> ordered (le, cumulative count, line)
    #[allow(clippy::type_complexity)]
    let mut buckets: BTreeMap<(String, String), Vec<(String, f64, usize)>> = BTreeMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    let mut samples = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some(name), Some(kind), None) => {
                        if !valid_metric_name(name) {
                            problems.push(Problem {
                                line: lineno,
                                message: format!("invalid metric name in TYPE line: {name:?}"),
                            });
                        }
                        if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                            problems.push(Problem {
                                line: lineno,
                                message: format!("unknown metric type {kind:?}"),
                            });
                        }
                        types.insert(name.to_string(), kind.to_string());
                    }
                    _ => problems.push(Problem {
                        line: lineno,
                        message: "malformed TYPE line (want `# TYPE name kind`)".into(),
                    }),
                }
            }
            continue;
        }

        let Some((name, labels, value)) = split_sample(line) else {
            problems.push(Problem {
                line: lineno,
                message: "unparseable sample line".into(),
            });
            continue;
        };
        samples += 1;
        if !valid_metric_name(name) {
            problems.push(Problem {
                line: lineno,
                message: format!("invalid metric name {name:?}"),
            });
        }
        if !valid_value(value) {
            problems.push(Problem {
                line: lineno,
                message: format!("invalid sample value {value:?}"),
            });
            continue;
        }
        let base = base_name(name, &types);
        if !types.contains_key(base) {
            problems.push(Problem {
                line: lineno,
                message: format!("series {name:?} has no preceding `# TYPE {base}` line"),
            });
        }
        let labelset = labels.unwrap_or("");
        if name.ends_with("_bucket") && base != name {
            let Some(le) = le_of(labelset) else {
                problems.push(Problem {
                    line: lineno,
                    message: format!("histogram bucket {name:?} lacks an `le` label"),
                });
                continue;
            };
            let others: Vec<&str> = labelset
                .split(',')
                .map(str::trim)
                .filter(|p| !p.starts_with("le="))
                .collect();
            let key = (base.to_string(), others.join(","));
            let count: f64 = value.parse().unwrap_or(f64::NAN);
            buckets.entry(key).or_default().push((le, count, lineno));
        } else if name.ends_with("_count") && base != name {
            let key = (base.to_string(), labelset.to_string());
            counts.insert(key, value.parse().unwrap_or(f64::NAN));
        }
    }

    for ((base, labels), series) in &buckets {
        let mut prev = f64::NEG_INFINITY;
        for (le, count, lineno) in series {
            if *count < prev {
                problems.push(Problem {
                    line: *lineno,
                    message: format!(
                        "histogram {base:?} bucket le={le:?} count {count} is below the \
                         previous bucket ({prev}) — buckets must be cumulative"
                    ),
                });
            }
            prev = *count;
        }
        if let Some((le, count, lineno)) = series.last() {
            if le != "+Inf" {
                problems.push(Problem {
                    line: *lineno,
                    message: format!("histogram {base:?} does not end in an `le=\"+Inf\"` bucket"),
                });
            } else if let Some(total) = counts.get(&(base.clone(), labels.clone())) {
                let diff = (count - total).abs();
                if diff > f64::EPSILON {
                    problems.push(Problem {
                        line: *lineno,
                        message: format!(
                            "histogram {base:?} `+Inf` bucket ({count}) disagrees with \
                             `_count` ({total})"
                        ),
                    });
                }
            }
        }
    }

    if samples == 0 {
        problems.push(Problem {
            line: 1,
            message: "exposition contains no samples".into(),
        });
    }
    problems
}

/// A parsed flight-recorder line: the fields the checker cares about.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightLine {
    /// Update sequence number.
    pub seq: u64,
    /// Terminal outcome string.
    pub outcome: String,
}

/// Parses one flight-recorder line, extracting `seq` and `outcome`.
fn parse_flight_line(line: &str) -> Result<FlightLine, String> {
    let mut seq: Option<u64> = None;
    let mut outcome: Option<String> = None;
    for (key, value) in parse_flat_object(line)? {
        match (key.as_str(), value) {
            ("seq", FlatValue::Raw(raw)) => seq = raw.parse::<u64>().ok(),
            ("outcome", FlatValue::Str(text)) => outcome = Some(text),
            _ => {}
        }
    }
    match (seq, outcome) {
        (Some(seq), Some(outcome)) => Ok(FlightLine { seq, outcome }),
        (None, _) => Err("missing numeric `seq` field".into()),
        (_, None) => Err("missing string `outcome` field".into()),
    }
}

/// Result of a successful `/healthz` validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSummary {
    /// The `status` string (`ok` or `degraded`).
    pub status: String,
    /// The `degraded` flag.
    pub degraded: bool,
    /// Active ingest sessions.
    pub sessions: u64,
    /// Admission-queue depth at publish time.
    pub queue_depth: u64,
    /// Level-1 self-heal revivals since spawn.
    pub engine_restarts: u64,
    /// Level-2 promotions this process has performed.
    pub failovers: u64,
    /// How long the front door has been degraded (0 when healthy).
    pub degraded_since_ms: u64,
    /// The fencing epoch the server serves at (≥ 1).
    pub epoch: u64,
    /// The `version+git_sha` build stamp of the serving binary.
    pub build: String,
}

/// The required non-negative integer gauges, in `HealthSummary` order.
const HEALTH_GAUGES: [&str; 6] = [
    "sessions",
    "queue_depth",
    "engine_restarts",
    "failovers",
    "degraded_since_ms",
    "epoch",
];

/// Validates a `/healthz` body from `ctup serve`: one flat JSON object
/// whose `status` string and `degraded` boolean must agree (`ok` ⇔
/// `false`, `degraded` ⇔ `true`), with the non-negative integer gauges
/// in [`HEALTH_GAUGES`]. A healthy body must carry `degraded_since_ms`
/// of zero, `epoch` must be at least 1 (epochs start there; 0 marks
/// an unfenced build), and `build` must be a non-empty string — the
/// probe is how operators confirm which binary actually took a deploy.
/// Unknown extra keys are allowed so the document can grow without
/// breaking deployed probes.
pub fn check_health(text: &str) -> Result<HealthSummary, Vec<Problem>> {
    let mut problems = Vec::new();
    let pairs = match parse_flat_object(text) {
        Ok(pairs) => pairs,
        Err(message) => return Err(vec![Problem { line: 1, message }]),
    };
    let mut status: Option<String> = None;
    let mut degraded: Option<bool> = None;
    let mut build: Option<String> = None;
    let mut gauges: [Option<u64>; HEALTH_GAUGES.len()] = [None; HEALTH_GAUGES.len()];
    for (key, value) in pairs {
        match (key.as_str(), value) {
            ("build", FlatValue::Str(text)) => {
                if text.is_empty() {
                    problems.push(Problem {
                        line: 1,
                        message: "`build` must be a non-empty string".into(),
                    });
                }
                build = Some(text);
            }
            ("build", other) => problems.push(Problem {
                line: 1,
                message: format!("`build` must be a string, got {other:?}"),
            }),
            ("status", FlatValue::Str(text)) => {
                if text != "ok" && text != "degraded" {
                    problems.push(Problem {
                        line: 1,
                        message: format!("`status` must be \"ok\" or \"degraded\", got {text:?}"),
                    });
                }
                status = Some(text);
            }
            ("degraded", FlatValue::Raw(raw)) if raw == "true" || raw == "false" => {
                degraded = Some(raw == "true");
            }
            ("degraded", other) => problems.push(Problem {
                line: 1,
                message: format!("`degraded` must be a boolean, got {other:?}"),
            }),
            (gauge, value) if HEALTH_GAUGES.contains(&gauge) => {
                let parsed = match &value {
                    FlatValue::Raw(raw) => raw.parse::<u64>().ok(),
                    FlatValue::Str(_) => None,
                };
                match parsed {
                    Some(n) => {
                        if let Some(slot) = HEALTH_GAUGES
                            .iter()
                            .position(|&g| g == gauge)
                            .and_then(|i| gauges.get_mut(i))
                        {
                            *slot = Some(n);
                        }
                    }
                    None => problems.push(Problem {
                        line: 1,
                        message: format!("`{gauge}` must be a non-negative integer, got {value:?}"),
                    }),
                }
            }
            _ => {}
        }
    }
    for (name, missing) in [
        ("status", status.is_none()),
        ("degraded", degraded.is_none()),
        ("build", build.is_none()),
    ]
    .into_iter()
    .chain(
        HEALTH_GAUGES
            .iter()
            .zip(&gauges)
            .map(|(&name, slot)| (name, slot.is_none())),
    ) {
        if missing {
            problems.push(Problem {
                line: 1,
                message: format!("missing `{name}` field"),
            });
        }
    }
    if let (Some(status), Some(degraded)) = (&status, degraded) {
        let consistent = (status == "degraded") == degraded;
        if !consistent && (status == "ok" || status == "degraded") {
            problems.push(Problem {
                line: 1,
                message: format!("`status` {status:?} disagrees with `degraded` = {degraded}"),
            });
        }
    }
    if degraded == Some(false) {
        if let [_, _, _, _, Some(since_ms @ 1..), _] = gauges {
            problems.push(Problem {
                line: 1,
                message: format!("`degraded_since_ms` is {since_ms} but `degraded` = false"),
            });
        }
    }
    if let [_, _, _, _, _, Some(0)] = gauges {
        problems.push(Problem {
            line: 1,
            message: "`epoch` must be at least 1".into(),
        });
    }
    if !problems.is_empty() {
        return Err(problems);
    }
    // The field loop above guarantees every slot is present here;
    // unwrap_or keeps the path panic-free anyway.
    let [sessions, queue_depth, engine_restarts, failovers, degraded_since_ms, epoch] =
        gauges.map(Option::unwrap_or_default);
    Ok(HealthSummary {
        status: status.unwrap_or_default(),
        degraded: degraded.unwrap_or_default(),
        sessions,
        queue_depth,
        engine_restarts,
        failovers,
        degraded_since_ms,
        epoch,
        build: build.unwrap_or_default(),
    })
}

/// Result of a successful flight-recorder validation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSummary {
    /// Number of events in the dump.
    pub events: usize,
    /// Sequence number of the first event.
    pub first_seq: u64,
    /// Sequence number of the last event.
    pub last_seq: u64,
    /// Outcome of the last event (e.g. `killed`, `gave_up`).
    pub last_outcome: String,
}

/// Validates a flight-recorder JSONL dump. Every line must parse, carry
/// `seq` and `outcome`, and sequence numbers must never decrease (a
/// rejected update does not consume a sequence number, so consecutive
/// events may share one).
pub fn check_flight(text: &str) -> Result<FlightSummary, Vec<Problem>> {
    let mut problems = Vec::new();
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        match parse_flight_line(raw) {
            Ok(line) => lines.push((idx + 1, line)),
            Err(message) => problems.push(Problem {
                line: idx + 1,
                message,
            }),
        }
    }
    for pair in lines.windows(2) {
        let ((_, a), (lineno, b)) = (&pair[0], &pair[1]);
        if b.seq < a.seq {
            problems.push(Problem {
                line: *lineno,
                message: format!(
                    "seq {} decreases from the previous event ({})",
                    b.seq, a.seq
                ),
            });
        }
    }
    if lines.is_empty() {
        problems.push(Problem {
            line: 1,
            message: "dump contains no events".into(),
        });
    }
    if !problems.is_empty() {
        return Err(problems);
    }
    let (_, first) = &lines[0];
    let (_, last) = &lines[lines.len() - 1];
    Ok(FlightSummary {
        events: lines.len(),
        first_seq: first.seq,
        last_seq: last.seq,
        last_outcome: last.outcome.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_PROM: &str = "\
# TYPE ctup_updates_processed counter
ctup_updates_processed{algorithm=\"opt\"} 60
# TYPE ctup_maintained_now gauge
ctup_maintained_now{algorithm=\"opt\"} 12
# TYPE ctup_update_total_nanos histogram
ctup_update_total_nanos_bucket{algorithm=\"opt\",le=\"1023\"} 10
ctup_update_total_nanos_bucket{algorithm=\"opt\",le=\"2047\"} 55
ctup_update_total_nanos_bucket{algorithm=\"opt\",le=\"+Inf\"} 60
ctup_update_total_nanos_sum{algorithm=\"opt\"} 81234
ctup_update_total_nanos_count{algorithm=\"opt\"} 60
";

    #[test]
    fn good_exposition_is_clean() {
        assert_eq!(check_prom(GOOD_PROM), Vec::new());
    }

    #[test]
    fn missing_type_line_is_flagged() {
        let problems = check_prom("ctup_x{a=\"b\"} 1\n");
        assert!(problems.iter().any(|p| p.message.contains("# TYPE")));
    }

    #[test]
    fn non_cumulative_buckets_are_flagged() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"10\"} 5
h_bucket{le=\"20\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        let problems = check_prom(text);
        assert!(problems.iter().any(|p| p.message.contains("cumulative")));
    }

    #[test]
    fn histogram_must_end_in_inf() {
        let text = "# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_sum 1\nh_count 5\n";
        let problems = check_prom(text);
        assert!(problems.iter().any(|p| p.message.contains("+Inf")));
    }

    #[test]
    fn inf_bucket_must_match_count() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        let problems = check_prom(text);
        assert!(problems.iter().any(|p| p.message.contains("disagrees")));
    }

    #[test]
    fn garbage_lines_are_flagged() {
        let problems = check_prom("# TYPE x counter\nx 1\nnot a line at all!!\n");
        assert!(!problems.is_empty());
    }

    #[test]
    fn empty_exposition_is_flagged() {
        let problems = check_prom("# just a comment\n");
        assert!(problems.iter().any(|p| p.message.contains("no samples")));
    }

    #[test]
    fn good_flight_dump_parses() {
        let text = "\
{\"seq\":3,\"unit\":1,\"maintain_nanos\":10,\"access_nanos\":5,\"cells_accessed\":2,\"result_changed\":true,\"outcome\":\"applied\"}
{\"seq\":4,\"unit\":2,\"maintain_nanos\":0,\"access_nanos\":0,\"cells_accessed\":0,\"result_changed\":false,\"outcome\":\"rejected\",\"detail\":\"stale\"}
{\"seq\":9,\"unit\":0,\"maintain_nanos\":0,\"access_nanos\":0,\"cells_accessed\":0,\"result_changed\":false,\"outcome\":\"killed\"}
";
        let summary = check_flight(text).expect("clean dump");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.first_seq, 3);
        assert_eq!(summary.last_seq, 9);
        assert_eq!(summary.last_outcome, "killed");
    }

    #[test]
    fn decreasing_seq_is_flagged() {
        let text = "{\"seq\":5,\"outcome\":\"applied\"}\n{\"seq\":4,\"outcome\":\"applied\"}\n";
        let problems = check_flight(text).expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("decreases")));
    }

    #[test]
    fn repeated_seq_is_allowed() {
        // A rejected update does not consume a sequence number.
        let text = "{\"seq\":5,\"outcome\":\"rejected\",\"detail\":\"stale\"}\n\
                    {\"seq\":5,\"outcome\":\"applied\"}\n";
        let summary = check_flight(text).expect("clean dump");
        assert_eq!(summary.events, 2);
    }

    #[test]
    fn missing_fields_are_flagged() {
        let problems = check_flight("{\"unit\":1}\n").expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("seq")));
    }

    #[test]
    fn escaped_strings_parse() {
        let text = "{\"seq\":1,\"outcome\":\"rejected\",\"detail\":\"a \\\"quoted\\\" reason\"}\n";
        assert!(check_flight(text).is_ok());
    }

    #[test]
    fn empty_dump_is_flagged() {
        let problems = check_flight("\n").expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("no events")));
    }

    /// A well-formed body with the given leading fields appended with
    /// healthy defaults for the recovery gauges.
    fn health_body(status: &str, degraded: bool, sessions: i64, queue_depth: i64) -> String {
        format!(
            "{{\"status\":\"{status}\",\"degraded\":{degraded},\"sessions\":{sessions},\
             \"queue_depth\":{queue_depth},\"engine_restarts\":0,\"failovers\":0,\
             \"degraded_since_ms\":0,\"epoch\":1,\"build\":\"0.1.0+abcdef0\"}}"
        )
    }

    #[test]
    fn healthy_body_parses() {
        let summary = check_health(&health_body("ok", false, 3, 17)).expect("clean body");
        assert_eq!(summary.status, "ok");
        assert!(!summary.degraded);
        assert_eq!(summary.sessions, 3);
        assert_eq!(summary.queue_depth, 17);
        assert_eq!(summary.engine_restarts, 0);
        assert_eq!(summary.failovers, 0);
        assert_eq!(summary.degraded_since_ms, 0);
        assert_eq!(summary.epoch, 1);
    }

    #[test]
    fn degraded_body_parses() {
        let body = "{\"status\":\"degraded\",\"degraded\":true,\"sessions\":0,\"queue_depth\":0,\
                    \"engine_restarts\":2,\"failovers\":1,\"degraded_since_ms\":450,\"epoch\":3,\
                    \"build\":\"0.1.0+unknown\"}";
        let summary = check_health(body).expect("clean body");
        assert!(summary.degraded);
        assert_eq!(summary.engine_restarts, 2);
        assert_eq!(summary.failovers, 1);
        assert_eq!(summary.degraded_since_ms, 450);
        assert_eq!(summary.epoch, 3);
    }

    #[test]
    fn health_status_flag_disagreement_is_flagged() {
        let problems = check_health(&health_body("ok", true, 1, 0)).expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("disagrees")));
    }

    #[test]
    fn health_missing_gauge_is_flagged() {
        let body = "{\"status\":\"ok\",\"degraded\":false,\"sessions\":1}";
        let problems = check_health(body).expect_err("must fail");
        for gauge in ["queue_depth", "engine_restarts", "failovers", "epoch"] {
            assert!(
                problems
                    .iter()
                    .any(|p| p.message.contains(&format!("missing `{gauge}`"))),
                "no missing-field problem for {gauge}: {problems:?}"
            );
        }
    }

    #[test]
    fn health_non_integer_gauge_is_flagged() {
        let problems = check_health(&health_body("ok", false, -1, 0)).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("non-negative integer")));
    }

    #[test]
    fn health_unknown_status_is_flagged() {
        let problems = check_health(&health_body("meh", false, 0, 0)).expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("status")));
    }

    #[test]
    fn health_extra_keys_are_allowed() {
        let mut body = health_body("ok", false, 0, 0);
        body.truncate(body.len() - 1);
        body.push_str(",\"future_gauge\":7}");
        assert!(check_health(&body).is_ok());
    }

    #[test]
    fn health_build_stamp_is_surfaced() {
        let summary = check_health(&health_body("ok", false, 0, 0)).expect("clean body");
        assert_eq!(summary.build, "0.1.0+abcdef0");
    }

    #[test]
    fn health_missing_build_is_flagged() {
        let body = "{\"status\":\"ok\",\"degraded\":false,\"sessions\":0,\"queue_depth\":0,\
                    \"engine_restarts\":0,\"failovers\":0,\"degraded_since_ms\":0,\"epoch\":1}";
        let problems = check_health(body).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("missing `build`")));
    }

    #[test]
    fn health_empty_build_is_flagged() {
        let body = health_body("ok", false, 0, 0).replace("0.1.0+abcdef0", "");
        let problems = check_health(&body).expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("non-empty")));
    }

    #[test]
    fn health_degraded_since_on_healthy_body_is_flagged() {
        let body = "{\"status\":\"ok\",\"degraded\":false,\"sessions\":0,\"queue_depth\":0,\
                    \"engine_restarts\":0,\"failovers\":0,\"degraded_since_ms\":900,\"epoch\":1}";
        let problems = check_health(body).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("`degraded_since_ms` is 900")));
    }

    #[test]
    fn health_zero_epoch_is_flagged() {
        let body = "{\"status\":\"ok\",\"degraded\":false,\"sessions\":0,\"queue_depth\":0,\
                    \"engine_restarts\":0,\"failovers\":0,\"degraded_since_ms\":0,\"epoch\":0}";
        let problems = check_health(body).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("`epoch` must be at least 1")));
    }

    #[test]
    fn health_non_object_is_flagged() {
        let problems = check_health("status: ok").expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("braces")));
    }
}
