//! Per-file analysis context: tokens, test regions and suppressions.
//!
//! Rules see a [`SourceFile`] and ask two questions per token: "is this
//! inside test code?" and, for a candidate violation, "is it suppressed?".
//! Test code is anything under a `#[test]` / `#[cfg(test)]`-style attribute
//! (plus whole files in `tests/`, `benches/` or `examples/` directories).
//! Suppressions are line comments of the form
//! `// ctup-lint: allow(L001, reason for the exception)`.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use std::ops::Range;
use std::path::Path;

/// A parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id being allowed, e.g. `L001`.
    pub rule: String,
    /// The mandatory justification text.
    pub reason: String,
    /// Line of the comment itself.
    pub line: usize,
    /// Lines the suppression covers: the comment's own line plus the next
    /// line carrying any token (so a directive can sit above its target).
    pub covered: Vec<usize>,
}

/// A malformed `ctup-lint` directive — reported instead of silently ignored,
/// so a typo cannot accidentally disable a real suppression.
#[derive(Debug, Clone)]
pub struct BadDirective {
    /// What is wrong with it.
    pub message: String,
    /// Line of the comment.
    pub line: usize,
}

/// One workspace source file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel_path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Line comments.
    pub comments: Vec<Comment>,
    /// True when the entire file is test/bench/example code.
    pub all_test: bool,
    /// Token-index ranges (into `tokens`) that belong to test items.
    pub test_regions: Vec<Range<usize>>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// Malformed directives.
    pub bad_directives: Vec<BadDirective>,
}

impl SourceFile {
    /// Lexes and annotates `src` for the file at `rel_path`.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(src);
        let all_test = path_is_test(rel_path);
        // A single region spanning the whole file: every token is test code.
        #[allow(clippy::single_range_in_vec_init)]
        let test_regions = if all_test {
            vec![0..tokens.len()]
        } else {
            find_test_regions(&tokens)
        };
        let (suppressions, bad_directives) = parse_directives(&comments, &tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            comments,
            all_test,
            test_regions,
            suppressions,
            bad_directives,
        }
    }

    /// Whether the token at `idx` lies inside test code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&idx))
    }

    /// Whether a violation of `rule` on `line` is covered by a suppression.
    /// Returns the suppression's reason when it is.
    pub fn suppressed(&self, rule: &str, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.rule == rule && s.covered.contains(&line))
    }
}

/// Whole-file test classification by path: integration tests, benches and
/// examples may panic freely.
fn path_is_test(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures")
}

/// Finds token ranges covered by test items: any item annotated with an
/// attribute mentioning `test` or `bench` (`#[test]`, `#[cfg(test)]`,
/// `#[tokio::test]`, `#[cfg_attr(miri, ignore)]` does NOT match — it has no
/// `test` token — while `#[cfg(all(test, feature = "x"))]` does).
fn find_test_regions(tokens: &[Token]) -> Vec<Range<usize>> {
    let mut regions: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // An attribute starts with `#` `[` (or `#` `!` `[` for inner).
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].text == "!" {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut depth = 0usize;
        let attr_start = j;
        let mut attr_end = j;
        while attr_end < tokens.len() {
            match tokens[attr_end].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            attr_end += 1;
        }
        let is_test_attr = tokens[attr_start..attr_end]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && (t.text == "test" || t.text == "bench"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Find the item body: the first `{` at zero paren/bracket depth after
        // the attribute (skipping over further attributes, generics, the
        // parameter list…). A `;` at zero depth means a body-less item.
        let mut k = attr_end + 1;
        let mut depth = 0isize;
        let mut body_start = None;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_start = Some(k);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body_start else {
            i = attr_end + 1;
            continue;
        };
        // Match the closing brace.
        let mut brace = 0usize;
        let mut close = open;
        while close < tokens.len() {
            match tokens[close].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        regions.push(i..close + 1);
        // Continue scanning *after* this region: nested test regions would be
        // redundant.
        i = close + 1;
    }
    regions
}

/// Parses `// ctup-lint: …` directives out of the comment stream.
fn parse_directives(
    comments: &[Comment],
    tokens: &[Token],
) -> (Vec<Suppression>, Vec<BadDirective>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix("ctup-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            bad.push(BadDirective {
                message: format!(
                    "malformed directive {:?}: expected `ctup-lint: allow(RULE, reason)`",
                    rest
                ),
                line: c.line,
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if !crate::rules::known_rule(rule) {
            bad.push(BadDirective {
                message: format!("unknown rule {rule:?} in suppression"),
                line: c.line,
            });
            continue;
        }
        if reason.is_empty() {
            bad.push(BadDirective {
                message: format!(
                    "suppression for {rule} has no reason: write `ctup-lint: allow({rule}, why)`"
                ),
                line: c.line,
            });
            continue;
        }
        // A trailing directive covers its own line only; a directive on a
        // line of its own covers the next line carrying a token (comment-only
        // lines in between are skipped, so directives stack).
        let mut covered = vec![c.line];
        let trailing = tokens.iter().any(|t| t.line == c.line);
        if !trailing {
            if let Some(next) = tokens.iter().map(|t| t.line).filter(|&l| l > c.line).min() {
                covered.push(next);
            }
        }
        sups.push(Suppression {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: c.line,
            covered,
        });
    }
    (sups, bad)
}

/// Reads and parses a file from disk; `rel_path` is used for reporting.
pub fn load(root: &Path, rel_path: &str) -> std::io::Result<SourceFile> {
    let src = std::fs::read_to_string(root.join(rel_path))?;
    Ok(SourceFile::parse(rel_path, &src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\n",
        );
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]));
        assert!(f.in_test(unwraps[1]));
    }

    #[test]
    fn test_fn_attribute_region() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }\n",
        );
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert!(f.in_test(unwraps[0]));
        assert!(!f.in_test(unwraps[1]));
    }

    #[test]
    fn integration_test_file_is_all_test() {
        let f = SourceFile::parse("tests/chaos.rs", "fn f() { x.unwrap(); }");
        assert!(f.all_test);
        assert!(f.in_test(0));
    }

    #[test]
    fn cfg_attr_miri_is_not_a_test_region() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "#[cfg_attr(miri, ignore)]\nfn live() { x.unwrap(); }\n",
        );
        assert!(!f.in_test(5));
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// ctup-lint: allow(L001, lock poisoning is fatal by design)\nx.unwrap();\n",
        );
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressed("L001", 1).is_some());
        assert!(f.suppressed("L001", 2).is_some());
        assert!(f.suppressed("L001", 3).is_none());
        assert!(f.suppressed("L002", 2).is_none());
    }

    #[test]
    fn reasonless_or_unknown_directives_are_flagged() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// ctup-lint: allow(L001)\n// ctup-lint: allow(L999, whatever)\n// ctup-lint: deny(L001)\nfn f() {}\n",
        );
        assert_eq!(f.suppressions.len(), 0);
        assert_eq!(f.bad_directives.len(), 3);
    }
}
