//! `cargo xtask` entry point.
//!
//! ```text
//! cargo xtask lint                         # human-readable report, exit 1 on violations
//! cargo xtask lint --json                  # machine-readable report on stdout
//! cargo xtask lint --update-fingerprints   # re-record lint/fingerprints.toml
//! cargo xtask lint --root <dir>            # lint a different tree (tests, CI)
//! cargo xtask promcheck [FILE]             # validate a Prometheus exposition (stdin default)
//! cargo xtask flightcheck FILE             # validate a flight-recorder JSONL dump
//! cargo xtask healthcheck [FILE]           # validate a /healthz body (stdin default)
//! cargo xtask spancheck FILE               # validate a causal span JSONL dump
//! ```

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "xtask — workspace automation

USAGE:
    cargo xtask lint [--json] [--update-fingerprints] [--root <dir>]
    cargo xtask promcheck [FILE]
    cargo xtask flightcheck FILE
    cargo xtask healthcheck [FILE]
    cargo xtask spancheck FILE

The lint subcommand runs the CTUP domain-invariant checker (rules
L000–L005, see DESIGN.md §10; concurrency rules L006–L010, see
DESIGN.md §15). promcheck validates a Prometheus text
exposition (from `ctup report --format prom` or a `/metrics` scrape;
reads stdin when FILE is omitted). flightcheck validates a
flight-recorder JSONL dump and prints its event span. healthcheck
validates a `/healthz` body from `ctup serve` (stdin when FILE is
omitted): status/degraded must agree, the load gauges must be
integers, and a `build` stamp must be present. spancheck validates a
causal span JSONL dump from `ctup serve --span-dump` (DESIGN.md §17):
parents before children, no orphaned spans, the canonical pipeline
stages all covered. Exit codes: 0 clean, 1 violations, 2 usage or
I/O error."
}

/// `promcheck [FILE]` — stdin when no file is given.
fn promcheck(file: Option<&String>) -> ExitCode {
    let text = match file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promcheck: {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promcheck: stdin: {e}");
                return ExitCode::from(2);
            }
            buf
        }
    };
    let problems = xtask::obscheck::check_prom(&text);
    if problems.is_empty() {
        println!("promcheck: well-formed exposition");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("promcheck: {p}");
        }
        ExitCode::from(1)
    }
}

/// `healthcheck [FILE]` — stdin when no file is given.
fn healthcheck(file: Option<&String>) -> ExitCode {
    let text = match file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("healthcheck: {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("healthcheck: stdin: {e}");
                return ExitCode::from(2);
            }
            buf
        }
    };
    match xtask::obscheck::check_health(&text) {
        Ok(summary) => {
            println!(
                "healthcheck: status {:?}, degraded {}, {} session(s), queue depth {}, \
                 {} restart(s), {} failover(s), epoch {}, build {}",
                summary.status,
                summary.degraded,
                summary.sessions,
                summary.queue_depth,
                summary.engine_restarts,
                summary.failovers,
                summary.epoch,
                summary.build
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("healthcheck: {p}");
            }
            ExitCode::from(1)
        }
    }
}

/// `spancheck FILE`.
fn spancheck(file: &str) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spancheck: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    match xtask::spancheck::check_spans(&text) {
        Ok(summary) => {
            println!(
                "spancheck: {} span(s) across {} trace(s), {} complete chain(s)",
                summary.spans, summary.traces, summary.complete_chains
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("spancheck: {p}");
            }
            ExitCode::from(1)
        }
    }
}

/// `flightcheck FILE`.
fn flightcheck(file: &str) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flightcheck: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    match xtask::obscheck::check_flight(&text) {
        Ok(summary) => {
            println!(
                "flightcheck: {} events, seq {}..{}, last outcome {:?}",
                summary.events, summary.first_seq, summary.last_seq, summary.last_outcome
            );
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("flightcheck: {p}");
            }
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "lint" => {}
        "promcheck" => return promcheck(iter.next()),
        "healthcheck" => return healthcheck(iter.next()),
        "flightcheck" => match iter.next() {
            Some(file) => return flightcheck(file),
            None => {
                eprintln!("flightcheck requires a file\n\n{}", usage());
                return ExitCode::from(2);
            }
        },
        "spancheck" => match iter.next() {
            Some(file) => return spancheck(file),
            None => {
                eprintln!("spancheck requires a file\n\n{}", usage());
                return ExitCode::from(2);
            }
        },
        other => {
            eprintln!("unknown subcommand {other:?}\n\n{}", usage());
            return ExitCode::from(2);
        }
    }

    let mut json = false;
    let mut update = false;
    // Default root: the workspace containing this crate; the alias in
    // .cargo/config.toml may invoke us from any subdirectory.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-fingerprints" => update = true,
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag {other:?}\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let config = xtask::LintConfig::default();
    let report = match xtask::run_lint(&root, &config, update) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", xtask::json::render(&report));
    } else {
        for v in &report.violations {
            println!("{} {}:{} {}", v.rule, v.file, v.line, v.message);
        }
        if update {
            println!("fingerprints re-recorded in lint/fingerprints.toml");
        }
        if report.clean() {
            println!(
                "xtask lint: clean ({} files, {} rules)",
                report.files_checked,
                xtask::rules::RULES.len()
            );
        } else {
            println!(
                "xtask lint: {} violation(s) in {} files",
                report.violations.len(),
                report.files_checked
            );
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
