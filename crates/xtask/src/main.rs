//! `cargo xtask` entry point.
//!
//! ```text
//! cargo xtask lint                         # human-readable report, exit 1 on violations
//! cargo xtask lint --json                  # machine-readable report on stdout
//! cargo xtask lint --update-fingerprints   # re-record lint/fingerprints.toml
//! cargo xtask lint --root <dir>            # lint a different tree (tests, CI)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "xtask — workspace automation

USAGE:
    cargo xtask lint [--json] [--update-fingerprints] [--root <dir>]

The lint subcommand runs the CTUP domain-invariant checker (rules
L000–L005; see DESIGN.md §10). Exit codes: 0 clean, 1 violations,
2 usage or I/O error."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown subcommand {cmd:?}\n\n{}", usage());
        return ExitCode::from(2);
    }

    let mut json = false;
    let mut update = false;
    // Default root: the workspace containing this crate; the alias in
    // .cargo/config.toml may invoke us from any subdirectory.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-fingerprints" => update = true,
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag {other:?}\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let config = xtask::LintConfig::default();
    let report = match xtask::run_lint(&root, &config, update) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", xtask::json::render(&report));
    } else {
        for v in &report.violations {
            println!("{} {}:{} {}", v.rule, v.file, v.line, v.message);
        }
        if update {
            println!("fingerprints re-recorded in lint/fingerprints.toml");
        }
        if report.clean() {
            println!(
                "xtask lint: clean ({} files, {} rules)",
                report.files_checked,
                xtask::rules::RULES.len()
            );
        } else {
            println!(
                "xtask lint: {} violation(s) in {} files",
                report.violations.len(),
                report.files_checked
            );
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
