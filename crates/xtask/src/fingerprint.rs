//! L005 — checkpoint-format fingerprints.
//!
//! The checkpoint codec is hand-written (`core::checkpoint`), so the
//! compiler cannot tell when someone edits a serialized struct and silently
//! breaks restart compatibility. This module hashes the *token signature*
//! of every item on the checkpoint wire format and pins the hashes in
//! `lint/fingerprints.toml` together with the `FORMAT_VERSION` they were
//! recorded for. Editing a tracked item without bumping `FORMAT_VERSION`
//! (and re-recording with `cargo xtask lint --update-fingerprints`) fails
//! the lint.

use crate::lexer::TokenKind;
use crate::rules::{RuleSink, Violation};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;
use std::rc::Rc;

/// One item whose signature is pinned.
#[derive(Debug, Clone)]
pub struct TrackedItem {
    /// Stable key used in the fingerprint store, e.g.
    /// `core::checkpoint::Checkpoint`.
    pub key: String,
    /// File defining the item, relative to root.
    pub file: String,
    /// Item name (`struct X`, `enum X` or `type X`).
    pub item: String,
}

/// Configuration of the fingerprint rule.
#[derive(Debug, Clone)]
pub struct FingerprintConfig {
    /// File declaring the format-version constant.
    pub version_file: String,
    /// Name of the constant (`FORMAT_VERSION`).
    pub version_const: String,
    /// Items on the checkpoint wire format.
    pub tracked: Vec<TrackedItem>,
    /// Store path relative to root (`lint/fingerprints.toml`).
    pub store: String,
}

fn item(key: &str, file: &str, name: &str) -> TrackedItem {
    TrackedItem {
        key: key.to_string(),
        file: file.to_string(),
        item: name.to_string(),
    }
}

impl FingerprintConfig {
    /// The real repo's configuration: everything `Checkpoint::write` puts on
    /// the wire, transitively.
    pub fn default_config() -> FingerprintConfig {
        FingerprintConfig {
            version_file: "crates/core/src/checkpoint.rs".into(),
            version_const: "FORMAT_VERSION".into(),
            store: "lint/fingerprints.toml".into(),
            tracked: vec![
                item(
                    "core::checkpoint::Checkpoint",
                    "crates/core/src/checkpoint.rs",
                    "Checkpoint",
                ),
                item(
                    "core::config::CtupConfig",
                    "crates/core/src/config.rs",
                    "CtupConfig",
                ),
                item(
                    "core::config::QueryMode",
                    "crates/core/src/config.rs",
                    "QueryMode",
                ),
                item(
                    "core::ingest::GateState",
                    "crates/core/src/ingest.rs",
                    "GateState",
                ),
                item(
                    "core::ingest::GateUnitState",
                    "crates/core/src/ingest.rs",
                    "GateUnitState",
                ),
                item("core::types::Safety", "crates/core/src/types.rs", "Safety"),
                item("core::types::UnitId", "crates/core/src/types.rs", "UnitId"),
                item(
                    "storage::place::PlaceRecord",
                    "crates/storage/src/place.rs",
                    "PlaceRecord",
                ),
                item(
                    "storage::place::PlaceId",
                    "crates/storage/src/place.rs",
                    "PlaceId",
                ),
                item(
                    "spatial::point::Point",
                    "crates/spatial/src/point.rs",
                    "Point",
                ),
                item("spatial::rect::Rect", "crates/spatial/src/rect.rs", "Rect"),
                item(
                    "spatial::grid::CellId",
                    "crates/spatial/src/grid.rs",
                    "CellId",
                ),
            ],
        }
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for change detection.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts the token signature of `struct|enum|type <name>` from `file`:
/// the item keyword through its closing `}` or `;`, comments and whitespace
/// normalized away. Returns `None` when the item is absent.
pub fn item_signature(file: &SourceFile, name: &str) -> Option<String> {
    let toks = &file.tokens;
    let start = toks.windows(2).position(|w| {
        w[0].kind == TokenKind::Ident
            && matches!(w[0].text.as_str(), "struct" | "enum" | "type" | "union")
            && w[1].kind == TokenKind::Ident
            && w[1].text == name
    })?;
    let mut parts: Vec<&str> = Vec::new();
    let mut depth = 0isize;
    for t in &toks[start..] {
        parts.push(t.text.as_str());
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 && t.text == "}" {
                    break;
                }
            }
            ";" if depth == 0 => break,
            _ => {}
        }
    }
    Some(parts.join(" "))
}

/// Hex fingerprint of an item signature.
pub fn fingerprint(signature: &str) -> String {
    format!("{:016x}", fnv1a(signature.as_bytes()))
}

/// Finds the integer value of `const <name> … = <int>;` in `file`.
pub fn const_int(file: &SourceFile, name: &str) -> Option<u64> {
    let toks = &file.tokens;
    let pos = toks
        .iter()
        .position(|t| t.kind == TokenKind::Ident && t.text == name)?;
    // Scan forward past the type annotation to `=` then the literal.
    let mut i = pos + 1;
    while i < toks.len() && toks[i].text != "=" && toks[i].text != ";" {
        i += 1;
    }
    if i >= toks.len() || toks[i].text != "=" {
        return None;
    }
    let lit = toks.get(i + 1)?;
    if lit.kind != TokenKind::Int {
        return None;
    }
    lit.text.replace('_', "").parse().ok()
}

/// The recorded fingerprint store.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Store {
    /// `FORMAT_VERSION` the hashes were recorded for.
    pub format_version: u64,
    /// Item key → hex fingerprint.
    pub items: BTreeMap<String, String>,
}

impl Store {
    /// Parses the tiny TOML subset this tool writes (`key = value` lines,
    /// one `[items]` table, `#` comments).
    pub fn parse(text: &str) -> Result<Store, String> {
        let mut store = Store::default();
        let mut in_items = false;
        let mut saw_version = false;
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[items]" {
                in_items = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown table {line}", no + 1));
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", no + 1));
            };
            let k = k.trim().trim_matches('"');
            let v = v.trim().trim_matches('"');
            if in_items {
                store.items.insert(k.to_string(), v.to_string());
            } else if k == "format_version" {
                store.format_version = v
                    .parse()
                    .map_err(|e| format!("line {}: bad format_version: {e}", no + 1))?;
                saw_version = true;
            } else {
                return Err(format!("line {}: unknown key {k:?}", no + 1));
            }
        }
        if !saw_version {
            return Err("missing format_version".into());
        }
        Ok(store)
    }

    /// Serializes the store.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Checkpoint-format fingerprints — generated by `cargo xtask lint --update-fingerprints`.\n\
             # Do not edit by hand: bump FORMAT_VERSION in crates/core/src/checkpoint.rs and\n\
             # regenerate when the wire format intentionally changes.\n",
        );
        out.push_str(&format!(
            "format_version = {}\n\n[items]\n",
            self.format_version
        ));
        for (k, v) in &self.items {
            out.push_str(&format!("\"{k}\" = \"{v}\"\n"));
        }
        out
    }
}

/// Runs the L005 check (or, with `update`, re-records the store).
/// `lookup` resolves relative paths to parsed files.
pub fn check(
    cfg: &FingerprintConfig,
    root: &Path,
    lookup: &dyn Fn(&str) -> Option<Rc<SourceFile>>,
    update: bool,
    sink: &mut RuleSink,
) {
    let fail = |sink: &mut RuleSink, file: &str, line: usize, message: String| {
        sink.violations.push(Violation {
            rule: "L005",
            file: file.to_string(),
            line,
            message,
        });
    };

    let Some(version_file) = lookup(&cfg.version_file) else {
        fail(sink, &cfg.version_file, 1, "version file not found".into());
        return;
    };
    let Some(current_version) = const_int(&version_file, &cfg.version_const) else {
        fail(
            sink,
            &cfg.version_file,
            1,
            format!(
                "const `{}` not found — the checkpoint module must declare its format version",
                cfg.version_const
            ),
        );
        return;
    };

    let mut current = Store {
        format_version: current_version,
        items: BTreeMap::new(),
    };
    for t in &cfg.tracked {
        let Some(f) = lookup(&t.file) else {
            fail(
                sink,
                &t.file,
                1,
                format!("tracked file for `{}` not found", t.key),
            );
            continue;
        };
        let Some(sig) = item_signature(&f, &t.item) else {
            fail(
                sink,
                &t.file,
                1,
                format!("tracked item `{}` ({}) not found", t.item, t.key),
            );
            continue;
        };
        current.items.insert(t.key.clone(), fingerprint(&sig));
    }

    let store_path = root.join(&cfg.store);
    if update {
        if let Some(parent) = store_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&store_path, current.render()) {
            fail(
                sink,
                &cfg.store,
                1,
                format!("cannot write fingerprint store: {e}"),
            );
        }
        return;
    }

    let recorded = match std::fs::read_to_string(&store_path) {
        Ok(text) => match Store::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                fail(
                    sink,
                    &cfg.store,
                    1,
                    format!("corrupt fingerprint store: {e}"),
                );
                return;
            }
        },
        Err(_) => {
            fail(
                sink,
                &cfg.store,
                1,
                "fingerprint store missing — run `cargo xtask lint --update-fingerprints`".into(),
            );
            return;
        }
    };

    if recorded.format_version != current.format_version {
        fail(
            sink,
            &cfg.version_file,
            1,
            format!(
                "FORMAT_VERSION is {} but fingerprints were recorded for {} — run \
                 `cargo xtask lint --update-fingerprints` to re-record the new wire format",
                current.format_version, recorded.format_version
            ),
        );
        return;
    }

    for (key, hash) in &current.items {
        match recorded.items.get(key) {
            None => fail(
                sink,
                &cfg.store,
                1,
                format!(
                    "`{key}` is on the checkpoint wire format but has no recorded \
                     fingerprint — run `cargo xtask lint --update-fingerprints`"
                ),
            ),
            Some(old) if old != hash => {
                let t = cfg.tracked.iter().find(|t| &t.key == key);
                fail(
                    sink,
                    t.map(|t| t.file.as_str()).unwrap_or(cfg.store.as_str()),
                    1,
                    format!(
                        "checkpoint-serialized item `{key}` changed without a FORMAT_VERSION \
                         bump — bump `{}` in {} and run `cargo xtask lint --update-fingerprints`",
                        cfg.version_const, cfg.version_file
                    ),
                );
            }
            Some(_) => {}
        }
    }
    for key in recorded.items.keys() {
        if !current.items.contains_key(key) {
            fail(
                sink,
                &cfg.store,
                1,
                format!(
                    "fingerprint store records `{key}` which is no longer tracked — run \
                     `cargo xtask lint --update-fingerprints`"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_normalizes_whitespace_and_comments() {
        let a = SourceFile::parse("x.rs", "pub struct P { pub x: f64, pub y: f64 }");
        let b = SourceFile::parse(
            "x.rs",
            "pub struct P {\n    // the x coordinate\n    pub x: f64,\n    pub y: f64\n}",
        );
        assert_eq!(item_signature(&a, "P"), item_signature(&b, "P"));
    }

    #[test]
    fn signature_changes_when_fields_change() {
        let a = SourceFile::parse("x.rs", "struct P { x: f64 }");
        let b = SourceFile::parse("x.rs", "struct P { x: f32 }");
        assert_ne!(
            fingerprint(&item_signature(&a, "P").unwrap()),
            fingerprint(&item_signature(&b, "P").unwrap())
        );
    }

    #[test]
    fn tuple_struct_and_type_alias_signatures() {
        let f = SourceFile::parse(
            "x.rs",
            "pub struct Id(pub u32);\npub type Safety = i64;\npub enum M { A(u32), B }",
        );
        assert_eq!(item_signature(&f, "Id").unwrap(), "struct Id ( pub u32 ) ;");
        assert_eq!(item_signature(&f, "Safety").unwrap(), "type Safety = i64 ;");
        assert!(item_signature(&f, "M").unwrap().ends_with('}'));
    }

    #[test]
    fn const_int_extraction() {
        let f = SourceFile::parse("x.rs", "pub const FORMAT_VERSION: u32 = 2;");
        assert_eq!(const_int(&f, "FORMAT_VERSION"), Some(2));
        assert_eq!(const_int(&f, "OTHER"), None);
    }

    #[test]
    fn store_roundtrip() {
        let mut s = Store {
            format_version: 3,
            items: BTreeMap::new(),
        };
        s.items.insert("a::B".into(), "00ff".into());
        let parsed = Store::parse(&s.render()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn store_rejects_garbage() {
        assert!(Store::parse("format_version = x\n").is_err());
        assert!(Store::parse("[weird]\n").is_err());
        assert!(Store::parse("").is_err());
    }
}
