//! A tiny JSON emitter — the linter is dependency-free by design, and its
//! machine-readable output is a flat, fixed shape that does not justify a
//! serializer dependency.

use crate::rules::{Violation, RULES};
use crate::LintReport;
use std::fmt::Write;

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn violation(v: &Violation) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
        escape(v.rule),
        escape(&v.file),
        v.line,
        escape(&v.message)
    )
}

/// Renders a lint report as a single JSON object:
/// `{"clean":bool,"files_checked":N,"rules":[…],"violations":[…]}`.
pub fn render(report: &LintReport) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"summary\":\"{}\"}}",
                escape(r.id),
                escape(r.summary)
            )
        })
        .collect();
    let violations: Vec<String> = report.violations.iter().map(violation).collect();
    format!(
        "{{\"clean\":{},\"files_checked\":{},\"rules\":[{}],\"violations\":[{}]}}\n",
        report.clean(),
        report.files_checked,
        rules.join(","),
        violations.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_shape() {
        let report = LintReport {
            violations: vec![Violation {
                rule: "L001",
                file: "crates/core/src/x.rs".into(),
                line: 3,
                message: "a \"quoted\" message".into(),
            }],
            files_checked: 7,
        };
        let json = render(&report);
        assert!(json.starts_with("{\"clean\":false,\"files_checked\":7,"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\"id\":\"L005\""));
    }
}
