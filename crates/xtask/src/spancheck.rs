//! `cargo xtask spancheck` — CI validator for causal span dumps.
//!
//! A span dump is the JSONL file `ctup serve --span-dump` (or a test's
//! `SpanSink::dump_jsonl`) writes: one flat object per span with numeric
//! `trace`/`span`/`parent`/`start`/`end`/`aux` fields and a string
//! `stage` label. The checker enforces the structural invariants the
//! tracing layer promises:
//!
//! * every line parses and names a known stage;
//! * `trace` and `span` are non-zero and `end >= start`;
//! * **no orphans** — a span naming a parent id must find it in the
//!   dump whenever any *other* span of the same trace made it in (a
//!   lone half of a cross-process trace is legitimate; a hole in the
//!   middle of an otherwise-recorded trace is not);
//! * **parent before child** — a resolved parent must not start after
//!   its child, and must carry the stage the span model assigns as the
//!   child's causal predecessor;
//! * **stage coverage** — the dump as a whole exercises the full
//!   canonical chain (client-send through snapshot-publish), so a CI
//!   run that silently stopped recording halfway fails loudly.
//!
//! Hand-rolled like the other validators: the stage table below is a
//! deliberate *second copy* of the span model in `ctup-obs` — if the
//! producer drifts, this checker is what notices.

use crate::flatjson::{parse_flat_object, FlatValue};
use crate::obscheck::Problem;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The canonical report lifecycle, in causal order. A complete trace
/// covers every one of these stages.
pub const CANONICAL_CHAIN: [&str; 7] = [
    "client-send",
    "session-admit",
    "queue-wait",
    "engine-apply",
    "shard-phase",
    "merge",
    "snapshot-publish",
];

/// Every stage label the span layer can emit.
const ALL_STAGES: [&str; 11] = [
    "client-send",
    "session-admit",
    "queue-wait",
    "engine-apply",
    "shard-phase",
    "merge",
    "snapshot-publish",
    "wal-append",
    "checkpoint",
    "shed",
    "standby-apply",
];

/// The stage a non-root span's parent must carry (the causal
/// predecessor in the span model). Roots (`parent == 0`) are exempt.
fn expected_parent_stage(stage: &str) -> Option<&'static str> {
    match stage {
        "session-admit" => Some("client-send"),
        "queue-wait" => Some("session-admit"),
        "engine-apply" => Some("queue-wait"),
        "shard-phase" | "merge" | "wal-append" | "checkpoint" => Some("engine-apply"),
        "snapshot-publish" => Some("merge"),
        "shed" => Some("session-admit"),
        "standby-apply" => Some("wal-append"),
        _ => None, // client-send is the root; unknown stages are caught earlier
    }
}

/// One parsed span line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpanLine {
    trace: u64,
    span: u64,
    parent: u64,
    stage: String,
    start: u64,
    end: u64,
}

fn parse_span_line(line: &str) -> Result<SpanLine, String> {
    let pairs = parse_flat_object(line)?;
    let mut nums: HashMap<&str, u64> = HashMap::new();
    let mut stage: Option<String> = None;
    for (key, value) in &pairs {
        match (key.as_str(), value) {
            ("stage", FlatValue::Str(text)) => stage = Some(text.clone()),
            (k @ ("trace" | "span" | "parent" | "start" | "end"), FlatValue::Raw(raw)) => {
                let n = raw
                    .parse::<u64>()
                    .map_err(|_| format!("bad number for `{k}`: {raw:?}"))?;
                if let Some(slot) = ["trace", "span", "parent", "start", "end"]
                    .iter()
                    .find(|&&name| name == k)
                {
                    nums.insert(slot, n);
                }
            }
            _ => {}
        }
    }
    let stage = stage.ok_or("missing string `stage` field")?;
    if !ALL_STAGES.contains(&stage.as_str()) {
        return Err(format!("unknown stage {stage:?}"));
    }
    let get = |k: &str| nums.get(k).copied().ok_or(format!("missing `{k}` field"));
    Ok(SpanLine {
        trace: get("trace")?,
        span: get("span")?,
        parent: get("parent")?,
        stage,
        start: get("start")?,
        end: get("end")?,
    })
}

/// Result of a successful span-dump validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span lines in the dump (after deduplicating retransmits).
    pub spans: usize,
    /// Distinct trace ids.
    pub traces: usize,
    /// Traces covering the full canonical chain.
    pub complete_chains: usize,
}

/// Validates a span JSONL dump. Returns every problem found.
pub fn check_spans(text: &str) -> Result<SpanSummary, Vec<Problem>> {
    let mut problems = Vec::new();
    // span id -> (line, span); a replayed report re-records the same
    // deterministic id, so exact duplicates fold to the last write.
    let mut by_id: BTreeMap<u64, (usize, SpanLine)> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        match parse_span_line(raw) {
            Ok(span) => {
                if span.trace == 0 {
                    problems.push(Problem {
                        line: lineno,
                        message: "`trace` must be non-zero".into(),
                    });
                    continue;
                }
                if span.span == 0 {
                    problems.push(Problem {
                        line: lineno,
                        message: "`span` must be non-zero".into(),
                    });
                    continue;
                }
                if span.end < span.start {
                    problems.push(Problem {
                        line: lineno,
                        message: format!(
                            "span of stage {:?} ends ({}) before it starts ({})",
                            span.stage, span.end, span.start
                        ),
                    });
                    continue;
                }
                by_id.insert(span.span, (lineno, span));
            }
            Err(message) => problems.push(Problem {
                line: lineno,
                message,
            }),
        }
    }

    let mut trace_spans: BTreeMap<u64, Vec<&(usize, SpanLine)>> = BTreeMap::new();
    for entry in by_id.values() {
        trace_spans.entry(entry.1.trace).or_default().push(entry);
    }

    for (lineno, span) in by_id.values() {
        if span.parent == 0 {
            continue;
        }
        match by_id.get(&span.parent) {
            Some((_, parent)) => {
                if parent.start > span.start {
                    problems.push(Problem {
                        line: *lineno,
                        message: format!(
                            "{} span starts ({}) before its {} parent ({}) — \
                             parent must come first",
                            span.stage, span.start, parent.stage, parent.start
                        ),
                    });
                }
                if let Some(want) = expected_parent_stage(&span.stage) {
                    if parent.stage != want {
                        problems.push(Problem {
                            line: *lineno,
                            message: format!(
                                "{} span parents onto a {} span, expected {}",
                                span.stage, parent.stage, want
                            ),
                        });
                    }
                }
            }
            None => {
                // A missing parent is only an orphan when the trace left
                // other evidence in this dump: a lone half of a
                // cross-process trace (e.g. a standby's spans) is fine.
                let siblings = trace_spans
                    .get(&span.trace)
                    .map(|v| v.len())
                    .unwrap_or(0);
                if siblings > 1 {
                    problems.push(Problem {
                        line: *lineno,
                        message: format!(
                            "{} span names parent {:#x} which is not in the dump \
                             (trace {:#x} has {} other span(s) — a hole, not a \
                             cross-process cut)",
                            span.stage,
                            span.parent,
                            span.trace,
                            siblings - 1
                        ),
                    });
                }
            }
        }
    }

    // Stage coverage: the dump as a whole must exercise the full chain.
    let seen: BTreeSet<&str> = by_id
        .values()
        .map(|(_, s)| s.stage.as_str())
        .collect();
    for stage in CANONICAL_CHAIN {
        if !seen.contains(stage) {
            problems.push(Problem {
                line: 1,
                message: format!("no {stage:?} span anywhere in the dump — stage not covered"),
            });
        }
    }

    if by_id.is_empty() {
        problems.push(Problem {
            line: 1,
            message: "dump contains no spans".into(),
        });
    }
    if !problems.is_empty() {
        return Err(problems);
    }

    let complete_chains = trace_spans
        .values()
        .filter(|spans| {
            let stages: BTreeSet<&str> = spans.iter().map(|(_, s)| s.stage.as_str()).collect();
            CANONICAL_CHAIN.iter().all(|s| stages.contains(s))
        })
        .count();
    Ok(SpanSummary {
        spans: by_id.len(),
        traces: trace_spans.len(),
        complete_chains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(trace: u64, span: u64, parent: u64, stage: &str, start: u64, end: u64) -> String {
        format!(
            "{{\"trace\":{trace},\"span\":{span},\"parent\":{parent},\"stage\":\"{stage}\",\
             \"start\":{start},\"end\":{end},\"aux\":0}}"
        )
    }

    /// One full canonical chain for trace 7, contiguous timestamps.
    /// Shard-phase and merge both fan out from engine-apply;
    /// snapshot-publish parents onto merge.
    fn full_chain() -> String {
        let steps: [(&str, u64, u64); 7] = [
            ("client-send", 100, 0),
            ("session-admit", 101, 100),
            ("queue-wait", 102, 101),
            ("engine-apply", 103, 102),
            ("shard-phase", 104, 103),
            ("merge", 105, 103),
            ("snapshot-publish", 106, 105),
        ];
        let mut out = String::new();
        for (i, (stage, id, parent)) in steps.iter().enumerate() {
            let t = u64::try_from(i).unwrap() * 10;
            out.push_str(&line(7, *id, *parent, stage, t, t + 10));
            out.push('\n');
        }
        out
    }

    #[test]
    fn full_chain_is_clean() {
        let summary = check_spans(&full_chain()).expect("clean dump");
        assert_eq!(summary.spans, 7);
        assert_eq!(summary.traces, 1);
        assert_eq!(summary.complete_chains, 1);
    }

    #[test]
    fn duplicate_span_ids_fold() {
        let mut text = full_chain();
        text.push_str(&line(7, 101, 100, "session-admit", 10, 20));
        text.push('\n');
        let summary = check_spans(&text).expect("replay re-record is legal");
        assert_eq!(summary.spans, 7);
    }

    #[test]
    fn hole_in_a_recorded_trace_is_an_orphan() {
        // Drop the queue-wait span (id 102): engine-apply's parent is
        // missing while the rest of the trace is present.
        let text: String = full_chain()
            .lines()
            .filter(|l| !l.contains("queue-wait"))
            .map(|l| format!("{l}\n"))
            .collect();
        let problems = check_spans(&text).expect_err("must fail");
        assert!(
            problems.iter().any(|p| p.message.contains("hole")),
            "no orphan problem: {problems:?}"
        );
    }

    #[test]
    fn lone_cross_process_half_is_not_an_orphan() {
        // A standby dump: one standby-apply span whose wal-append parent
        // lives in the primary's dump. Pad with a full chain from
        // another trace so coverage passes.
        let mut text = full_chain();
        text.push_str(&line(9, 900, 899, "standby-apply", 5, 6));
        text.push('\n');
        let summary = check_spans(&text).expect("cross-process cut is legal");
        assert_eq!(summary.traces, 2);
        assert_eq!(summary.complete_chains, 1);
    }

    #[test]
    fn child_starting_before_parent_is_flagged() {
        let mut text = line(7, 100, 0, "client-send", 50, 60);
        text.push('\n');
        text.push_str(&line(7, 101, 100, "session-admit", 40, 45));
        let problems = check_spans(&text).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("parent must come first")));
    }

    #[test]
    fn wrong_parent_stage_is_flagged() {
        let mut text = line(7, 100, 0, "client-send", 0, 1);
        text.push('\n');
        // engine-apply must parent onto queue-wait, not client-send.
        text.push_str(&line(7, 103, 100, "engine-apply", 2, 3));
        let problems = check_spans(&text).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("expected queue-wait")));
    }

    #[test]
    fn inverted_interval_is_flagged() {
        let problems =
            check_spans(&line(7, 100, 0, "client-send", 60, 50)).expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("before it starts")));
    }

    #[test]
    fn zero_trace_is_flagged() {
        let problems =
            check_spans(&line(0, 100, 0, "client-send", 0, 1)).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("`trace` must be non-zero")));
    }

    #[test]
    fn unknown_stage_is_flagged() {
        let problems =
            check_spans(&line(7, 100, 0, "client-send", 0, 1).replace("client-send", "warp"))
                .expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("unknown stage")));
    }

    #[test]
    fn missing_coverage_is_flagged() {
        let problems =
            check_spans(&line(7, 100, 0, "client-send", 0, 1)).expect_err("must fail");
        assert!(problems
            .iter()
            .any(|p| p.message.contains("\"merge\" span anywhere")));
    }

    #[test]
    fn empty_dump_is_flagged() {
        let problems = check_spans("\n").expect_err("must fail");
        assert!(problems.iter().any(|p| p.message.contains("no spans")));
    }
}
