//! The lint rule registry: CTUP's domain invariants as code.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L000 | `ctup-lint` directives must be well-formed and must fire |
//! | L001 | no panicking constructs in library code of `core`/`spatial`/`storage`/`obs` |
//! | L002 | no `==` / `!=` on floating-point expressions |
//! | L003 | no bare truncating integer `as` casts in `core`/`spatial` |
//! | L004 | every collected counter/histogram field appears in the report output |
//! | L005 | checkpoint-serialized structs may not change without a `FORMAT_VERSION` bump |
//!
//! Generic clippy cannot express L004/L005 at all and enforces L001–L003
//! only approximately; these rules encode what "correct" means for this
//! system: panics stay behind the supervisor boundary, coordinates are
//! never compared exactly, id spaces never truncate silently, observability
//! never rots, and the restart path never reads a checkpoint whose layout
//! drifted under it.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id, e.g. `L001`.
    pub rule: &'static str,
    /// File, relative to the lint root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Static description of a rule, for `--json` output and `known_rule`.
#[derive(Debug)]
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// All rules, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L000",
        summary: "ctup-lint suppression directives must parse, name a known rule, \
                  carry a reason, and actually fire",
    },
    RuleInfo {
        id: "L001",
        summary: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test \
                  library code of core, spatial, storage and obs",
    },
    RuleInfo {
        id: "L002",
        summary: "no == or != on floating-point expressions; use epsilon comparison or \
                  is_infinite()/is_nan()",
    },
    RuleInfo {
        id: "L003",
        summary: "no bare `as` casts to integer types in core and spatial; use try_from \
                  or the checked id-space helpers",
    },
    RuleInfo {
        id: "L004",
        summary: "every field of Metrics, ResilienceStats, StorageStatsSnapshot, \
                  LatencySnapshot and NetStatsSnapshot must appear in the CLI \
                  metrics report",
    },
    RuleInfo {
        id: "L005",
        summary: "checkpoint-serialized item signatures must match lint/fingerprints.toml \
                  unless FORMAT_VERSION is bumped",
    },
    RuleInfo {
        id: "L006",
        summary: "the global lock-acquisition order over Mutex/RwLock fields must be \
                  acyclic; cycles are reported with a witness path",
    },
    RuleInfo {
        id: "L007",
        summary: "no blocking call (channel send/recv, join, sleep, I/O) while a lock \
                  guard is live; condvar waits are exempt",
    },
    RuleInfo {
        id: "L008",
        summary: "Ordering::Relaxed only in the designated counters modules or behind a \
                  stats handle; anywhere else needs a reasoned suppression",
    },
    RuleInfo {
        id: "L009",
        summary: "a file that spawns OS threads must join a handle somewhere, or each \
                  spawn carries an explicit detach rationale",
    },
    RuleInfo {
        id: "L010",
        summary: "channels must be bounded (sync_channel/bounded); unbounded channels \
                  need a capacity rationale",
    },
];

/// Whether `id` names a rule (used when validating suppressions).
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// A suppression that fired, recorded so unused suppressions can be flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredSuppression {
    /// File the suppression lives in.
    pub file: String,
    /// Line of the directive comment.
    pub line: usize,
}

/// Accumulator shared by the per-file rules.
#[derive(Debug, Default)]
pub struct RuleSink {
    /// Confirmed violations.
    pub violations: Vec<Violation>,
    /// Suppressions that matched a candidate violation.
    pub fired: Vec<FiredSuppression>,
}

impl RuleSink {
    /// Records `v` unless a suppression covers it; a covering suppression is
    /// marked as fired.
    pub(crate) fn push(&mut self, file: &SourceFile, v: Violation) {
        if let Some(sup) = file.suppressed(v.rule, v.line) {
            self.fired.push(FiredSuppression {
                file: file.rel_path.clone(),
                line: sup.line,
            });
        } else {
            self.violations.push(v);
        }
    }
}

/// Crates whose library code must be panic-free (L001): everything that runs
/// inside the supervised worker or below it.
const PANIC_FREE: &[&str] = &[
    "crates/core/src/",
    "crates/spatial/src/",
    "crates/storage/src/",
    "crates/obs/src/",
];

/// Crates whose library code may not use bare integer `as` casts (L003):
/// the id-space arithmetic (cells, places, units) lives here.
const CAST_CHECKED: &[&str] = &["crates/core/src/", "crates/spatial/src/"];

fn in_scope(file: &SourceFile, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| file.rel_path.starts_with(p))
}

/// Methods whose call panics (L001).
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that panic (L001). `assert!` family is deliberately excluded:
/// asserting a broken invariant *should* trip the supervisor.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// L001: panic-free library code.
pub fn check_panics(file: &SourceFile, sink: &mut RuleSink) {
    if !in_scope(file, PANIC_FREE) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        if PANICKY_METHODS.contains(&name)
            && next == Some("(")
            && matches!(prev, Some(".") | Some("::"))
        {
            sink.push(
                file,
                Violation {
                    rule: "L001",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`.{name}()` in non-test library code: return a typed error, use a \
                         non-panicking fallback, or justify with \
                         `// ctup-lint: allow(L001, why)`"
                    ),
                },
            );
        }
        if PANICKY_MACROS.contains(&name) && next == Some("!") {
            sink.push(
                file,
                Violation {
                    rule: "L001",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`{name}!` in non-test library code: panics belong behind the \
                         supervisor boundary, not inside it"
                    ),
                },
            );
        }
    }
}

/// Tokens that terminate an operand scan for L002 when seen at depth 0.
const OPERAND_STOPS: &[&str] = &[
    ",",
    ";",
    "{",
    "}",
    "&&",
    "||",
    "=",
    "==",
    "!=",
    "<",
    ">",
    "<=",
    ">=",
    "=>",
    "->",
    "return",
    "if",
    "while",
    "match",
    "let",
    "else",
    "assert",
    "debug_assert",
    "?",
];

/// Collects the operand tokens on one side of a comparison operator.
/// `dir` is -1 (left) or +1 (right).
fn operand(file: &SourceFile, op_idx: usize, dir: isize) -> Vec<&crate::lexer::Token> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut i = op_idx as isize + dir;
    while i >= 0 && (i as usize) < toks.len() {
        let t = &toks[i as usize];
        let text = t.text.as_str();
        let (open, close) = if dir < 0 { (")", "(") } else { ("(", ")") };
        let (open2, close2) = if dir < 0 { ("]", "[") } else { ("[", "]") };
        if text == open || text == open2 {
            depth += 1;
        } else if text == close || text == close2 {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && OPERAND_STOPS.contains(&text) {
            break;
        }
        out.push(t);
        i += dir;
    }
    out
}

/// Idents that mark an operand as floating-point for L002.
fn float_marker(t: &crate::lexer::Token) -> bool {
    t.kind == TokenKind::Float
        || (t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "f32" | "f64" | "INFINITY" | "NEG_INFINITY" | "NAN" | "EPSILON"
            ))
}

/// L002: no float equality. Applies to non-test library code everywhere —
/// exact float comparison is wrong in every crate, not just the hot path.
pub fn check_float_eq(file: &SourceFile, sink: &mut RuleSink) {
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") || file.in_test(i) {
            continue;
        }
        let lhs = operand(file, i, -1);
        let rhs = operand(file, i, 1);
        if lhs.iter().any(|t| float_marker(t)) || rhs.iter().any(|t| float_marker(t)) {
            sink.push(
                file,
                Violation {
                    rule: "L002",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` on a floating-point expression: use an epsilon comparison or \
                         is_infinite()/is_nan()",
                        t.text
                    ),
                },
            );
        }
    }
}

/// Integer target types for L003.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// L003: no bare integer `as` casts in the id-space crates. Casts to floats
/// round rather than truncate and are allowed; integer casts silently wrap.
pub fn check_casts(file: &SourceFile, sink: &mut RuleSink) {
    if !in_scope(file, CAST_CHECKED) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "as" || file.in_test(i) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.kind == TokenKind::Ident && INT_TYPES.contains(&next.text.as_str()) {
            sink.push(
                file,
                Violation {
                    rule: "L003",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "bare `as {}` cast: use try_from or a checked id-space helper \
                         (silent wrap-around corrupts cell/place/unit ids)",
                        next.text
                    ),
                },
            );
        }
    }
}

/// Extracts the field names of `struct name {{ … }}` from a lexed file.
/// Returns `None` when the struct is not found or has no brace body.
pub fn struct_fields(file: &SourceFile, name: &str) -> Option<Vec<(String, usize)>> {
    let toks = &file.tokens;
    let start = toks.windows(2).position(|w| {
        w[0].kind == TokenKind::Ident
            && w[0].text == "struct"
            && w[1].kind == TokenKind::Ident
            && w[1].text == name
    })?;
    // Find the opening brace (skip generics/where clauses — none here, but a
    // paren would mean a tuple struct, which has no named fields).
    let mut i = start + 2;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => break,
            ";" | "(" => return None,
            _ => i += 1,
        }
    }
    if i >= toks.len() {
        return None;
    }
    let mut fields = Vec::new();
    let mut depth = 0isize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                // A field name is an ident directly followed by `:` at body
                // depth, not preceded by `:` (path segments live deeper
                // anyway) — struct bodies at depth 1 only contain
                // `attr* vis? name : type ,` sequences.
                if depth == 1
                    && t.kind == TokenKind::Ident
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                    && i.checked_sub(1)
                        .map(|p| toks[p].text != ":" && toks[p].text != "::")
                        .unwrap_or(true)
                {
                    fields.push((t.text.clone(), t.line));
                }
            }
        }
        i += 1;
    }
    Some(fields)
}

/// Configuration of the L004 metrics-coverage rule.
#[derive(Debug, Clone)]
pub struct MetricsCoverage {
    /// File defining the structs, relative to root.
    pub struct_file: String,
    /// Struct names whose fields must all be reported.
    pub structs: Vec<String>,
    /// Files that together must mention every field.
    pub report_files: Vec<String>,
}

impl MetricsCoverage {
    /// The real repo's configuration.
    pub fn default_config() -> Vec<MetricsCoverage> {
        vec![
            MetricsCoverage {
                struct_file: "crates/core/src/metrics.rs".into(),
                structs: vec!["Metrics".into(), "ResilienceStats".into()],
                report_files: vec!["crates/cli/src/commands.rs".into()],
            },
            MetricsCoverage {
                struct_file: "crates/storage/src/stats.rs".into(),
                structs: vec!["StorageStatsSnapshot".into()],
                report_files: vec!["crates/cli/src/commands.rs".into()],
            },
            // The unified snapshot renderer must also expose every storage
            // counter (cache hits/misses/evictions included), so a field
            // added to the snapshot cannot silently drop out of `ctup
            // report` even while the chaos printout still mentions it.
            MetricsCoverage {
                struct_file: "crates/storage/src/stats.rs".into(),
                structs: vec!["StorageStatsSnapshot".into()],
                report_files: vec!["crates/core/src/report.rs".into()],
            },
            MetricsCoverage {
                struct_file: "crates/obs/src/latency.rs".into(),
                structs: vec!["LatencySnapshot".into()],
                report_files: vec!["crates/cli/src/commands.rs".into()],
            },
            // The networked front door's counters must survive both exits:
            // the Prometheus rendering (`Snapshot::with_net`) and the
            // human-readable `ctup serve` shutdown report. Two entries so a
            // field dropped from either surface is caught independently.
            MetricsCoverage {
                struct_file: "crates/core/src/net/stats.rs".into(),
                structs: vec!["NetStatsSnapshot".into()],
                report_files: vec!["crates/core/src/report.rs".into()],
            },
            MetricsCoverage {
                struct_file: "crates/core/src/net/stats.rs".into(),
                structs: vec!["NetStatsSnapshot".into()],
                report_files: vec!["crates/cli/src/commands.rs".into()],
            },
            // The span layer's own health counters (dropped spans, sampled
            // traces, exemplars) must reach both renderers the same way —
            // a tracing layer that can lose data invisibly is worse than
            // none.
            MetricsCoverage {
                struct_file: "crates/obs/src/span.rs".into(),
                structs: vec!["SpanCounters".into()],
                report_files: vec!["crates/core/src/report.rs".into()],
            },
            MetricsCoverage {
                struct_file: "crates/obs/src/span.rs".into(),
                structs: vec!["SpanCounters".into()],
                report_files: vec!["crates/cli/src/commands.rs".into()],
            },
        ]
    }
}

/// L004: metrics coverage. `files` is the full parsed workspace keyed by
/// relative path; violations are reported against the struct definition.
pub fn check_metrics_coverage(
    cfg: &MetricsCoverage,
    lookup: &dyn Fn(&str) -> Option<std::rc::Rc<SourceFile>>,
    sink: &mut RuleSink,
) {
    let Some(def) = lookup(&cfg.struct_file) else {
        sink.violations.push(Violation {
            rule: "L004",
            file: cfg.struct_file.clone(),
            line: 1,
            message: "metrics struct file not found".into(),
        });
        return;
    };
    let mut reported: std::collections::HashSet<String> = std::collections::HashSet::new();
    for rf in &cfg.report_files {
        let Some(f) = lookup(rf) else {
            sink.violations.push(Violation {
                rule: "L004",
                file: rf.clone(),
                line: 1,
                message: "metrics report file not found".into(),
            });
            continue;
        };
        for t in &f.tokens {
            if t.kind == TokenKind::Ident {
                reported.insert(t.text.clone());
            }
        }
    }
    for name in &cfg.structs {
        let Some(fields) = struct_fields(&def, name) else {
            sink.violations.push(Violation {
                rule: "L004",
                file: cfg.struct_file.clone(),
                line: 1,
                message: format!("struct `{name}` not found in {}", cfg.struct_file),
            });
            continue;
        };
        for (field, line) in fields {
            if !reported.contains(&field) {
                sink.push(
                    &def,
                    Violation {
                        rule: "L004",
                        file: cfg.struct_file.clone(),
                        line,
                        message: format!(
                            "field `{field}` of `{name}` is collected but never reported \
                             (expected in {})",
                            cfg.report_files.join(", ")
                        ),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_file(path: &str, src: &str) -> RuleSink {
        let f = SourceFile::parse(path, src);
        let mut sink = RuleSink::default();
        check_panics(&f, &mut sink);
        check_float_eq(&f, &mut sink);
        check_casts(&f, &mut sink);
        sink
    }

    #[test]
    fn l001_flags_unwrap_and_macros_outside_tests() {
        let sink = run_file(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }\n\
             #[cfg(test)] mod t { fn g() { c.unwrap(); panic!(); } }",
        );
        let l001: Vec<_> = sink
            .violations
            .iter()
            .filter(|v| v.rule == "L001")
            .collect();
        assert_eq!(l001.len(), 4);
    }

    #[test]
    fn l001_ignores_unwrap_or_and_out_of_scope_files() {
        let sink = run_file(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }",
        );
        assert!(sink.violations.is_empty());
        let sink = run_file("crates/cli/src/x.rs", "fn f() { a.unwrap(); }");
        assert!(sink.violations.is_empty());
    }

    #[test]
    fn l002_flags_float_comparisons() {
        let sink = run_file(
            "crates/mogen/src/x.rs",
            "fn f(lb: f64) { if lb == f64::INFINITY {} if x != 0.5 {} if n == 3 {} }",
        );
        let l002: Vec<_> = sink
            .violations
            .iter()
            .filter(|v| v.rule == "L002")
            .collect();
        assert_eq!(l002.len(), 2);
    }

    #[test]
    fn l002_ignores_integer_comparisons_and_strings() {
        let sink = run_file(
            "crates/core/src/x.rs",
            "fn f() { if a == b {} if s == \"1.5\" {} if n != 3 {} }",
        );
        assert!(sink.violations.is_empty());
    }

    #[test]
    fn l003_flags_integer_casts_not_float_casts() {
        let sink = run_file(
            "crates/spatial/src/x.rs",
            "fn f(i: usize) { let a = i as u32; let b = i as f64; let c = x as usize; }",
        );
        let l003: Vec<_> = sink
            .violations
            .iter()
            .filter(|v| v.rule == "L003")
            .collect();
        assert_eq!(l003.len(), 2);
    }

    #[test]
    fn l003_out_of_scope_in_storage() {
        let sink = run_file("crates/storage/src/x.rs", "fn f(i: usize) { i as u32; }");
        assert!(sink.violations.iter().all(|v| v.rule != "L003"));
    }

    #[test]
    fn suppression_fires_and_is_recorded() {
        let sink = run_file(
            "crates/core/src/x.rs",
            "fn f() {\n    // ctup-lint: allow(L001, poisoned lock is unrecoverable)\n    a.lock().unwrap();\n}",
        );
        assert!(sink.violations.is_empty());
        assert_eq!(sink.fired.len(), 1);
        assert_eq!(sink.fired[0].line, 2);
    }

    #[test]
    fn struct_field_extraction() {
        let f = SourceFile::parse(
            "crates/core/src/metrics.rs",
            "pub struct Metrics { pub a: u64, #[serde(skip)] pub b_two: Inner, c: Vec<(u32, u8)> }",
        );
        let fields = struct_fields(&f, "Metrics").unwrap();
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b_two", "c"]);
    }
}
