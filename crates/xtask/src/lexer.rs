//! A minimal Rust lexer — just enough structure for the lint rules.
//!
//! The workspace bans external dependencies in the linter (it must build
//! standalone, offline), so instead of `syn` we tokenize by hand. The rules
//! only need token kinds, token text and line numbers; they never need a
//! full syntax tree. Comments are captured separately so suppression
//! directives (`// ctup-lint: allow(...)`) can be recovered.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    Int,
    /// Floating-point literal (`1.0`, `1e3`, `2f64`, …).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Punctuation; multi-character operators are a single token (`==`,
    /// `!=`, `::`, `..`, `->`, …).
    Punct,
}

/// One token with its text and 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's source text.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A `//` comment with its 1-based line (block comments are discarded —
/// suppressions are line comments by definition).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-based line of the comment.
    pub line: usize,
}

/// Output of [`lex`]: the token stream plus all line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All line comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching works.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(offset)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn advance(&mut self, n_bytes: usize) {
        let end = (self.pos + n_bytes).min(self.bytes.len());
        for &b in &self.bytes[self.pos..end] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos = end;
    }
}

/// Tokenizes `src`. Unterminated constructs (strings, block comments) are
/// tolerated: lexing always reaches the end of input — a linter must not
/// give up on a file humans are still editing.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    'outer: while let Some(c) = cur.peek() {
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Line comments (covers `///` and `//!` doc comments too).
        if cur.starts_with("//") {
            let line = cur.line;
            let start = cur.pos;
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            out.comments.push(Comment {
                text: src[start..cur.pos].to_string(),
                line,
            });
            continue;
        }

        // Block comments, which nest in Rust.
        if cur.starts_with("/*") {
            cur.advance(2);
            let mut depth = 1usize;
            while depth > 0 {
                if cur.starts_with("/*") {
                    cur.advance(2);
                    depth += 1;
                } else if cur.starts_with("*/") {
                    cur.advance(2);
                    depth -= 1;
                } else if cur.bump().is_none() {
                    break;
                }
            }
            continue;
        }

        let line = cur.line;
        let start = cur.pos;

        // Raw / byte / c-string prefixes. An identifier immediately followed
        // by a quote (or `#"` for raw strings) is a string prefix.
        if is_ident_start(c) {
            // Look ahead: consume the would-be identifier without committing.
            let mut end = cur.pos;
            for ch in src[cur.pos..].chars() {
                if is_ident_continue(ch) {
                    end += ch.len_utf8();
                } else {
                    break;
                }
            }
            let ident = &src[cur.pos..end];
            let after = src[end..].chars().next();
            let is_string_prefix = matches!(ident, "r" | "b" | "br" | "rb" | "c" | "cr")
                && matches!(after, Some('"') | Some('#'));
            let is_byte_char = ident == "b" && after == Some('\'');
            if is_string_prefix && consume_maybe_raw_string(&mut cur, end) {
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: src[start..cur.pos].to_string(),
                    line,
                });
                continue;
            }
            if is_byte_char {
                cur.advance(end - cur.pos); // the `b`; cursor now at `'`
                consume_char_literal(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: src[start..cur.pos].to_string(),
                    line,
                });
                continue;
            }
            // Plain identifier / keyword.
            cur.advance(end - cur.pos);
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident.to_string(),
                line,
            });
            continue;
        }

        // Ordinary string literal.
        if c == '"' {
            cur.bump();
            consume_until_quote(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: src[start..cur.pos].to_string(),
                line,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            // `'\…'` and `'x'` are char literals; `'ident` is a lifetime.
            let next = cur.peek_at(1);
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_continue(n) => cur.peek_at(2) == Some('\''),
                Some(_) => true, // e.g. '(' — only valid as a char literal
                None => true,
            };
            if is_char {
                consume_char_literal(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: src[start..cur.pos].to_string(),
                    line,
                });
            } else {
                cur.bump();
                while let Some(n) = cur.peek() {
                    if is_ident_continue(n) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: src[start..cur.pos].to_string(),
                    line,
                });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let kind = consume_number(&mut cur);
            out.tokens.push(Token {
                kind,
                text: src[start..cur.pos].to_string(),
                line,
            });
            continue;
        }

        // Multi-character operators, longest match first.
        for op in OPERATORS {
            if cur.starts_with(op) {
                cur.advance(op.len());
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                continue 'outer;
            }
        }

        // Single punctuation character.
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
    }

    out
}

/// Consumes a (raw) string starting at the prefix end `ident_end`; returns
/// false if it turned out not to be a string (leaves the cursor untouched).
fn consume_maybe_raw_string(cur: &mut Cursor<'_>, ident_end: usize) -> bool {
    let rest = &cur.src[ident_end..];
    let hashes = rest.chars().take_while(|&c| c == '#').count();
    let after_hashes = &rest[hashes..];
    if !after_hashes.starts_with('"') {
        return false;
    }
    // prefix + hashes + opening quote
    cur.advance(ident_end - cur.pos + hashes + 1);
    if hashes == 0 && !cur.src[..ident_end].ends_with('r') {
        // b"…" / c"…": escapes are honoured.
        consume_until_quote(cur, '"');
        return true;
    }
    // Raw string: ends at `"` followed by the same number of hashes; when the
    // prefix had no hashes (r"…"), a bare quote ends it and escapes are inert.
    let closer = format!("\"{}", "#".repeat(hashes));
    while cur.pos < cur.src.len() {
        if cur.starts_with(&closer) {
            cur.advance(closer.len());
            return true;
        }
        cur.bump();
    }
    true
}

/// Consumes up to and including an unescaped closing quote.
fn consume_until_quote(cur: &mut Cursor<'_>, quote: char) {
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == quote {
            break;
        }
    }
}

/// Consumes a whole char literal with the cursor positioned on the opening
/// `'`; handles escapes (including multi-character ones like `'\u{41}'`).
fn consume_char_literal(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    consume_until_quote(cur, '\'');
}

/// Consumes a numeric literal; decides int vs float.
fn consume_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        cur.advance(2);
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                cur.bump();
            } else {
                break;
            }
        }
        return TokenKind::Int;
    }
    let mut float = false;
    consume_digits(cur);
    // Fractional part: `.` not followed by another `.` (range) or an
    // identifier start (method call / tuple-index chain like `1.max(2)`).
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            Some('.') => {}
            Some(c) if is_ident_start(c) => {}
            _ => {
                float = true;
                cur.bump();
                consume_digits(cur);
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let (sign_ofs, digit) = match cur.peek_at(1) {
            Some('+') | Some('-') => (1, cur.peek_at(2)),
            other => (0, other),
        };
        if digit.is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump();
            if sign_ofs == 1 {
                cur.bump();
            }
            consume_digits(cur);
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let suffix_start = cur.pos;
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            cur.bump();
        } else {
            break;
        }
    }
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix.starts_with('f') {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

fn consume_digits(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("a.b == c::d != e");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", ".", "b", "==", "c", "::", "d", "!=", "e"]);
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1E-9")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("17")[0].0, TokenKind::Int);
        assert_eq!(kinds("0x1f")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000")[0].0, TokenKind::Int);
        // `0..n` is two ints around a range operator.
        let toks = kinds("0..n");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1].1, "..");
        // `1.max(2)` is an int, not a float.
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        assert_eq!(kinds(r#""a == b""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r##"r#"raw "inner" text"#"##)[0].0, TokenKind::Str);
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
        assert_eq!(kinds("'x'")[0].0, TokenKind::Char);
        assert_eq!(kinds(r"'\n'")[0].0, TokenKind::Char);
        assert_eq!(kinds("b'q'")[0].0, TokenKind::Char);
        assert_eq!(kinds("&'a str")[1].0, TokenKind::Lifetime);
        assert_eq!(kinds("'static")[0].0, TokenKind::Lifetime);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("a // ctup-lint: allow(L001, test)\nb /* x == y */ c");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("ctup-lint"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
    }

    #[test]
    fn line_numbers() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn operator_inside_string_is_not_a_token() {
        let lexed = lex(r#"let s = "x == y"; s"#);
        assert!(!lexed.tokens.iter().any(|t| t.text == "=="));
    }

    #[test]
    fn unterminated_string_reaches_eof() {
        let lexed = lex("let s = \"never closed\nmore");
        assert!(!lexed.tokens.is_empty());
    }
}
