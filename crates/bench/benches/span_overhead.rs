//! Microbenchmarks of the causal span layer (DESIGN.md §17). Tracing is
//! armed on every report when `--span-dump` is set, so the hot-path cost
//! of minting ids and recording stage spans must stay in the low tens of
//! nanoseconds — these benches price exactly that, plus the snapshot
//! merge the dump path pays once at shutdown.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, Criterion};
use ctup_obs::{mint_trace, now_nanos, sample_trace, span_id, SpanSink, Stage};

fn bench_ids(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_ids");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut seq = 0u64;
    group.bench_function("mint_trace", |b| {
        b.iter(|| {
            seq = seq.wrapping_add(1);
            criterion::black_box(mint_trace(0xA1, seq))
        })
    });
    group.bench_function("sample_trace_1_in_8", |b| {
        b.iter(|| {
            seq = seq.wrapping_add(1);
            criterion::black_box(sample_trace(0xA1, seq, 8))
        })
    });
    group.bench_function("span_id", |b| {
        b.iter(|| {
            seq = seq.wrapping_add(1);
            criterion::black_box(span_id(seq, Stage::EngineApply, 3))
        })
    });
    group.finish();
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_record");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // The serve path: one sink shared by client, door and engine.
    let sink = SpanSink::new(65_536);
    let mut seq = 0u64;
    group.bench_function("record_stage", |b| {
        b.iter(|| {
            seq = seq.wrapping_add(1);
            let t = now_nanos();
            sink.record_stage(
                mint_trace(0xA1, seq),
                Stage::EngineApply,
                0,
                t,
                t + 100,
                true,
            );
        })
    });

    // Contended recording: the sink's per-thread rings mean writers
    // should scale, not serialize.
    group.bench_function("record_stage_4_threads_x1k", |b| {
        b.iter(|| {
            let sink = Arc::new(SpanSink::new(65_536));
            let handles: Vec<_> = (0..4u64)
                .map(|tid| {
                    let sink = Arc::clone(&sink);
                    thread::spawn(move || {
                        for i in 0..1_000u64 {
                            let t = now_nanos();
                            sink.record_stage(
                                mint_trace(tid, i + 1),
                                Stage::ShardPhase,
                                tid as u32,
                                t,
                                t + 50,
                                false,
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            criterion::black_box(sink.dropped())
        })
    });

    // The shutdown path: merge all rings into one ordered snapshot.
    let full = SpanSink::new(65_536);
    for i in 1..=60_000u64 {
        let t = now_nanos();
        full.record_stage(mint_trace(0xB2, i), Stage::QueueWait, 0, t, t + 10, true);
    }
    group.bench_function("snapshot_60k", |b| {
        b.iter(|| criterion::black_box(full.snapshot().spans.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_ids, bench_record);
criterion_main!(benches);
