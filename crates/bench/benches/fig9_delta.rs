//! Fig. 9 — OptCTUP update cost varying Δ. Criterion measures the total;
//! the maintain/access split of the figure comes from the `reproduce`
//! binary, which reads the per-phase timers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctup_bench::{build_setup, AlgKind, SetupParams};
use ctup_core::config::CtupConfig;

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_delta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for delta in [0i64, 2, 4, 6, 8, 10, 12] {
        let params = SetupParams {
            config: CtupConfig {
                delta,
                ..CtupConfig::paper_default()
            },
            ..SetupParams::default()
        };
        let mut setup = build_setup(params);
        let updates = setup.next_updates(20_000);
        let mut alg = AlgKind::Opt.build(&setup);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("OptCTUP", delta), &delta, |b, _| {
            b.iter(|| {
                let update = updates[i % updates.len()];
                i += 1;
                criterion::black_box(alg.handle_update(update))
                    .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
