//! Fig. 3 — initialization time of the three algorithms at the Table III
//! defaults. The paper's shape: Naive fastest, OptCTUP close, BasicCTUP
//! worst (both grid schemes additionally compute per-cell lower bounds).

use criterion::{criterion_group, criterion_main, Criterion};
use ctup_bench::{build_setup, AlgKind, SetupParams};

fn bench_init(c: &mut Criterion) {
    let setup = build_setup(SetupParams::default());
    let mut group = c.benchmark_group("fig3_init");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [
        AlgKind::Naive,
        AlgKind::NaiveIncremental,
        AlgKind::Basic,
        AlgKind::Opt,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let alg = kind.build(&setup);
                criterion::black_box(alg.result())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init);
criterion_main!(benches);
