//! Fig. 8 — the effect of the Decrease-Once Optimization: OptCTUP with vs
//! without DOO, varying the number of places.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctup_bench::{build_setup, AlgKind, SetupParams};
use ctup_core::config::CtupConfig;

fn bench_doo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_doo");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for num_places in [5_000u32, 10_000, 15_000, 20_000, 25_000] {
        for (label, doo) in [("OptCTUP-DOO", true), ("OptCTUP-noDOO", false)] {
            let params = SetupParams {
                num_places,
                config: CtupConfig {
                    doo_enabled: doo,
                    ..CtupConfig::paper_default()
                },
                ..SetupParams::default()
            };
            let mut setup = build_setup(params);
            let updates = setup.next_updates(20_000);
            let mut alg = AlgKind::Opt.build(&setup);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new(label, num_places), &num_places, |b, _| {
                b.iter(|| {
                    let update = updates[i % updates.len()];
                    i += 1;
                    criterion::black_box(alg.handle_update(update))
                        .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_doo);
criterion_main!(benches);
