//! Fig. 4 — average update cost of the three algorithms at the Table III
//! defaults. The paper's shape (log scale): OptCTUP wins by a large
//! margin; BasicCTUP beats Naive but stays far above OptCTUP.

use criterion::{criterion_group, criterion_main, Criterion};
use ctup_bench::{build_setup, AlgKind, SetupParams};

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_update");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [
        AlgKind::Naive,
        AlgKind::NaiveIncremental,
        AlgKind::Basic,
        AlgKind::Opt,
    ] {
        let mut setup = build_setup(SetupParams::default());
        let updates = setup.next_updates(20_000);
        let mut alg = kind.build(&setup);
        let mut i = 0usize;
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let update = updates[i % updates.len()];
                i += 1;
                criterion::black_box(alg.handle_update(update))
                    .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
