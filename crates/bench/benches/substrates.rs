//! Microbenchmarks of the substrates (not in the paper, but useful to
//! understand where the schemes' time goes): R-tree queries, unit-index
//! probes, grid classification, and the paged-disk codec.

use criterion::{criterion_group, criterion_main, Criterion};
use ctup_mogen::{PlaceGenConfig, PlaceGenerator};
use ctup_spatial::{Circle, Grid, Point, RTree, Rect, Relation, UnitGridIndex};
use ctup_storage::{CellLocalStore, PagedDiskStore, PlaceStore};

fn bench_rtree(c: &mut Criterion) {
    let places = PlaceGenerator::new(PlaceGenConfig {
        count: 15_000,
        ..Default::default()
    })
    .generate(7);
    let items: Vec<(Rect, u32)> = places
        .iter()
        .map(|p| (Rect::point(p.pos), p.id.0))
        .collect();
    let tree = RTree::bulk_load(items.clone());

    let mut group = c.benchmark_group("substrate_rtree");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("bulk_load_15k", |b| {
        b.iter(|| criterion::black_box(RTree::bulk_load(items.clone())))
    });
    let mut i = 0u32;
    group.bench_function("range_query", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let x = (i % 100) as f64 / 100.0;
            let q = Rect::from_coords(x * 0.8, 0.2, x * 0.8 + 0.1, 0.3);
            criterion::black_box(tree.query_rect(&q).len())
        })
    });
    group.bench_function("k_nearest_10", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let q = Point::new((i % 97) as f64 / 97.0, (i % 89) as f64 / 89.0);
            criterion::black_box(tree.k_nearest(q, 10).len())
        })
    });
    group.finish();
}

fn bench_unit_index(c: &mut Criterion) {
    let mut index = UnitGridIndex::new(Grid::unit_square(10));
    for i in 0..150u32 {
        index.insert(
            i,
            Point::new((i % 13) as f64 / 13.0, (i % 11) as f64 / 11.0),
        );
    }
    let mut group = c.benchmark_group("substrate_unit_index");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut i = 0u32;
    group.bench_function("count_within_r01", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let q = Circle::new(Point::new((i % 101) as f64 / 101.0, 0.5), 0.1);
            criterion::black_box(index.count_within(&q))
        })
    });
    group.bench_function("relocate", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let id = i % 150;
            let old = Point::new((id % 13) as f64 / 13.0, (id % 11) as f64 / 11.0);
            index.relocate(id, old, Point::new(0.99, 0.99));
            index.relocate(id, Point::new(0.99, 0.99), old);
        })
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let grid = Grid::unit_square(10);
    let mut group = c.benchmark_group("substrate_classify");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut i = 0u32;
    group.bench_function("relation_per_touched_cell", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let center = Point::new((i % 103) as f64 / 103.0, (i % 97) as f64 / 97.0);
            let region = Circle::new(center, 0.1);
            let mut acc = 0u32;
            for cell in grid.cells_overlapping_circle(&region) {
                if Relation::classify(&region, &grid.cell_rect(cell)) == Relation::Partial {
                    acc += 1;
                }
            }
            criterion::black_box(acc)
        })
    });
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let places = PlaceGenerator::new(PlaceGenConfig {
        count: 15_000,
        ..Default::default()
    })
    .generate(9);
    let mem = CellLocalStore::build(Grid::unit_square(10), places.clone());
    let disk = PagedDiskStore::build(Grid::unit_square(10), places, 0);
    let mut group = c.benchmark_group("substrate_storage");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut i = 0u32;
    group.bench_function("memstore_read_cell", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            criterion::black_box(
                mem.read_cell(ctup_spatial::CellId(i % 100))
                    .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
                    .len(),
            )
        })
    });
    group.bench_function("diskstore_read_cell_decode", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            criterion::black_box(
                disk.read_cell(ctup_spatial::CellId(i % 100))
                    .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rtree,
    bench_unit_index,
    bench_classification,
    bench_storage
);
criterion_main!(benches);
