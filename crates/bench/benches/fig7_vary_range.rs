//! Fig. 7 — update cost of BasicCTUP vs OptCTUP varying the protection
//! range `R`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctup_bench::{build_setup, AlgKind, SetupParams};
use ctup_core::config::CtupConfig;

fn bench_vary_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vary_range");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, radius) in [
        ("005", 0.05f64),
        ("0075", 0.075),
        ("01", 0.1),
        ("015", 0.15),
        ("02", 0.2),
    ] {
        for kind in [AlgKind::Basic, AlgKind::Opt] {
            let params = SetupParams {
                config: CtupConfig {
                    protection_radius: radius,
                    ..CtupConfig::paper_default()
                },
                ..SetupParams::default()
            };
            let mut setup = build_setup(params);
            let updates = setup.next_updates(20_000);
            let mut alg = kind.build(&setup);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new(kind.label(), label), &radius, |b, _| {
                b.iter(|| {
                    let update = updates[i % updates.len()];
                    i += 1;
                    criterion::black_box(alg.handle_update(update))
                        .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_range);
criterion_main!(benches);
