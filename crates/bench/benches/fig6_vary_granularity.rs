//! Fig. 6 — update cost of BasicCTUP vs OptCTUP varying the partition
//! granularity (the grid is `G × G`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctup_bench::{build_setup, AlgKind, SetupParams};

fn bench_vary_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_vary_granularity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for granularity in [4u32, 8, 10, 16, 24, 32] {
        for kind in [AlgKind::Basic, AlgKind::Opt] {
            let params = SetupParams {
                granularity,
                ..SetupParams::default()
            };
            let mut setup = build_setup(params);
            let updates = setup.next_updates(20_000);
            let mut alg = kind.build(&setup);
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), granularity),
                &granularity,
                |b, _| {
                    b.iter(|| {
                        let update = updates[i % updates.len()];
                        i += 1;
                        criterion::black_box(alg.handle_update(update))
                            .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_granularity);
criterion_main!(benches);
