//! Workload construction and measurement plumbing.

use ctup_core::algorithm::CtupAlgorithm;
use ctup_core::cells::touched_cells;
use ctup_core::config::CtupConfig;
use ctup_core::naive::{NaiveIncremental, NaiveRecompute};
use ctup_core::types::{LocationUpdate, UnitId};
use ctup_core::{BasicCtup, OptCtup, ShardedCtup};
use ctup_mogen::{PlaceGenConfig, PositionUpdate, Workload, WorkloadParams};
use ctup_obs::LatencySnapshot;
use ctup_spatial::{CellLayout, Circle, Grid, Point};
use ctup_storage::{CachedStore, CellLocalStore, PagedDiskStore, PlaceStore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The experiment knobs (Table III parameters plus stream length).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetupParams {
    /// Number of protecting units.
    pub num_units: u32,
    /// Number of places.
    pub num_places: u32,
    /// Partition granularity (grid is `granularity × granularity`).
    pub granularity: u32,
    /// CTUP configuration (k, R, Δ, DOO).
    pub config: CtupConfig,
    /// Simulation time step between reporting rounds; smaller steps mean
    /// finer-grained location updates (default 1.0).
    pub tick_dt: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SetupParams {
    /// Table III defaults.
    fn default() -> Self {
        SetupParams {
            num_units: 150,
            num_places: 15_000,
            granularity: 10,
            config: CtupConfig::paper_default(),
            tick_dt: 1.0,
            seed: 0xC7,
        }
    }
}

/// A prepared experiment: store, initial units and the update source.
pub struct Setup {
    /// Parameters that produced this setup.
    pub params: SetupParams,
    /// The (shared, memory-backed) lower level.
    pub store: Arc<dyn PlaceStore>,
    /// Initial unit positions.
    pub units: Vec<Point>,
    workload: Workload,
}

impl std::fmt::Debug for Setup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Setup")
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl Setup {
    /// Produces the next `n` location updates of the stream.
    pub fn next_updates(&mut self, n: usize) -> Vec<LocationUpdate> {
        stream(self.workload.next_updates(n))
    }
}

/// Builds a workload + store for `params`.
pub fn build_setup(params: SetupParams) -> Setup {
    let wl_params = WorkloadParams {
        num_units: params.num_units,
        places: PlaceGenConfig {
            count: params.num_places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        tick_dt: params.tick_dt,
        ..WorkloadParams::default()
    };
    let workload = Workload::generate(wl_params);
    let grid = Grid::unit_square(params.granularity);
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(grid, workload.places_vec()));
    let units = workload.unit_positions();
    Setup {
        params,
        store,
        units,
        workload,
    }
}

/// Converts generator updates into server updates.
pub fn stream(updates: Vec<PositionUpdate>) -> Vec<LocationUpdate> {
    updates
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect()
}

/// Which algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgKind {
    /// Recompute-everything baseline.
    Naive,
    /// Maintain-everything baseline.
    NaiveIncremental,
    /// BasicCTUP.
    Basic,
    /// OptCTUP.
    Opt,
}

impl AlgKind {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AlgKind::Naive => "Naive",
            AlgKind::NaiveIncremental => "NaiveInc",
            AlgKind::Basic => "BasicCTUP",
            AlgKind::Opt => "OptCTUP",
        }
    }

    /// Instantiates the algorithm over a prepared setup.
    ///
    /// # Panics
    ///
    /// Panics if the store reports a fault during initialization; benchmark
    /// setups run over clean in-memory stores, so a fault here is a bug in
    /// the harness, not a measurable condition.
    pub fn build(self, setup: &Setup) -> Box<dyn CtupAlgorithm> {
        let config = setup.params.config.clone();
        let store = setup.store.clone();
        let built: Result<Box<dyn CtupAlgorithm>, _> = match self {
            AlgKind::Naive => {
                NaiveRecompute::new(config, store, &setup.units).map(|a| Box::new(a) as _)
            }
            AlgKind::NaiveIncremental => {
                NaiveIncremental::new(config, store, &setup.units).map(|a| Box::new(a) as _)
            }
            AlgKind::Basic => BasicCtup::new(config, store, &setup.units).map(|a| Box::new(a) as _),
            AlgKind::Opt => OptCtup::new(config, store, &setup.units).map(|a| Box::new(a) as _),
        };
        built.unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"))
    }
}

/// Aggregated costs of a measured update run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Updates processed.
    pub updates: u64,
    /// Average wall time per update, in nanoseconds.
    pub avg_update_nanos: f64,
    /// Average time spent maintaining in-memory state, per update.
    pub avg_maintain_nanos: f64,
    /// Average time spent accessing cells, per update.
    pub avg_access_nanos: f64,
    /// Cells accessed per update.
    pub cells_accessed_per_update: f64,
    /// Places loaded per update.
    pub places_loaded_per_update: f64,
    /// Lower-bound decrements applied per update.
    pub lb_decrements_per_update: f64,
    /// Lower-bound decrements suppressed by DOO, per update.
    pub lb_suppressed_per_update: f64,
    /// Maintained places at the end of the run.
    pub maintained_places: u64,
}

/// Feeds `updates` to `alg`, timing the whole run.
///
/// # Panics
///
/// Panics on a storage fault: measurements only make sense over a store
/// that served every read, so a fault invalidates the run.
pub fn measure_updates(alg: &mut dyn CtupAlgorithm, updates: &[LocationUpdate]) -> RunSummary {
    measure_updates_observed(alg, updates).0
}

/// Like [`measure_updates`], but also records every update's phase costs
/// into latency histograms so callers can report full distributions
/// (p50/p90/p99/p999) alongside the averages.
///
/// # Panics
///
/// Panics on a storage fault, for the same reason as [`measure_updates`].
pub fn measure_updates_observed(
    alg: &mut dyn CtupAlgorithm,
    updates: &[LocationUpdate],
) -> (RunSummary, LatencySnapshot) {
    let before = alg.metrics().clone();
    let mut latency = LatencySnapshot::default();
    let start = Instant::now();
    for &update in updates {
        match alg.handle_update(update) {
            Ok(stats) => {
                latency.update_maintain_nanos.record(stats.maintain_nanos);
                latency.update_access_nanos.record(stats.access_nanos);
                latency
                    .update_total_nanos
                    .record(stats.maintain_nanos.saturating_add(stats.access_nanos));
            }
            Err(e) => panic!("benchmark store must be clean: {e}"),
        }
    }
    let wall = start.elapsed().as_nanos() as f64;
    let metrics = alg.metrics().since(&before);
    let n = updates.len().max(1) as f64;
    let summary = RunSummary {
        updates: updates.len() as u64,
        avg_update_nanos: wall / n,
        avg_maintain_nanos: metrics.maintain_nanos as f64 / n,
        avg_access_nanos: metrics.access_nanos as f64 / n,
        cells_accessed_per_update: metrics.cells_accessed as f64 / n,
        places_loaded_per_update: metrics.places_loaded as f64 / n,
        lb_decrements_per_update: metrics.lb_decrements as f64 / n,
        lb_suppressed_per_update: metrics.lb_decrements_suppressed as f64 / n,
        maintained_places: metrics.maintained_now,
    };
    (summary, latency)
}

/// Batch size the scaling experiments feed [`ShardedCtup`] with: large
/// enough that a batch's cell accesses spread across all shards (the
/// engine's design point — the barrier is paid once per batch, and the
/// per-page disk latency is absorbed `N`-wide), small enough that the
/// reported per-update latency is still a fine-grained figure.
pub const SHARD_BATCH: usize = 32;

/// Like [`measure_updates_observed`] but drives the sharded engine
/// through its batched-ingest path in chunks of `batch_size`. Each
/// batch's [`UpdateStats`](ctup_core::algorithm::UpdateStats) carry the
/// critical path (the slowest shard), so the recorded per-update figures
/// are the batch's critical path amortized over its updates — the number
/// that shrinks as shards absorb disk latency in parallel. One sample
/// per update is recorded, keeping histogram counts comparable with the
/// sequential runs.
///
/// # Panics
///
/// Panics on a storage fault, for the same reason as [`measure_updates`].
pub fn measure_batched_observed(
    alg: &mut ShardedCtup,
    updates: &[LocationUpdate],
    batch_size: usize,
) -> (RunSummary, LatencySnapshot) {
    let before = alg.metrics().clone();
    let mut latency = LatencySnapshot::default();
    let start = Instant::now();
    for chunk in updates.chunks(batch_size.max(1)) {
        match alg.handle_batch(chunk.to_vec()) {
            Ok(stats) => {
                let per = chunk.len() as u64;
                let maintain = stats.maintain_nanos / per;
                let access = stats.access_nanos / per;
                for _ in 0..per {
                    latency.update_maintain_nanos.record(maintain);
                    latency.update_access_nanos.record(access);
                    latency
                        .update_total_nanos
                        .record(maintain.saturating_add(access));
                }
            }
            Err(e) => panic!("benchmark store must be clean: {e}"),
        }
    }
    let wall = start.elapsed().as_nanos() as f64;
    let metrics = alg.metrics().since(&before);
    let n = updates.len().max(1) as f64;
    let summary = RunSummary {
        updates: updates.len() as u64,
        avg_update_nanos: wall / n,
        avg_maintain_nanos: metrics.maintain_nanos as f64 / n,
        avg_access_nanos: metrics.access_nanos as f64 / n,
        cells_accessed_per_update: metrics.cells_accessed as f64 / n,
        places_loaded_per_update: metrics.places_loaded as f64 / n,
        lb_decrements_per_update: metrics.lb_decrements as f64 / n,
        lb_suppressed_per_update: metrics.lb_decrements_suppressed as f64 / n,
        maintained_places: metrics.maintained_now,
    };
    (summary, latency)
}

/// Runs every algorithm over the same fresh workload and returns one
/// unified observability snapshot per algorithm.
///
/// Each algorithm gets its own [`build_setup`] (same `params`, same seed)
/// so the storage counters and disk-read histogram it reports are its own
/// rather than an accumulation across competitors.
pub fn snapshot_algorithms(params: &SetupParams, updates: usize) -> Vec<ctup_core::Snapshot> {
    let kinds = [
        AlgKind::Naive,
        AlgKind::NaiveIncremental,
        AlgKind::Basic,
        AlgKind::Opt,
    ];
    kinds
        .iter()
        .map(|kind| {
            let mut setup = build_setup(params.clone());
            let stream = setup.next_updates(updates);
            let mut alg = kind.build(&setup);
            let (_, mut latency) = measure_updates_observed(alg.as_mut(), &stream);
            latency
                .disk_read_nanos
                .merge(&setup.store.stats().read_latency());
            ctup_core::Snapshot::new(
                kind.label(),
                alg.metrics().clone(),
                setup.store.stats().snapshot(),
                latency,
            )
        })
        .collect()
}

/// One sharded-engine configuration of the scaling experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Worker shards.
    pub shards: u32,
    /// Cell-read cache budget in pages (0 disables the cache).
    pub cache_pages: u64,
}

impl ShardConfig {
    /// Snapshot label, e.g. `Sharded-4x-cache512` / `Sharded-1x-nocache`.
    pub fn label(&self) -> String {
        if self.cache_pages == 0 {
            format!("Sharded-{}x-nocache", self.shards)
        } else {
            format!("Sharded-{}x-cache{}", self.shards, self.cache_pages)
        }
    }
}

/// The shard-scaling matrix BENCH_PR5.json records: 1/2/4/8 shards, each
/// with the cell-read cache off and on (512 pages holds the whole default
/// 10×10 grid with room to spare).
pub fn shard_scaling_matrix() -> Vec<ShardConfig> {
    let mut configs = Vec::new();
    for shards in [1u32, 2, 4, 8] {
        for cache_pages in [0u64, 512] {
            configs.push(ShardConfig {
                shards,
                cache_pages,
            });
        }
    }
    configs
}

/// One cell of the layout matrix: physical cell layout × worker shards ×
/// cell-read cache budget.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// Physical cell layout (shard ranges + disk page order).
    pub layout: CellLayout,
    /// Worker shards.
    pub shards: u32,
    /// Cell-read cache budget in pages (0 disables the cache).
    pub cache_pages: u64,
}

impl LayoutConfig {
    /// Snapshot label, e.g. `zorder-4x-cache512` / `rowmajor-1x-nocache`.
    pub fn label(&self) -> String {
        if self.cache_pages == 0 {
            format!("{}-{}x-nocache", self.layout, self.shards)
        } else {
            format!("{}-{}x-cache{}", self.layout, self.shards, self.cache_pages)
        }
    }
}

/// The layout matrix BENCH_PR10.json records: 1/2/4/8 shards × row-major
/// vs Z-order × cache off/on, all over the same 20us/page simulated disk.
/// Unlike the shard-scaling matrix's 512 pages (which holds the whole
/// ~113-page default disk, making every cached run read each page exactly
/// once), the cache budget here is 64 pages — real eviction pressure, so
/// the Z-order engine's batched working-set hint has evictions to fight.
pub fn layout_matrix() -> Vec<LayoutConfig> {
    let mut configs = Vec::new();
    for &layout in &CellLayout::ALL {
        for shards in [1u32, 2, 4, 8] {
            for cache_pages in [0u64, 64] {
                configs.push(LayoutConfig {
                    layout,
                    shards,
                    cache_pages,
                });
            }
        }
    }
    configs
}

/// One measured layout-matrix run: the unified snapshot plus the
/// layout-specific locality figures the snapshot cannot carry.
#[derive(Debug)]
pub struct LayoutRun {
    /// The configuration that produced this run.
    pub config: LayoutConfig,
    /// Distinct shards whose cell ranges each update's touched-cell set
    /// (old circle ∪ new circle) overlaps, averaged over the stream —
    /// the cross-shard fan-out the Z-order ranges are meant to shrink.
    pub fanout_per_update: f64,
    /// Batches whose merge the coordinator skipped because no shard's
    /// local top-k changed.
    pub merge_skips: u64,
    /// The unified observability snapshot (lower-level disk counters).
    pub snapshot: ctup_core::Snapshot,
}

/// Runs the sharded engine over the Table III workload on a simulated
/// paged disk for every layout-matrix config, returning one [`LayoutRun`]
/// per config. Mirrors [`snapshot_sharded`], with three differences: the
/// disk is packed in the config's layout, the shard map is carved from
/// the same layout, and the deterministic cross-shard fan-out of the
/// stream is measured against that shard map before the engine runs.
///
/// # Panics
///
/// Panics if the store reports a fault: the benchmark disk is clean, so a
/// fault is a harness bug, not a measurable condition.
pub fn run_layout_matrix(
    params: &SetupParams,
    updates: usize,
    page_latency_nanos: u64,
    batch_size: usize,
    configs: &[LayoutConfig],
) -> Vec<LayoutRun> {
    configs
        .iter()
        .map(|cfg| {
            let wl_params = WorkloadParams {
                num_units: params.num_units,
                places: PlaceGenConfig {
                    count: params.num_places,
                    ..PlaceGenConfig::default()
                },
                seed: params.seed,
                tick_dt: params.tick_dt,
                ..WorkloadParams::default()
            };
            let mut workload = Workload::generate(wl_params);
            let grid = Grid::unit_square(params.granularity);
            let base: Arc<dyn PlaceStore> = Arc::new(PagedDiskStore::build_with_layout(
                grid.clone(),
                workload.places_vec(),
                page_latency_nanos,
                cfg.layout,
            ));
            let store: Arc<dyn PlaceStore> = if cfg.cache_pages == 0 {
                base.clone()
            } else {
                Arc::new(CachedStore::new(base.clone(), cfg.cache_pages))
            };
            let units = workload.unit_positions();
            let mut alg = ShardedCtup::new_with_layout(
                params.config.clone(),
                store,
                &units,
                cfg.shards,
                cfg.layout,
            )
            .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"));
            let batch = stream(workload.next_updates(updates));

            // The fan-out is a pure function of the stream and the shard
            // map, so it is measured in its own pass over a position
            // mirror — the engine run below is left untimed by it.
            let radius = params.config.protection_radius;
            let map = alg.shard_map().clone();
            let mut positions = units.clone();
            let mut shards_touched_total = 0u64;
            let mut seen = vec![false; cfg.shards as usize];
            for update in &batch {
                let old = positions[update.unit.index()];
                positions[update.unit.index()] = update.new;
                seen.iter_mut().for_each(|s| *s = false);
                for cell in touched_cells(
                    &grid,
                    &Circle::new(old, radius),
                    &Circle::new(update.new, radius),
                ) {
                    let s = map.shard_of(cell) as usize;
                    if !seen[s] {
                        seen[s] = true;
                        shards_touched_total += 1;
                    }
                }
            }
            let fanout_per_update = shards_touched_total as f64 / batch.len().max(1) as f64;

            let (_, mut latency) = measure_batched_observed(&mut alg, &batch, batch_size);
            latency.disk_read_nanos.merge(&base.stats().read_latency());
            LayoutRun {
                config: *cfg,
                fanout_per_update,
                merge_skips: alg.merge_skips(),
                snapshot: ctup_core::Snapshot::new(
                    cfg.label(),
                    alg.metrics().clone(),
                    base.stats().snapshot(),
                    latency,
                ),
            }
        })
        .collect()
}

/// Runs the sharded engine over the Table III workload on a simulated
/// paged disk (`page_latency_nanos` busy-waited per page) for every config,
/// returning one unified snapshot per config.
///
/// Each config gets a fresh workload and store (same seed) so its storage
/// counters — including the cache hit/miss/eviction counters — are its
/// own. Updates are fed through batched ingest in chunks of `batch_size`
/// ([`measure_batched_observed`]), so latency is each batch's critical
/// path (the slowest shard) amortized per update and the histograms
/// shrink as shards absorb the disk latency in parallel; the disk-read
/// histogram is merged in once from the store.
///
/// # Panics
///
/// Panics if the store reports a fault: the benchmark disk is clean, so a
/// fault is a harness bug, not a measurable condition.
pub fn snapshot_sharded(
    params: &SetupParams,
    updates: usize,
    page_latency_nanos: u64,
    batch_size: usize,
    configs: &[ShardConfig],
) -> Vec<ctup_core::Snapshot> {
    configs
        .iter()
        .map(|cfg| {
            let wl_params = WorkloadParams {
                num_units: params.num_units,
                places: PlaceGenConfig {
                    count: params.num_places,
                    ..PlaceGenConfig::default()
                },
                seed: params.seed,
                tick_dt: params.tick_dt,
                ..WorkloadParams::default()
            };
            let mut workload = Workload::generate(wl_params);
            let grid = Grid::unit_square(params.granularity);
            let base: Arc<dyn PlaceStore> = Arc::new(PagedDiskStore::build(
                grid,
                workload.places_vec(),
                page_latency_nanos,
            ));
            let store: Arc<dyn PlaceStore> = if cfg.cache_pages == 0 {
                base.clone()
            } else {
                Arc::new(CachedStore::new(base.clone(), cfg.cache_pages))
            };
            let units = workload.unit_positions();
            let mut alg = ShardedCtup::new(params.config.clone(), store, &units, cfg.shards)
                .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"));
            let batch = stream(workload.next_updates(updates));
            let (_, mut latency) = measure_batched_observed(&mut alg, &batch, batch_size);
            latency.disk_read_nanos.merge(&base.stats().read_latency());
            ctup_core::Snapshot::new(
                cfg.label(),
                alg.metrics().clone(),
                base.stats().snapshot(),
                latency,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_setup_builds_and_streams() {
        let params = SetupParams {
            num_units: 10,
            num_places: 200,
            granularity: 5,
            config: CtupConfig::with_k(3),
            tick_dt: 1.0,
            seed: 1,
        };
        let mut setup = build_setup(params);
        assert_eq!(setup.units.len(), 10);
        assert_eq!(setup.store.num_places(), 200);
        let updates = setup.next_updates(50);
        assert_eq!(updates.len(), 50);
        let mut alg = AlgKind::Opt.build(&setup);
        let summary = measure_updates(alg.as_mut(), &updates);
        assert_eq!(summary.updates, 50);
        assert!(summary.avg_update_nanos > 0.0);
    }

    #[test]
    fn observed_run_fills_latency_histograms() {
        let params = SetupParams {
            num_units: 10,
            num_places: 200,
            granularity: 5,
            config: CtupConfig::with_k(3),
            tick_dt: 1.0,
            seed: 7,
        };
        let mut setup = build_setup(params);
        let updates = setup.next_updates(40);
        let mut alg = AlgKind::Basic.build(&setup);
        let (summary, latency) = measure_updates_observed(alg.as_mut(), &updates);
        assert_eq!(summary.updates, 40);
        assert_eq!(latency.update_total_nanos.count(), 40);
        assert_eq!(latency.update_maintain_nanos.count(), 40);
        assert_eq!(latency.update_access_nanos.count(), 40);
    }

    #[test]
    fn snapshot_algorithms_covers_every_kind() {
        let params = SetupParams {
            num_units: 8,
            num_places: 150,
            granularity: 5,
            config: CtupConfig::with_k(3),
            tick_dt: 1.0,
            seed: 3,
        };
        let snaps = snapshot_algorithms(&params, 30);
        let names: Vec<&str> = snaps.iter().map(|s| s.algorithm.as_str()).collect();
        assert_eq!(names, ["Naive", "NaiveInc", "BasicCTUP", "OptCTUP"]);
        for snap in &snaps {
            assert_eq!(snap.latency.update_total_nanos.count(), 30);
            assert!(snap.metrics.updates_processed >= 30);
            let json = snap.render_json();
            assert!(json.contains("\"p99\""), "{json}");
        }
    }

    #[test]
    fn snapshot_sharded_covers_the_matrix() {
        let params = SetupParams {
            num_units: 8,
            num_places: 150,
            granularity: 5,
            config: CtupConfig::with_k(3),
            tick_dt: 1.0,
            seed: 5,
        };
        let configs = [
            ShardConfig {
                shards: 1,
                cache_pages: 0,
            },
            ShardConfig {
                shards: 2,
                cache_pages: 64,
            },
        ];
        let snaps = snapshot_sharded(&params, 25, 0, 8, &configs);
        let names: Vec<&str> = snaps.iter().map(|s| s.algorithm.as_str()).collect();
        assert_eq!(names, ["Sharded-1x-nocache", "Sharded-2x-cache64"]);
        for snap in &snaps {
            assert_eq!(snap.latency.update_total_nanos.count(), 25);
            assert!(snap.metrics.updates_processed >= 25);
        }
        // The uncached config never consults the cache; the cached one
        // funnels every lower-level read through it.
        assert_eq!(
            snaps[0].storage.cache_hits + snaps[0].storage.cache_misses,
            0
        );
        assert!(snaps[1].storage.cache_hits + snaps[1].storage.cache_misses > 0);
        assert_eq!(snaps[1].storage.cell_reads, snaps[1].storage.cache_misses);
    }

    #[test]
    fn layout_matrix_runs_and_measures_fanout() {
        let params = SetupParams {
            num_units: 8,
            num_places: 150,
            granularity: 5,
            config: CtupConfig::with_k(3),
            tick_dt: 1.0,
            seed: 5,
        };
        let configs = [
            LayoutConfig {
                layout: CellLayout::RowMajor,
                shards: 2,
                cache_pages: 0,
            },
            // A budget well below the 25-cell store, so demand reads keep
            // evicting and the batched working-set hint has real work.
            LayoutConfig {
                layout: CellLayout::ZOrder,
                shards: 2,
                cache_pages: 8,
            },
        ];
        let runs = run_layout_matrix(&params, 120, 0, 8, &configs);
        assert_eq!(runs[0].config.label(), "rowmajor-2x-nocache");
        assert_eq!(runs[1].config.label(), "zorder-2x-cache8");
        for run in &runs {
            // Every update touches at least its own cell, so the fan-out
            // is at least one shard per update.
            assert!(run.fanout_per_update >= 1.0, "{}", run.fanout_per_update);
            assert_eq!(run.snapshot.latency.update_total_nanos.count(), 120);
        }
        // The cached Z-order run funnels reads through the cache and the
        // coordinator hints every batch's touched cells, so demand hits
        // must land on hinted entries.
        assert!(runs[1].snapshot.storage.cache_prefetch_hits > 0);
        assert_eq!(runs[0].snapshot.storage.cache_prefetch_hits, 0);
    }

    #[test]
    fn all_algorithms_agree_on_small_workload() {
        let params = SetupParams {
            num_units: 8,
            num_places: 150,
            granularity: 6,
            config: CtupConfig::with_k(5),
            tick_dt: 1.0,
            seed: 42,
        };
        let mut setup = build_setup(params);
        let updates = setup.next_updates(100);
        let mut algs: Vec<Box<dyn CtupAlgorithm>> = vec![
            AlgKind::Naive.build(&setup),
            AlgKind::NaiveIncremental.build(&setup),
            AlgKind::Basic.build(&setup),
            AlgKind::Opt.build(&setup),
        ];
        for &update in &updates {
            for alg in algs.iter_mut() {
                alg.handle_update(update).expect("clean store");
            }
            let reference: Vec<i64> = algs[0].result().iter().map(|e| e.safety).collect();
            for alg in &algs[1..] {
                let got: Vec<i64> = alg.result().iter().map(|e| e.safety).collect();
                assert_eq!(got, reference, "{} diverged", alg.name());
            }
        }
    }
}
