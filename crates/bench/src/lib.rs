//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each experiment (`fig3` … `fig9`, plus ablations) is a function that
//! builds the workload, runs the algorithms, and returns rows the
//! `reproduce` binary prints. The Criterion benches in `benches/` reuse
//! the same setup code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{
    build_setup, layout_matrix, measure_batched_observed, measure_updates,
    measure_updates_observed, run_layout_matrix, shard_scaling_matrix, snapshot_algorithms,
    snapshot_sharded, stream, AlgKind, LayoutConfig, LayoutRun, RunSummary, Setup, SetupParams,
    ShardConfig, SHARD_BATCH,
};
