//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--quick] [--out FILE] [--sharded-out FILE] [--overload-out FILE] [experiment ...]
//! ```
//!
//! With no experiment arguments, runs everything. Experiment names:
//! `table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9 ablation_purge ablation_disk
//! shard_scaling ext_decay`.
//!
//! `--out FILE` additionally runs every algorithm over the Table III
//! default workload and writes one unified observability snapshot per
//! algorithm — every counter plus the latency histograms with their
//! p50/p90/p99/p999 quantiles — as a JSON document.
//!
//! `--sharded-out FILE` does the same for the sharded engine's scaling
//! matrix (1/2/4/8 shards × cell cache off/on over a 20us/page simulated
//! disk) — the machine-readable form of the `shard_scaling` experiment
//! (BENCH_PR5.json in this repo).
//!
//! `--overload-out FILE` runs the networked overload sweep — a paced
//! feed client offering 0.5×/1×/2×/4× the calibrated engine capacity
//! through the real TCP front door — and writes accepted/shed
//! throughput and admission-wait quantiles per load point as JSON
//! (BENCH_PR6.json in this repo).
//!
//! `--failover-out FILE` runs the failover MTTR bench — engine kills
//! healed in-process from the durable slot + WAL tail, and primary
//! kills absorbed by warm-standby promotion — and writes per-trial
//! outage durations for both recovery levels as JSON (BENCH_PR8.json
//! in this repo).
//!
//! `--layout-out FILE` runs the cell-layout matrix — row-major vs
//! Z-order layout × 1/2/4/8 shards × cell cache off/on over the
//! 20us/page simulated disk — and writes one snapshot per config plus
//! the cross-shard fan-out and merge-skip figures as JSON
//! (BENCH_PR10.json in this repo).

use ctup_bench::experiments::{self, Effort, Table};
use ctup_bench::harness::{
    layout_matrix, run_layout_matrix, shard_scaling_matrix, snapshot_algorithms, snapshot_sharded,
    SetupParams,
};

type Runner = Box<dyn Fn(Effort) -> Table>;

/// Renders the per-algorithm snapshots as one JSON document.
fn render_snapshots(
    workload: &str,
    mode: &str,
    updates: usize,
    snapshots: &[ctup_core::Snapshot],
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"workload\":\"");
    out.push_str(workload);
    out.push_str("\",\"mode\":\"");
    out.push_str(mode);
    out.push_str("\",\"updates\":");
    out.push_str(&updates.to_string());
    out.push_str(",\"algorithms\":[");
    for (i, snap) in snapshots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&snap.render_json());
    }
    out.push_str("]}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };
    let mut out_file: Option<String> = None;
    let mut sharded_out_file: Option<String> = None;
    let mut overload_out_file: Option<String> = None;
    let mut failover_out_file: Option<String> = None;
    let mut layout_out_file: Option<String> = None;
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--out" => match iter.next() {
                Some(path) => out_file = Some(path.clone()),
                None => {
                    eprintln!("--out requires a file path");
                    std::process::exit(2);
                }
            },
            "--sharded-out" => match iter.next() {
                Some(path) => sharded_out_file = Some(path.clone()),
                None => {
                    eprintln!("--sharded-out requires a file path");
                    std::process::exit(2);
                }
            },
            "--overload-out" => match iter.next() {
                Some(path) => overload_out_file = Some(path.clone()),
                None => {
                    eprintln!("--overload-out requires a file path");
                    std::process::exit(2);
                }
            },
            "--failover-out" => match iter.next() {
                Some(path) => failover_out_file = Some(path.clone()),
                None => {
                    eprintln!("--failover-out requires a file path");
                    std::process::exit(2);
                }
            },
            "--layout-out" => match iter.next() {
                Some(path) => layout_out_file = Some(path.clone()),
                None => {
                    eprintln!("--layout-out requires a file path");
                    std::process::exit(2);
                }
            },
            name => selected.push(name),
        }
    }

    let all: Vec<(&str, Runner)> = vec![
        ("table3", Box::new(|_| experiments::table3())),
        ("fig3", Box::new(experiments::fig3)),
        ("fig4", Box::new(experiments::fig4)),
        ("fig5", Box::new(experiments::fig5)),
        ("fig6", Box::new(experiments::fig6)),
        ("fig7", Box::new(experiments::fig7)),
        ("fig8", Box::new(experiments::fig8)),
        ("fig9", Box::new(experiments::fig9)),
        (
            "ablation_purge",
            Box::new(experiments::ablation_dechash_purge),
        ),
        ("ablation_disk", Box::new(experiments::ablation_disk)),
        ("shard_scaling", Box::new(experiments::shard_scaling)),
        ("layout_matrix", Box::new(experiments::layout_matrix)),
        ("ext_decay", Box::new(experiments::ext_decay)),
    ];

    let known: Vec<&str> = all.iter().map(|(name, _)| *name).collect();
    for name in &selected {
        if !known.contains(name) {
            eprintln!("unknown experiment {name:?}; known: {}", known.join(" "));
            std::process::exit(2);
        }
    }

    println!(
        "CTUP reproduction — {} mode ({} updates per series)\n",
        if quick { "quick" } else { "full" },
        effort.updates
    );
    for (name, run) in &all {
        if !selected.is_empty() && !selected.contains(name) {
            continue;
        }
        let start = std::time::Instant::now();
        let table = run(effort);
        println!("{}", table.render());
        println!("  [{name} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }

    let mode = if quick { "quick" } else { "full" };
    if let Some(path) = out_file {
        let updates = effort.updates;
        let snapshots = snapshot_algorithms(&SetupParams::default(), updates);
        let json = render_snapshots("table3-default", mode, updates, &snapshots);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("observability snapshots written to {path}");
    }
    if let Some(path) = sharded_out_file {
        let updates = effort.updates.min(3_000);
        let snapshots = snapshot_sharded(
            &SetupParams::default(),
            updates,
            20_000,
            ctup_bench::SHARD_BATCH,
            &shard_scaling_matrix(),
        );
        let json = render_snapshots("shard-scaling", mode, updates, &snapshots);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("sharded scaling snapshots written to {path}");
    }
    if let Some(path) = overload_out_file {
        let mut config = ctup_core::net::overload::OverloadConfig::default();
        if quick {
            config.reports_per_point = 400;
        }
        let report = match ctup_core::net::overload::run_sweep(&config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("overload sweep failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        for p in &report.points {
            println!(
                "  overload x{:.1}: offered {} accepted_hz {:.0} shed_hz {:.0} p99_wait {:.1}ms",
                p.multiplier,
                p.offered,
                p.accepted_hz,
                p.shed_hz,
                p.p99_wait_nanos as f64 / 1e6
            );
        }
        println!("overload sweep written to {path}");
    }
    if let Some(path) = failover_out_file {
        let mut config = ctup_core::net::mttr::MttrConfig::default();
        if quick {
            config.trials = 2;
            config.reports = 300;
            config.kill_at = 150;
        }
        let report = match ctup_core::net::mttr::run_mttr_bench(&config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("failover MTTR bench failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        let heal = report.self_heal_ms();
        let promote = report.promotion_ms();
        for (i, (h, p)) in heal.iter().zip(&promote).enumerate() {
            println!("  trial {i}: self-heal {h:.1}ms, promotion {p:.1}ms");
        }
        println!("failover MTTR bench written to {path}");
    }
    if let Some(path) = layout_out_file {
        let updates = effort.updates.min(3_000);
        let runs = run_layout_matrix(
            &SetupParams::default(),
            updates,
            20_000,
            ctup_bench::SHARD_BATCH,
            &layout_matrix(),
        );
        let mut json = String::with_capacity(32 * 1024);
        json.push_str("{\"workload\":\"layout-matrix\",\"mode\":\"");
        json.push_str(mode);
        json.push_str("\",\"updates\":");
        json.push_str(&updates.to_string());
        json.push_str(",\"page_latency_nanos\":20000,\"runs\":[");
        for (i, run) in runs.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"label\":\"{}\",\"layout\":\"{}\",\"shards\":{},\"cache_pages\":{},\
                 \"fanout_per_update\":{:.4},\"merge_skips\":{},\"snapshot\":{}}}",
                run.config.label(),
                run.config.layout,
                run.config.shards,
                run.config.cache_pages,
                run.fanout_per_update,
                run.merge_skips,
                run.snapshot.render_json(),
            ));
        }
        json.push_str("]}");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        for run in &runs {
            println!(
                "  {}: fanout/upd {:.3} pages_read {} hit_ratio {:.3} p99 {:.1}us",
                run.config.label(),
                run.fanout_per_update,
                run.snapshot.storage.pages_read,
                run.snapshot.storage.cache_hit_ratio(),
                run.snapshot.latency.update_total_nanos.quantile(0.99) as f64 / 1e3,
            );
        }
        println!("layout matrix written to {path}");
    }
}
