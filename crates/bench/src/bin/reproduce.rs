//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--quick] [experiment ...]
//! ```
//!
//! With no experiment arguments, runs everything. Experiment names:
//! `table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9 ablation_purge ablation_disk
//! ext_decay`.

use ctup_bench::experiments::{self, Effort, Table};

type Runner = Box<dyn Fn(Effort) -> Table>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--quick")
        .map(String::as_str)
        .collect();

    let all: Vec<(&str, Runner)> = vec![
        ("table3", Box::new(|_| experiments::table3())),
        ("fig3", Box::new(experiments::fig3)),
        ("fig4", Box::new(experiments::fig4)),
        ("fig5", Box::new(experiments::fig5)),
        ("fig6", Box::new(experiments::fig6)),
        ("fig7", Box::new(experiments::fig7)),
        ("fig8", Box::new(experiments::fig8)),
        ("fig9", Box::new(experiments::fig9)),
        (
            "ablation_purge",
            Box::new(experiments::ablation_dechash_purge),
        ),
        ("ablation_disk", Box::new(experiments::ablation_disk)),
        ("ext_decay", Box::new(experiments::ext_decay)),
    ];

    let known: Vec<&str> = all.iter().map(|(name, _)| *name).collect();
    for name in &selected {
        if !known.contains(name) {
            eprintln!("unknown experiment {name:?}; known: {}", known.join(" "));
            std::process::exit(2);
        }
    }

    println!(
        "CTUP reproduction — {} mode ({} updates per series)\n",
        if quick { "quick" } else { "full" },
        effort.updates
    );
    for (name, run) in &all {
        if !selected.is_empty() && !selected.contains(name) {
            continue;
        }
        let start = std::time::Instant::now();
        let table = run(effort);
        println!("{}", table.render());
        println!("  [{name} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}
