//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--quick] [--out FILE] [experiment ...]
//! ```
//!
//! With no experiment arguments, runs everything. Experiment names:
//! `table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9 ablation_purge ablation_disk
//! ext_decay`.
//!
//! `--out FILE` additionally runs every algorithm over the Table III
//! default workload and writes one unified observability snapshot per
//! algorithm — every counter plus the latency histograms with their
//! p50/p90/p99/p999 quantiles — as a JSON document.

use ctup_bench::experiments::{self, Effort, Table};
use ctup_bench::harness::{snapshot_algorithms, SetupParams};

type Runner = Box<dyn Fn(Effort) -> Table>;

/// Renders the per-algorithm snapshots as one JSON document.
fn render_snapshots(mode: &str, updates: usize, snapshots: &[ctup_core::Snapshot]) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"workload\":\"table3-default\",\"mode\":\"");
    out.push_str(mode);
    out.push_str("\",\"updates\":");
    out.push_str(&updates.to_string());
    out.push_str(",\"algorithms\":[");
    for (i, snap) in snapshots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&snap.render_json());
    }
    out.push_str("]}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };
    let mut out_file: Option<String> = None;
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--out" => match iter.next() {
                Some(path) => out_file = Some(path.clone()),
                None => {
                    eprintln!("--out requires a file path");
                    std::process::exit(2);
                }
            },
            name => selected.push(name),
        }
    }

    let all: Vec<(&str, Runner)> = vec![
        ("table3", Box::new(|_| experiments::table3())),
        ("fig3", Box::new(experiments::fig3)),
        ("fig4", Box::new(experiments::fig4)),
        ("fig5", Box::new(experiments::fig5)),
        ("fig6", Box::new(experiments::fig6)),
        ("fig7", Box::new(experiments::fig7)),
        ("fig8", Box::new(experiments::fig8)),
        ("fig9", Box::new(experiments::fig9)),
        (
            "ablation_purge",
            Box::new(experiments::ablation_dechash_purge),
        ),
        ("ablation_disk", Box::new(experiments::ablation_disk)),
        ("ext_decay", Box::new(experiments::ext_decay)),
    ];

    let known: Vec<&str> = all.iter().map(|(name, _)| *name).collect();
    for name in &selected {
        if !known.contains(name) {
            eprintln!("unknown experiment {name:?}; known: {}", known.join(" "));
            std::process::exit(2);
        }
    }

    println!(
        "CTUP reproduction — {} mode ({} updates per series)\n",
        if quick { "quick" } else { "full" },
        effort.updates
    );
    for (name, run) in &all {
        if !selected.is_empty() && !selected.contains(name) {
            continue;
        }
        let start = std::time::Instant::now();
        let table = run(effort);
        println!("{}", table.render());
        println!("  [{name} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }

    if let Some(path) = out_file {
        let updates = effort.updates;
        let snapshots = snapshot_algorithms(&SetupParams::default(), updates);
        let mode = if quick { "quick" } else { "full" };
        let json = render_snapshots(mode, updates, &snapshots);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("observability snapshots written to {path}");
    }
}
