//! One function per table/figure of the paper's evaluation (§VI), plus the
//! ablations described in DESIGN.md. Every function returns a printable
//! [`Table`]; the `reproduce` binary renders them.

use crate::harness::{build_setup, measure_updates, AlgKind, SetupParams};
use ctup_core::config::CtupConfig;
use ctup_core::ext::decay::{DecayConfig, DecayCtup, DecayKernel, DecayMode};
use ctup_core::oracle::Oracle;
use ctup_mogen::{PlaceGenConfig, Workload, WorkloadParams};
use ctup_spatial::Grid;
use ctup_storage::{CachedStore, CellLocalStore, PagedDiskStore, PlaceStore};
use std::fmt::Write as _;
use std::sync::Arc;

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Updates fed to the grid schemes and the incremental baseline.
    pub updates: usize,
    /// Updates fed to the recompute-everything baseline (it is orders of
    /// magnitude slower, so fewer suffice for a stable average).
    pub naive_updates: usize,
}

impl Effort {
    /// The full runs used for EXPERIMENTS.md.
    pub fn full() -> Self {
        Effort {
            updates: 10_000,
            naive_updates: 300,
        }
    }

    /// A fast smoke-test configuration.
    pub fn quick() -> Self {
        Effort {
            updates: 1_000,
            naive_updates: 30,
        }
    }
}

/// A printable experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("fig4", "table3", …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expectations from the paper, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let mut header = String::new();
        for (c, w) in self.columns.iter().zip(&widths) {
            let _ = write!(header, "{c:>w$}  ");
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

fn us(nanos: f64) -> String {
    format!("{:.2}", nanos / 1_000.0)
}

fn ms(nanos: f64) -> String {
    format!("{:.2}", nanos / 1_000_000.0)
}

/// Table III — the default parameters, echoed for the record.
pub fn table3() -> Table {
    let p = SetupParams::default();
    Table {
        id: "table3",
        title: "Default parameter values".into(),
        columns: vec!["parameter".into(), "value".into()],
        rows: vec![
            vec!["Number of units (|U|)".into(), p.num_units.to_string()],
            vec!["Number of places (|P|)".into(), p.num_places.to_string()],
            vec!["Number of TUPs (k)".into(), "15".into()],
            vec![
                "Adjustable parameter (Delta)".into(),
                p.config.delta.to_string(),
            ],
            vec![
                "Unit protection range".into(),
                p.config.protection_radius.to_string(),
            ],
            vec!["Partition granularity".into(), p.granularity.to_string()],
        ],
        notes: vec!["matches Table III of the paper".into()],
    }
}

/// Fig. 3 — initialization time of the three algorithms at defaults.
pub fn fig3(_effort: Effort) -> Table {
    let setup = build_setup(SetupParams::default());
    // Warm the store and allocator once so the first measured construction
    // is not penalized by cold caches.
    drop(AlgKind::Naive.build(&setup));
    let mut rows = Vec::new();
    for kind in [
        AlgKind::Naive,
        AlgKind::NaiveIncremental,
        AlgKind::Basic,
        AlgKind::Opt,
    ] {
        // Best of five: construction is milliseconds, so scheduler noise on
        // a shared machine easily dominates a single sample.
        let mut alg = kind.build(&setup);
        for _ in 0..4 {
            let candidate = kind.build(&setup);
            if candidate.init_stats().wall < alg.init_stats().wall {
                alg = candidate;
            }
        }
        let init = alg.init_stats();
        rows.push(vec![
            kind.label().into(),
            ms(init.wall.as_nanos() as f64),
            init.storage.cell_reads.to_string(),
            init.safeties_computed.to_string(),
            alg.metrics().maintained_now.to_string(),
        ]);
    }
    Table {
        id: "fig3",
        title: "Initialization time (defaults)".into(),
        columns: vec![
            "algorithm".into(),
            "init_ms".into(),
            "cell_reads".into(),
            "safeties".into(),
            "maintained".into(),
        ],
        rows,
        notes: vec![
            "paper: Naive fastest, OptCTUP close, BasicCTUP worst".into(),
            "best of 5 constructions; see EXPERIMENTS.md for the shape discussion".into(),
        ],
    }
}

/// Fig. 4 — average update cost of the three algorithms at defaults.
pub fn fig4(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for kind in [
        AlgKind::Naive,
        AlgKind::NaiveIncremental,
        AlgKind::Basic,
        AlgKind::Opt,
    ] {
        let mut setup = build_setup(SetupParams::default());
        let n = if kind == AlgKind::Naive {
            effort.naive_updates
        } else {
            effort.updates
        };
        let updates = setup.next_updates(n);
        let mut alg = kind.build(&setup);
        let summary = measure_updates(alg.as_mut(), &updates);
        rows.push(vec![
            kind.label().into(),
            us(summary.avg_update_nanos),
            format!("{:.3}", summary.cells_accessed_per_update),
            summary.maintained_places.to_string(),
            summary.updates.to_string(),
        ]);
    }
    Table {
        id: "fig4",
        title: "Average update cost (defaults)".into(),
        columns: vec![
            "algorithm".into(),
            "avg_us".into(),
            "cells/upd".into(),
            "maintained".into(),
            "updates".into(),
        ],
        rows,
        notes: vec!["paper: OptCTUP wins by a large margin; BasicCTUP beats Naive".into()],
    }
}

fn sweep_basic_vs_opt(
    id: &'static str,
    title: &str,
    xs: &[(String, SetupParams)],
    effort: Effort,
    note: &str,
) -> Table {
    let mut rows = Vec::new();
    for (label, params) in xs {
        let mut cols = vec![label.clone()];
        for kind in [AlgKind::Basic, AlgKind::Opt] {
            let mut setup = build_setup(params.clone());
            let updates = setup.next_updates(effort.updates);
            let mut alg = kind.build(&setup);
            let summary = measure_updates(alg.as_mut(), &updates);
            cols.push(us(summary.avg_update_nanos));
            cols.push(format!("{:.3}", summary.cells_accessed_per_update));
        }
        rows.push(cols);
    }
    Table {
        id,
        title: title.into(),
        columns: vec![
            "x".into(),
            "basic_us".into(),
            "basic_cells".into(),
            "opt_us".into(),
            "opt_cells".into(),
        ],
        rows,
        notes: vec![note.into()],
    }
}

/// Fig. 5 — update cost varying `k`.
pub fn fig5(effort: Effort) -> Table {
    let xs: Vec<(String, SetupParams)> = [1usize, 5, 10, 15, 20, 25]
        .iter()
        .map(|&k| {
            (
                format!("k={k}"),
                SetupParams {
                    config: CtupConfig::with_k(k),
                    ..SetupParams::default()
                },
            )
        })
        .collect();
    sweep_basic_vs_opt(
        "fig5",
        "Update cost varying k",
        &xs,
        effort,
        "paper: OptCTUP clearly below BasicCTUP across all k",
    )
}

/// Fig. 6 — update cost varying the partition granularity.
pub fn fig6(effort: Effort) -> Table {
    let xs: Vec<(String, SetupParams)> = [4u32, 8, 10, 16, 24, 32]
        .iter()
        .map(|&g| {
            (
                format!("G={g}"),
                SetupParams {
                    granularity: g,
                    ..SetupParams::default()
                },
            )
        })
        .collect();
    sweep_basic_vs_opt(
        "fig6",
        "Update cost varying partition granularity",
        &xs,
        effort,
        "paper: OptCTUP superior across granularities",
    )
}

/// Fig. 7 — update cost varying the protection range.
pub fn fig7(effort: Effort) -> Table {
    let xs: Vec<(String, SetupParams)> = [0.05f64, 0.075, 0.1, 0.15, 0.2]
        .iter()
        .map(|&r| {
            (
                format!("R={r}"),
                SetupParams {
                    config: CtupConfig {
                        protection_radius: r,
                        ..CtupConfig::paper_default()
                    },
                    ..SetupParams::default()
                },
            )
        })
        .collect();
    sweep_basic_vs_opt(
        "fig7",
        "Update cost varying protection range",
        &xs,
        effort,
        "paper: OptCTUP superior across ranges",
    )
}

/// Fig. 8 — the effect of DOO, varying the number of places.
pub fn fig8(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &num_places in &[5_000u32, 10_000, 15_000, 20_000, 25_000] {
        let mut cols = vec![format!("|P|={num_places}")];
        for doo in [true, false] {
            // A fine-grained stream (many small reports per street segment)
            // is where DOO matters: repeated P->P reports on the same cells
            // are exactly what it suppresses.
            let params = SetupParams {
                num_places,
                config: CtupConfig {
                    doo_enabled: doo,
                    ..CtupConfig::paper_default()
                },
                tick_dt: 0.1,
                ..SetupParams::default()
            };
            let mut setup = build_setup(params);
            let updates = setup.next_updates(effort.updates);
            let mut alg = AlgKind::Opt.build(&setup);
            let summary = measure_updates(alg.as_mut(), &updates);
            cols.push(us(summary.avg_update_nanos));
            cols.push(format!("{:.3}", summary.cells_accessed_per_update));
            cols.push(format!("{:.2}", summary.lb_decrements_per_update));
        }
        rows.push(cols);
    }
    Table {
        id: "fig8",
        title: "Effect of DOO varying |P| (OptCTUP with vs without DOO)".into(),
        columns: vec![
            "x".into(),
            "doo_us".into(),
            "doo_cells".into(),
            "doo_dec".into(),
            "nodoo_us".into(),
            "nodoo_cells".into(),
            "nodoo_dec".into(),
        ],
        rows,
        notes: vec![
            "paper: DOO clearly better, gap grows with |P|".into(),
            "dec columns (lower-bound decrements/update) are deterministic".into(),
        ],
    }
}

/// Fig. 9 — update cost split into maintenance and cell access, varying Δ.
pub fn fig9(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &delta in &[0i64, 2, 4, 6, 8, 10, 12] {
        let params = SetupParams {
            config: CtupConfig {
                delta,
                ..CtupConfig::paper_default()
            },
            ..SetupParams::default()
        };
        let mut setup = build_setup(params);
        let updates = setup.next_updates(effort.updates);
        let mut alg = AlgKind::Opt.build(&setup);
        let summary = measure_updates(alg.as_mut(), &updates);
        rows.push(vec![
            format!("D={delta}"),
            us(summary.avg_update_nanos),
            us(summary.avg_maintain_nanos),
            us(summary.avg_access_nanos),
            format!("{:.3}", summary.cells_accessed_per_update),
            summary.maintained_places.to_string(),
        ]);
    }
    Table {
        id: "fig9",
        title: "Update cost split (maintain vs access) varying Delta".into(),
        columns: vec![
            "x".into(),
            "total_us".into(),
            "maintain_us".into(),
            "access_us".into(),
            "cells/upd".into(),
            "maintained".into(),
        ],
        rows,
        notes: vec!["paper: maintenance cost grows with Delta, access cost shrinks".into()],
    }
}

/// Ablation — the DecHash purge-on-access soundness fix: cost and result
/// divergence with the purge disabled (the paper's literal Table II).
pub fn ablation_dechash_purge(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for purge in [true, false] {
        let params = SetupParams {
            num_units: 40,
            num_places: 2_000,
            config: CtupConfig {
                purge_dechash_on_access: purge,
                delta: 0,
                mode: ctup_core::QueryMode::Threshold(0),
                ..CtupConfig::paper_default()
            },
            ..SetupParams::default()
        };
        let setup = build_setup(params);
        // A jiggle stream: every unit oscillates across its neighbourhood,
        // repeatedly flipping protection of nearby places while its region
        // keeps partially intersecting the same cells — the pattern that
        // leaves stale DecHash entries behind after cell accesses.
        let n = effort.updates.min(3_000);
        let updates: Vec<ctup_core::LocationUpdate> = (0..n)
            .map(|i| {
                let unit = i % setup.units.len();
                let base = setup.units[unit];
                let phase = (i / setup.units.len()).is_multiple_of(2);
                let offset = if phase { 0.05 } else { -0.05 };
                ctup_core::LocationUpdate {
                    unit: ctup_core::UnitId(unit as u32),
                    new: ctup_spatial::Point::new((base.x + offset).clamp(0.0, 1.0), base.y),
                }
            })
            .collect();
        let oracle = Oracle::from_store(setup.store.as_ref())
            .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"));
        let mut alg = AlgKind::Opt.build(&setup);
        let mut positions = setup.units.clone();
        let mut divergences = 0u64;
        let start = std::time::Instant::now();
        for &update in &updates {
            if let Err(e) = alg.handle_update(update) {
                panic!("benchmark store must be clean: {e}");
            }
            positions[update.unit.index()] = update.new;
            let got: Vec<i64> = alg.result().iter().map(|e| e.safety).collect();
            let want: Vec<i64> = oracle
                .result(&positions, 0.1, ctup_core::QueryMode::Threshold(0))
                .iter()
                .map(|e| e.safety)
                .collect();
            if got != want {
                divergences += 1;
            }
        }
        let avg = start.elapsed().as_nanos() as f64 / updates.len().max(1) as f64;
        rows.push(vec![
            if purge {
                "purge-on-access (sound)"
            } else {
                "no purge (literal Table II)"
            }
            .into(),
            us(avg),
            divergences.to_string(),
            updates.len().to_string(),
        ]);
    }
    Table {
        id: "ablation_purge",
        title: "DecHash purge-on-access: soundness fix vs literal Table II".into(),
        columns: vec![
            "variant".into(),
            "avg_us".into(),
            "wrong_results".into(),
            "updates".into(),
        ],
        rows,
        notes: vec![
            "avg_us includes the oracle check in both variants (overhead identical)".into(),
            "nonzero wrong_results for the literal variant demonstrates why the fix exists".into(),
        ],
    }
}

/// Ablation — two-level storage regime: memory-resident lower level vs a
/// simulated paged disk (Fig. 9's closing discussion).
pub fn ablation_disk(effort: Effort) -> Table {
    let mut rows = Vec::new();
    for &(label, latency) in &[
        ("memory", 0u64),
        ("disk 20us/page", 20_000),
        ("disk 100us/page", 100_000),
    ] {
        for &delta in &[0i64, 6, 12] {
            let wl_params = WorkloadParams {
                num_units: 150,
                places: PlaceGenConfig {
                    count: 15_000,
                    ..PlaceGenConfig::default()
                },
                seed: 0xC7,
                ..WorkloadParams::default()
            };
            let mut workload = Workload::generate(wl_params);
            let grid = Grid::unit_square(10);
            let store: Arc<dyn PlaceStore> = if latency == 0 {
                Arc::new(CellLocalStore::build(grid, workload.places_vec()))
            } else {
                Arc::new(PagedDiskStore::build(grid, workload.places_vec(), latency))
            };
            let config = CtupConfig {
                delta,
                ..CtupConfig::paper_default()
            };
            let units = workload.unit_positions();
            let mut alg = ctup_core::OptCtup::new(config, store, &units)
                .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"));
            let updates = crate::harness::stream(workload.next_updates(effort.updates.min(3_000)));
            let summary = measure_updates(&mut alg, &updates);
            rows.push(vec![
                format!("{label}, D={delta}"),
                us(summary.avg_update_nanos),
                us(summary.avg_access_nanos),
                format!("{:.3}", summary.cells_accessed_per_update),
            ]);
        }
    }
    Table {
        id: "ablation_disk",
        title: "OptCTUP under a paged-disk lower level (Fig. 9 discussion)".into(),
        columns: vec![
            "variant".into(),
            "total_us".into(),
            "access_us".into(),
            "cells/upd".into(),
        ],
        rows,
        notes: vec![
            "paper: on disk, cell-access time grows sharply but trends stay the same".into(),
            "larger Delta buys fewer accesses, which matters more as page latency grows".into(),
        ],
    }
}

/// Perf experiment — the sharded parallel engine: update cost at 1/2/4/8
/// shards over a simulated paged disk, with the cell-read cache off and
/// on. Updates are fed through batched ingest ([`crate::SHARD_BATCH`]
/// per batch) so one barrier covers a batch whose cell accesses spread
/// across all shards. The disk latency is busy-waited per page, so both
/// effects are real wall time: shards absorb it in parallel, the cache
/// skips it entirely on repeat reads of hot cells.
pub fn shard_scaling(effort: Effort) -> Table {
    let mut rows = Vec::new();
    let n = effort.updates.min(3_000);
    for cfg in crate::harness::shard_scaling_matrix() {
        let wl_params = WorkloadParams {
            num_units: 150,
            places: PlaceGenConfig {
                count: 15_000,
                ..PlaceGenConfig::default()
            },
            seed: 0xC7,
            ..WorkloadParams::default()
        };
        let mut workload = Workload::generate(wl_params);
        let grid = Grid::unit_square(10);
        let base: Arc<dyn PlaceStore> =
            Arc::new(PagedDiskStore::build(grid, workload.places_vec(), 20_000));
        let store: Arc<dyn PlaceStore> = if cfg.cache_pages == 0 {
            base.clone()
        } else {
            Arc::new(CachedStore::new(base.clone(), cfg.cache_pages))
        };
        let units = workload.unit_positions();
        let mut alg =
            ctup_core::ShardedCtup::new(CtupConfig::paper_default(), store, &units, cfg.shards)
                .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"));
        let updates = crate::harness::stream(workload.next_updates(n));
        let (summary, _) =
            crate::harness::measure_batched_observed(&mut alg, &updates, crate::SHARD_BATCH);
        let snap = base.stats().snapshot();
        rows.push(vec![
            cfg.label(),
            us(summary.avg_update_nanos),
            format!("{:.3}", summary.cells_accessed_per_update),
            snap.pages_read.to_string(),
            format!("{:.3}", snap.cache_hit_ratio()),
        ]);
    }
    Table {
        id: "shard_scaling",
        title: "Sharded engine: shards × cell-read cache on a 20us/page disk".into(),
        columns: vec![
            "variant".into(),
            "avg_us".into(),
            "cells/upd".into(),
            "pages_read".into(),
            "hit_ratio".into(),
        ],
        rows,
        notes: vec![
            "one shard, no cache is the sequential OptCTUP cost model on this disk".into(),
            "expected: avg_us shrinks with shards; pages_read shrinks with the cache".into(),
        ],
    }
}

/// Perf experiment — the Z-order spatial re-layout: row-major vs Morton
/// cell layout across shard counts and cache budgets over the 20us/page
/// disk. The layout decides both the shard ranges (contiguous layout-rank
/// ranges balanced by cell load vs modulo striping) and the physical page
/// order of the disk, so the columns show the locality the Z-curve buys:
/// cross-shard fan-out per update, pages read, and cache hit ratio.
pub fn layout_matrix(effort: Effort) -> Table {
    let n = effort.updates.min(3_000);
    let runs = crate::harness::run_layout_matrix(
        &SetupParams::default(),
        n,
        20_000,
        crate::SHARD_BATCH,
        &crate::harness::layout_matrix(),
    );
    let rows = runs
        .iter()
        .map(|run| {
            vec![
                run.config.label(),
                us(run.snapshot.latency.update_total_nanos.mean() as f64),
                us(run.snapshot.latency.update_total_nanos.quantile(0.99) as f64),
                format!("{:.3}", run.fanout_per_update),
                run.snapshot.storage.pages_read.to_string(),
                format!("{:.3}", run.snapshot.storage.cache_hit_ratio()),
                run.snapshot.storage.cache_prefetch_hits.to_string(),
            ]
        })
        .collect();
    Table {
        id: "layout_matrix",
        title: "Cell layout: rowmajor vs zorder × shards × cache on a 20us/page disk".into(),
        columns: vec![
            "variant".into(),
            "avg_us".into(),
            "p99_us".into(),
            "fanout/upd".into(),
            "pages_read".into(),
            "hit_ratio".into(),
            "prefetch_hits".into(),
        ],
        rows,
        notes: vec![
            "fanout/upd = distinct shards overlapped by each update's touched cells".into(),
            "expected at 4 shards + cache: zorder below rowmajor on fanout, pages and misses"
                .into(),
            "both layouts return the exact same top-k — see the differential tests".into(),
        ],
    }
}

/// Extension experiment — decayed protection kernels (future work #2):
/// update cost of the decayed monitor vs its brute-force oracle.
pub fn ext_decay(effort: Effort) -> Table {
    let kernels = [
        ("step", DecayKernel::Step { radius: 0.1 }),
        ("cone", DecayKernel::Cone { radius: 0.15 }),
        (
            "gauss",
            DecayKernel::Gaussian {
                sigma: 0.05,
                cutoff: 0.15,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, kernel) in kernels {
        let wl_params = WorkloadParams {
            num_units: 150,
            places: PlaceGenConfig {
                count: 15_000,
                ..PlaceGenConfig::default()
            },
            seed: 0xC7,
            ..WorkloadParams::default()
        };
        let mut workload = Workload::generate(wl_params);
        let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
            Grid::unit_square(10),
            workload.places_vec(),
        ));
        let config = DecayConfig {
            kernel,
            mode: DecayMode::TopK(15),
            delta: 1.0,
        };
        let units = workload.unit_positions();
        let mut monitor = DecayCtup::new(config, store, &units)
            .unwrap_or_else(|e| panic!("benchmark store must be clean: {e}"));
        let updates = workload.next_updates(effort.updates.min(3_000));
        let start = std::time::Instant::now();
        for u in &updates {
            if let Err(e) = monitor.handle_update(u.object, u.to) {
                panic!("benchmark store must be clean: {e}");
            }
        }
        let avg = start.elapsed().as_nanos() as f64 / updates.len().max(1) as f64;
        rows.push(vec![
            label.into(),
            us(avg),
            format!(
                "{:.3}",
                monitor.cells_accessed as f64 / updates.len().max(1) as f64
            ),
            monitor.maintained_places().to_string(),
        ]);
    }
    Table {
        id: "ext_decay",
        title: "Extension: decayed protection kernels (future work #2)".into(),
        columns: vec![
            "kernel".into(),
            "avg_us".into(),
            "cells/upd".into(),
            "maintained".into(),
        ],
        rows,
        notes: vec!["step kernel reduces to the paper's 0/1 model".into()],
    }
}
