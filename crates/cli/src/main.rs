//! `ctup` — command-line front-end for Continuous Top-k Unsafe Places
//! monitoring. See `ctup help` / [`commands::usage`].

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(subcommand) = argv.next() else {
        eprintln!("{}", commands::usage());
        return ExitCode::from(2);
    };
    let rest: Vec<String> = argv.collect();
    let mut stdout = std::io::stdout().lock();
    let result = match subcommand.as_str() {
        "generate" => commands::generate(rest, &mut stdout),
        "run" => commands::run(rest, &mut stdout),
        "run-opt" => commands::run_opt(rest, &mut stdout),
        "resume" => commands::resume(rest, &mut stdout),
        "chaos" => commands::chaos(rest, &mut stdout),
        "report" => commands::report(rest, &mut stdout),
        "serve-metrics" => commands::serve_metrics(rest, &mut stdout),
        "serve" => commands::serve(rest, &mut stdout),
        "feed" => commands::feed(rest, &mut stdout),
        "trace" => commands::trace(rest, &mut stdout),
        "help" | "--help" | "-h" => {
            println!("{}", commands::usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand {other:?}\n\n{}", commands::usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
