//! A small, dependency-free flag parser: `--key value` pairs plus boolean
//! `--key` switches, with typed accessors and unknown-flag rejection.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Errors produced while parsing or reading flags.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// `--flag` requires a value but none followed.
    MissingValue(String),
    /// A flag the command does not know.
    UnknownFlag(String),
    /// A value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// Parser message.
        message: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnexpectedPositional(a) => write!(f, "unexpected argument {a:?}"),
            ArgError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::BadValue {
                flag,
                value,
                message,
            } => {
                write!(f, "bad value {value:?} for --{flag}: {message}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Flags {
    /// Parses `args` (without the program/subcommand names). `switch_names`
    /// lists the flags that take no value; everything else expects one.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        switch_names: &[&str],
    ) -> Result<Flags, ArgError> {
        let mut flags = Flags::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(arg));
            };
            if switch_names.contains(&name) {
                flags.switches.push(name.to_string());
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                flags.values.insert(name.to_string(), value);
            }
        }
        Ok(flags)
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Typed flag value with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| ArgError::BadValue {
                flag: name.to_string(),
                value: raw.clone(),
                message: e.to_string(),
            }),
        }
    }

    /// String flag value, if present.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Rejects any flag not in `known` (switches included).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        for name in self.values.keys() {
            if !known.contains(&name.as_str()) {
                return Err(ArgError::UnknownFlag(name.clone()));
            }
        }
        for name in &self.switches {
            if !known.contains(&name.as_str()) {
                return Err(ArgError::UnknownFlag(name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], switches: &[&str]) -> Result<Flags, ArgError> {
        Flags::parse(args.iter().map(|s| s.to_string()), switches)
    }

    #[test]
    fn parses_values_and_switches() {
        let flags = parse(&["--places", "500", "--events", "--seed", "7"], &["events"]).unwrap();
        assert_eq!(flags.get("places", 0u32).unwrap(), 500);
        assert_eq!(flags.get("seed", 0u64).unwrap(), 7);
        assert!(flags.switch("events"));
        assert!(!flags.switch("quiet"));
        assert_eq!(flags.get("missing", 42i64).unwrap(), 42);
    }

    #[test]
    fn rejects_positional_and_missing_values() {
        assert_eq!(
            parse(&["oops"], &[]).unwrap_err(),
            ArgError::UnexpectedPositional("oops".into())
        );
        assert_eq!(
            parse(&["--seed"], &[]).unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
    }

    #[test]
    fn rejects_bad_and_unknown() {
        let flags = parse(&["--seed", "abc"], &[]).unwrap();
        assert!(matches!(
            flags.get("seed", 0u64),
            Err(ArgError::BadValue { .. })
        ));
        let flags = parse(&["--bogus", "1"], &[]).unwrap();
        assert_eq!(
            flags.reject_unknown(&["seed"]).unwrap_err(),
            ArgError::UnknownFlag("bogus".into())
        );
        let flags = parse(&["--seed", "1"], &[]).unwrap();
        assert!(flags.reject_unknown(&["seed"]).is_ok());
    }
}
