//! The CLI subcommands: `generate`, `run`, `resume`, `chaos`, `report`,
//! `serve-metrics`, `serve`, `feed`.

use crate::args::{ArgError, Flags};
use ctup_core::algorithm::{CtupAlgorithm, UpdateStats};
use ctup_core::checkpoint::Checkpoint;
use ctup_core::config::{CtupConfig, QueryMode};
use ctup_core::ingest::{stamp_stream, StampedUpdate};
use ctup_core::naive::{NaiveIncremental, NaiveRecompute};
use ctup_core::net::{
    ClientConfig, Conn, Dialer, EngineReviver, EngineSink, FailoverDialer, FeedClient,
    IngestServer, NetServerConfig, NetStatsSnapshot, PipelineSink, RecoveryConfig, RecoveryPlan,
    StandbyConfig, StandbyPhase, StandbyServer, TcpDialer,
};
use ctup_core::report::Snapshot;
use ctup_core::server::{MonitorEvent, Server};
use ctup_core::supervisor::{ResilienceConfig, SupervisedPipeline};
use ctup_core::types::{LocationUpdate, UnitId};
use ctup_core::{BasicCtup, OptCtup, ShardedCtup};
use ctup_mogen::{
    ChaosStream, FaultPlan, NetFaultPlan, PlaceGenConfig, PlaceGenerator, Workload, WorkloadParams,
};
use ctup_obs::{summarize, LatencySnapshot, MetricsServer, Span, SpanSink, Stage};
use ctup_spatial::{CellLayout, Grid, Point};
use ctup_storage::{
    snapshot, CachedStore, CellLocalStore, DiskFaultPlan, FaultDisk, PlaceStore, RetryPolicy,
    StorageError,
};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError(e.to_string())
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> CliError {
    CliError(format!("{context}: {e}"))
}

fn init_err(e: StorageError) -> CliError {
    CliError(format!("initializing the monitor: {e}"))
}

fn update_err(e: StorageError) -> CliError {
    CliError(format!("storage fault while applying an update: {e}"))
}

/// Shared workload/config flags of `run` and `generate`.
struct CommonParams {
    units: u32,
    places: u32,
    granularity: u32,
    seed: u64,
    config: CtupConfig,
}

fn common_params(flags: &Flags) -> Result<CommonParams, CliError> {
    let threshold: i64 = flags.get("threshold", i64::MIN)?;
    let k: usize = flags.get("k", 15)?;
    let mode = if threshold != i64::MIN {
        QueryMode::Threshold(threshold)
    } else {
        QueryMode::TopK(k)
    };
    let config = CtupConfig {
        mode,
        protection_radius: flags.get("radius", 0.1)?,
        delta: flags.get("delta", 6)?,
        doo_enabled: !flags.switch("no-doo"),
        purge_dechash_on_access: true,
    };
    Ok(CommonParams {
        units: flags.get("units", 150)?,
        places: flags.get("places", 15_000)?,
        granularity: flags.get("granularity", 10)?,
        seed: flags.get("seed", 0xC7)?,
        config,
    })
}

/// `ctup generate` — generate a place set and save it as a snapshot.
pub fn generate(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&["places", "seed", "rp-min", "rp-max", "rp-skew", "out"])?;
    let count: u32 = flags.get("places", 15_000)?;
    let seed: u64 = flags.get("seed", 0xC7)?;
    let config = PlaceGenConfig {
        count,
        rp_min: flags.get("rp-min", 1)?,
        rp_max: flags.get("rp-max", 8)?,
        rp_skew: flags.get("rp-skew", 1.0)?,
        ..PlaceGenConfig::default()
    };
    if config.rp_min > config.rp_max {
        return Err(CliError("--rp-min must not exceed --rp-max".into()));
    }
    let places = PlaceGenerator::new(config).generate(seed);
    let path = flags.get_str("out").unwrap_or("places.txt");
    snapshot::save_places(Path::new(path), &places)
        .map_err(|e| io_err(&format!("writing {path}"), e))?;
    writeln!(out, "wrote {} places to {path} (seed {seed})", places.len())
        .map_err(|e| io_err("stdout", e))?;
    Ok(())
}

/// Parallel-execution flags shared by `run`, `report` and `serve-metrics`.
struct EngineParams {
    /// Worker shards of the parallel engine; 1 runs the plain sequential
    /// algorithm.
    shards: u32,
    /// Page budget of the cell-read cache; 0 disables it.
    cell_cache_pages: u64,
    /// Cell layout: how cells map to shard ranges (and, for paged stores,
    /// how pages are packed on disk). Row-major is the legacy oracle.
    layout: CellLayout,
}

fn engine_params(flags: &Flags) -> Result<EngineParams, CliError> {
    let shards: u32 = flags.get("shards", 1)?;
    if shards == 0 {
        return Err(CliError("--shards must be at least 1".into()));
    }
    let layout = match flags.get_str("layout") {
        None => CellLayout::RowMajor,
        Some(name) => name
            .parse()
            .map_err(|e: String| CliError(format!("--layout: {e}")))?,
    };
    Ok(EngineParams {
        shards,
        cell_cache_pages: flags.get("cell-cache-pages", 0)?,
        layout,
    })
}

/// Wraps the store in the bounded LRU cell-read cache when a page budget
/// was given; a zero budget leaves the store untouched.
fn maybe_cache(store: Arc<dyn PlaceStore>, pages: u64) -> Arc<dyn PlaceStore> {
    if pages == 0 {
        store
    } else {
        Arc::new(CachedStore::new(store, pages))
    }
}

fn build_algorithm(
    name: &str,
    config: CtupConfig,
    store: Arc<dyn PlaceStore>,
    units: &[ctup_spatial::Point],
    shards: u32,
    layout: CellLayout,
) -> Result<Box<dyn CtupAlgorithm>, CliError> {
    if shards > 1 {
        if name != "opt" {
            return Err(CliError(format!(
                "--shards {shards} requires the opt algorithm (got {name:?}): \
                 the sharded engine partitions OptCTUP workers"
            )));
        }
        return Ok(Box::new(
            ShardedCtup::new_with_layout(config, store, units, shards, layout).map_err(init_err)?,
        ));
    }
    Ok(match name {
        "opt" => Box::new(OptCtup::new(config, store, units).map_err(init_err)?),
        "basic" => Box::new(BasicCtup::new(config, store, units).map_err(init_err)?),
        "naive" => Box::new(NaiveRecompute::new(config, store, units).map_err(init_err)?),
        "naive-inc" => Box::new(NaiveIncremental::new(config, store, units).map_err(init_err)?),
        other => {
            return Err(CliError(format!(
                "unknown algorithm {other:?} (expected opt, basic, naive or naive-inc)"
            )))
        }
    })
}

/// Feeds one update's phase timings into the run-local latency histograms.
fn record_latency(latency: &mut LatencySnapshot, stats: &UpdateStats) {
    latency.update_maintain_nanos.record(stats.maintain_nanos);
    latency.update_access_nanos.record(stats.access_nanos);
    latency
        .update_total_nanos
        .record(stats.maintain_nanos.saturating_add(stats.access_nanos));
}

/// Builds the unified observability snapshot of a finished run: the
/// algorithm's metrics, the store's counters, and the latency histograms
/// with the store's disk-read distribution folded in.
fn unified_snapshot(
    alg: &dyn CtupAlgorithm,
    store: &Arc<dyn PlaceStore>,
    mut latency: LatencySnapshot,
) -> Snapshot {
    // Algorithms that record latency internally (the sharded engine's
    // per-shard channels) contribute it here; for them the run loop left
    // the external histograms empty.
    if let Some(internal) = alg.internal_latency() {
        latency.merge(&internal);
    }
    latency.disk_read_nanos.merge(&store.stats().read_latency());
    Snapshot::new(
        alg.name(),
        alg.metrics().clone(),
        store.stats().snapshot(),
        latency,
    )
}

/// Prints one `latency ...` line per non-empty histogram, with the tail
/// quantiles (p50/p90/p99/p999) every report carries.
fn report_latency(latency: &LatencySnapshot, out: &mut dyn Write) -> Result<(), CliError> {
    for (name, hist) in [
        ("update-total", &latency.update_total_nanos),
        ("update-maintain", &latency.update_maintain_nanos),
        ("update-access", &latency.update_access_nanos),
        ("checkpoint-write", &latency.checkpoint_write_nanos),
        ("disk-read", &latency.disk_read_nanos),
    ] {
        if hist.is_empty() {
            continue;
        }
        writeln!(out, "latency {name:<17} {}", summarize(hist)).map_err(|e| io_err("stdout", e))?;
    }
    Ok(())
}

fn render_result(alg: &dyn CtupAlgorithm, out: &mut dyn Write) -> Result<(), CliError> {
    let mut text = String::new();
    for entry in alg.result() {
        let _ = writeln!(
            text,
            "  place {:>6}  safety {:>4}",
            entry.place.0, entry.safety
        );
    }
    write!(out, "{text}").map_err(|e| io_err("stdout", e))?;
    Ok(())
}

fn report_costs(alg: &dyn CtupAlgorithm, out: &mut dyn Write) -> Result<(), CliError> {
    let m = alg.metrics();
    let n = m.updates_processed.max(1);
    writeln!(
        out,
        "costs: {:.1} us/update | {:.3} cells accessed/update | {} places maintained | {} result changes",
        (m.maintain_nanos + m.access_nanos) as f64 / n as f64 / 1e3,
        m.cells_accessed as f64 / n as f64,
        m.maintained_now,
        m.result_changes,
    )
    .map_err(|e| io_err("stdout", e))?;
    writeln!(
        out,
        "work: {} places loaded | lb +{}/-{} ({} suppressed by DOO) | {} cells darkened | {} maintained at peak | dechash {}",
        m.places_loaded,
        m.lb_increments,
        m.lb_decrements,
        m.lb_decrements_suppressed,
        m.cells_darkened,
        m.maintained_peak,
        m.dechash_len,
    )
    .map_err(|e| io_err("stdout", e))?;
    Ok(())
}

/// `ctup run` — generate a workload (or load places from a snapshot),
/// monitor it, and report the final result and costs.
pub fn run(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["events", "no-doo"])?;
    flags.reject_unknown(&[
        "algorithm",
        "updates",
        "units",
        "places",
        "granularity",
        "seed",
        "k",
        "delta",
        "radius",
        "threshold",
        "places-file",
        "events",
        "no-doo",
        "shards",
        "cell-cache-pages",
        "layout",
    ])?;
    let params = common_params(&flags)?;
    let engine = engine_params(&flags)?;
    let updates: usize = flags.get("updates", 1_000)?;
    let algorithm_name = flags.get_str("algorithm").unwrap_or("opt").to_string();

    // Workload: units always come from the road-network simulation; places
    // come from a snapshot file when given, otherwise they are generated.
    let mut workload = Workload::generate(WorkloadParams {
        num_units: params.units,
        places: PlaceGenConfig {
            count: params.places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        ..WorkloadParams::default()
    });
    let places = match flags.get_str("places-file") {
        Some(path) => snapshot::load_places(Path::new(path))
            .map_err(|e| io_err(&format!("loading {path}"), e))?,
        None => workload.places_vec(),
    };
    let num_places = places.len();
    let store: Arc<dyn PlaceStore> = maybe_cache(
        Arc::new(CellLocalStore::build(
            Grid::unit_square(params.granularity),
            places,
        )),
        engine.cell_cache_pages,
    );
    let unit_positions = workload.unit_positions();

    let mut alg = build_algorithm(
        &algorithm_name,
        params.config,
        Arc::clone(&store),
        &unit_positions,
        engine.shards,
        engine.layout,
    )?;
    writeln!(
        out,
        "monitoring {num_places} places with {} units using {} (init {:.1} ms)",
        params.units,
        alg.name(),
        alg.init_stats().wall.as_secs_f64() * 1e3
    )
    .map_err(|e| io_err("stdout", e))?;

    let mut latency = LatencySnapshot::default();
    // The sharded engine records per-shard latency itself; recording the
    // run loop's view as well would double-count every update.
    let records_internally = alg.internal_latency().is_some();
    if flags.switch("events") {
        let mut server = Server::new(ServerAdapter(alg));
        for update in workload.next_updates(updates) {
            let (events, stats) = server
                .ingest(LocationUpdate {
                    unit: UnitId(update.object),
                    new: update.to,
                })
                .map_err(update_err)?;
            if !records_internally {
                record_latency(&mut latency, &stats);
            }
            for event in events {
                let line = match event {
                    MonitorEvent::Entered { place, safety } => {
                        format!("ALERT place {} (safety {safety})", place.0)
                    }
                    MonitorEvent::Left { place } => format!("clear place {}", place.0),
                    MonitorEvent::SafetyChanged { place, old, new } => {
                        format!("place {} safety {old} -> {new}", place.0)
                    }
                };
                writeln!(out, "  {line}").map_err(|e| io_err("stdout", e))?;
            }
        }
        let alg = server.into_algorithm().0;
        finish_run(alg.as_ref(), &store, latency, out)?;
    } else {
        for update in workload.next_updates(updates) {
            let stats = alg
                .handle_update(LocationUpdate {
                    unit: UnitId(update.object),
                    new: update.to,
                })
                .map_err(update_err)?;
            if !records_internally {
                record_latency(&mut latency, &stats);
            }
        }
        finish_run(alg.as_ref(), &store, latency, out)?;
    }
    Ok(())
}

/// Newtype so a boxed algorithm can live inside `Server` (which is generic).
struct ServerAdapter(Box<dyn CtupAlgorithm>);

impl CtupAlgorithm for ServerAdapter {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn config(&self) -> &CtupConfig {
        self.0.config()
    }
    fn handle_update(
        &mut self,
        update: LocationUpdate,
    ) -> Result<ctup_core::UpdateStats, StorageError> {
        self.0.handle_update(update)
    }
    fn result(&self) -> Vec<ctup_core::TopKEntry> {
        self.0.result()
    }
    fn sk(&self) -> Option<ctup_core::Safety> {
        self.0.sk()
    }
    fn metrics(&self) -> &ctup_core::Metrics {
        self.0.metrics()
    }
    fn init_stats(&self) -> &ctup_core::InitStats {
        self.0.init_stats()
    }
    fn unit_position(&self, unit: UnitId) -> ctup_spatial::Point {
        self.0.unit_position(unit)
    }
    fn num_units(&self) -> usize {
        self.0.num_units()
    }
    fn internal_latency(&self) -> Option<LatencySnapshot> {
        self.0.internal_latency()
    }
}

fn finish_run(
    alg: &dyn CtupAlgorithm,
    store: &Arc<dyn PlaceStore>,
    latency: LatencySnapshot,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    writeln!(out, "final result:").map_err(|e| io_err("stdout", e))?;
    render_result(alg, out)?;
    report_costs(alg, out)?;
    let snapshot = unified_snapshot(alg, store, latency);
    report_latency(&snapshot.latency, out)?;
    Ok(())
}

/// `ctup run-opt` — like `run` with OptCTUP, plus checkpoint support.
pub fn run_opt(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["no-doo"])?;
    flags.reject_unknown(&[
        "updates",
        "units",
        "places",
        "granularity",
        "seed",
        "k",
        "delta",
        "radius",
        "threshold",
        "checkpoint-out",
        "no-doo",
    ])?;
    let params = common_params(&flags)?;
    let updates: usize = flags.get("updates", 1_000)?;
    let mut workload = Workload::generate(WorkloadParams {
        num_units: params.units,
        places: PlaceGenConfig {
            count: params.places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(params.granularity),
        workload.places_vec(),
    ));
    let unit_positions = workload.unit_positions();
    let mut alg =
        OptCtup::new(params.config, Arc::clone(&store), &unit_positions).map_err(init_err)?;
    let mut latency = LatencySnapshot::default();
    for update in workload.next_updates(updates) {
        let stats = alg
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .map_err(update_err)?;
        record_latency(&mut latency, &stats);
    }
    finish_run(&alg, &store, latency, out)?;
    if let Some(path) = flags.get_str("checkpoint-out") {
        let file = File::create(path).map_err(|e| io_err(&format!("creating {path}"), e))?;
        alg.checkpoint()
            .write(BufWriter::new(file))
            .map_err(|e| io_err(&format!("writing {path}"), e))?;
        writeln!(out, "checkpoint written to {path}").map_err(|e| io_err("stdout", e))?;
    }
    Ok(())
}

/// `ctup resume` — restore an OptCTUP monitor from a checkpoint and keep
/// monitoring the (regenerated) update stream.
pub fn resume(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&[
        "checkpoint",
        "updates",
        "units",
        "places",
        "granularity",
        "seed",
        "skip",
    ])?;
    let path = flags
        .get_str("checkpoint")
        .ok_or_else(|| CliError("--checkpoint <file> is required".into()))?
        .to_string();
    let file = File::open(&path).map_err(|e| io_err(&format!("opening {path}"), e))?;
    let checkpoint = Checkpoint::read(BufReader::new(file))
        .map_err(|e| io_err(&format!("reading {path}"), e))?;

    let units: u32 = flags.get("units", checkpoint.unit_positions.len() as u32)?;
    if units as usize != checkpoint.unit_positions.len() {
        return Err(CliError(format!(
            "checkpoint has {} units but --units {units} was given",
            checkpoint.unit_positions.len()
        )));
    }
    let params = CommonParams {
        units,
        places: flags.get("places", 15_000)?,
        granularity: flags.get("granularity", 10)?,
        seed: flags.get("seed", 0xC7)?,
        config: checkpoint.config.clone(),
    };
    let mut workload = Workload::generate(WorkloadParams {
        num_units: params.units,
        places: PlaceGenConfig {
            count: params.places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        ..WorkloadParams::default()
    });
    // Fast-forward the deterministic stream to where the primary stopped.
    let skip: usize = flags.get("skip", 0)?;
    if skip > 0 {
        workload.next_updates(skip);
    }
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(params.granularity),
        workload.places_vec(),
    ));
    let mut alg = OptCtup::restore(checkpoint, Arc::clone(&store))
        .map_err(|e| CliError(format!("restoring {path}: {e}")))?;
    writeln!(out, "resumed from {path}; continuing monitoring").map_err(|e| io_err("stdout", e))?;
    let updates: usize = flags.get("updates", 1_000)?;
    let mut latency = LatencySnapshot::default();
    for update in workload.next_updates(updates) {
        let stats = alg
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .map_err(update_err)?;
        record_latency(&mut latency, &stats);
    }
    finish_run(&alg, &store, latency, out)?;
    Ok(())
}

/// `ctup chaos` — run the supervised pipeline over a deliberately degraded
/// feed (seeded drops, duplicates, reordering, corruption, injected worker
/// panics) and a deliberately faulty disk (transient read errors, torn page
/// writes, bit flips), and report the resilience and storage counters next
/// to the surviving result. With `--state-dir` the checkpoints are durable;
/// `--kill-at` simulates a process death and `--recover` resumes from the
/// surviving slot and journal.
pub fn chaos(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["no-doo", "recover", "tear-slot", "self-heal", "kill-repeat"],
    )?;
    flags.reject_unknown(&[
        "updates",
        "units",
        "places",
        "granularity",
        "seed",
        "k",
        "delta",
        "radius",
        "threshold",
        "no-doo",
        "drop",
        "dup",
        "reorder",
        "reorder-window",
        "corrupt",
        "delay",
        "max-delay",
        "fault-seed",
        "panic-at",
        "lease-ttl",
        "checkpoint-every",
        "max-restarts",
        "disk-faults",
        "disk-seed",
        "torn-writes",
        "bit-flips",
        "state-dir",
        "kill-at",
        "recover",
        "tear-slot",
        "flight-recorder",
        "flight-recorder-keep",
        "self-heal",
        "kill-repeat",
        "max-revives",
        "layout",
    ])?;
    let params = common_params(&flags)?;
    let engine = engine_params(&flags)?;
    let updates: usize = flags.get("updates", 1_000)?;
    let panic_at: Vec<u64> = match flags.get_str("panic-at") {
        None => Vec::new(),
        Some(text) => text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .map_err(|e| CliError(format!("bad --panic-at entry {s:?}: {e}")))
            })
            .collect::<Result<_, _>>()?,
    };
    let plan = FaultPlan {
        seed: flags.get("fault-seed", params.seed ^ 0xFA17)?,
        drop_prob: flags.get("drop", 0.05)?,
        dup_prob: flags.get("dup", 0.02)?,
        reorder_prob: flags.get("reorder", 0.2)?,
        reorder_window: flags.get("reorder-window", 4)?,
        corrupt_prob: flags.get("corrupt", 0.02)?,
        delay_prob: flags.get("delay", 0.02)?,
        max_delay: flags.get("max-delay", 16)?,
        panic_at,
        disk: DiskFaultPlan {
            seed: flags.get("disk-seed", params.seed ^ 0xD15C)?,
            read_error_prob: flags.get("disk-faults", 0.0)?,
            torn_writes: flags.get("torn-writes", 0)?,
            bit_flips: flags.get("bit-flips", 0)?,
            ..DiskFaultPlan::default()
        },
    };

    let mut workload = Workload::generate(WorkloadParams {
        num_units: params.units,
        places: PlaceGenConfig {
            count: params.places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        ..WorkloadParams::default()
    });
    let grid = Grid::unit_square(params.granularity);
    // A faulty disk only when asked for: the plain chaos path keeps the
    // in-memory store so the link faults are isolated from the disk faults.
    let store: Arc<dyn PlaceStore> = if plan.disk.is_active() {
        let disk = FaultDisk::build_with_layout(
            grid,
            workload.places_vec(),
            0,
            plan.disk.clone(),
            RetryPolicy::default(),
            engine.layout,
        );
        writeln!(
            out,
            "faulty disk ({} layout): {} pages corrupted at build ({} cells unreadable), transient read error prob {}",
            engine.layout,
            disk.corrupted_pages().len(),
            disk.corrupted_cells().len(),
            plan.disk.read_error_prob,
        )
        .map_err(|e| io_err("stdout", e))?;
        Arc::new(disk)
    } else {
        Arc::new(CellLocalStore::build(grid, workload.places_vec()))
    };
    let unit_positions = workload.unit_positions();
    let clean: Vec<LocationUpdate> = workload
        .next_updates(updates)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect();

    // Corruption kinds cycle deterministically: NaN coordinate, position far
    // outside the space, unknown unit. All three must die at the ingest gate.
    let mut kind: u8 = 0;
    let (degraded, log) = plan.apply(stamp_stream(clean), move |report, _| {
        kind = kind.wrapping_add(1);
        match kind % 3 {
            0 => report.update.new = Point::new(f64::NAN, report.update.new.y),
            1 => report.update.new = Point::new(1e3, 1e3),
            _ => report.update.unit = UnitId(u32::MAX),
        }
    });
    writeln!(
        out,
        "degraded feed: {} of {updates} messages delivered ({} dropped, {} duplicated, {} reordered, {} delayed, {} corrupted)",
        log.emitted, log.dropped, log.duplicated, log.reordered, log.delayed, log.corrupted,
    )
    .map_err(|e| io_err("stdout", e))?;

    let lease_ttl: u64 = flags.get("lease-ttl", 0)?;
    let kill_at: u64 = flags.get("kill-at", 0)?;
    let state_dir = flags.get_str("state-dir").map(PathBuf::from);
    let resilience = ResilienceConfig {
        lease_ttl: (lease_ttl > 0).then_some(lease_ttl),
        checkpoint_every: flags.get("checkpoint-every", 256)?,
        max_restarts: flags.get("max-restarts", 8)?,
        panic_at: plan.panic_at.clone(),
        state_dir: state_dir.clone(),
        kill_at: (kill_at > 0).then_some(kill_at),
        tear_slot_on_kill: flags.switch("tear-slot"),
        flight_recorder_capacity: flags.get("flight-recorder", 256)?,
        flight_recorder_keep: flags.get("flight-recorder-keep", 4)?,
        spans: None,
    };
    if flags.switch("self-heal") {
        return chaos_self_heal(
            &flags,
            params.config,
            resilience,
            store,
            unit_positions,
            degraded,
            out,
        );
    }
    let pipeline = if flags.switch("recover") {
        let dir =
            state_dir.ok_or_else(|| CliError("--recover requires --state-dir <dir>".into()))?;
        writeln!(out, "recovering from {}", dir.display()).map_err(|e| io_err("stdout", e))?;
        SupervisedPipeline::recover_from_dir::<OptCtup>(
            &dir,
            Arc::clone(&store),
            resilience,
            degraded.len().max(1),
        )
        .map_err(|e| CliError(format!("recovering from {}: {e}", dir.display())))?
    } else {
        let monitor =
            OptCtup::new(params.config, Arc::clone(&store), &unit_positions).map_err(init_err)?;
        SupervisedPipeline::spawn(monitor, resilience, degraded.len().max(1))
    };
    for &report in &degraded {
        if pipeline.send(report).is_err() {
            break; // supervisor gave up; its final report still drains below
        }
    }
    let report = pipeline.shutdown();

    let r = &report.metrics.resilience;
    writeln!(
        out,
        "supervised run: {} reports in, {} effective updates, {} events out{}",
        report.reports_received,
        report.updates_processed,
        report.events_emitted,
        if report.gave_up {
            " — GAVE UP (restart budget exhausted)"
        } else if report.killed {
            " — KILLED (simulated process death; rerun with --recover)"
        } else {
            ""
        },
    )
    .map_err(|e| io_err("stdout", e))?;
    writeln!(out, "resilience counters:").map_err(|e| io_err("stdout", e))?;
    for (name, value) in [
        ("rejected non-finite", r.rejected_non_finite),
        ("rejected out-of-space", r.rejected_out_of_space),
        ("rejected unknown-unit", r.rejected_unknown_unit),
        ("stale dropped", r.stale_dropped),
        ("duplicates dropped", r.duplicates_dropped),
        ("lease expiries", r.lease_expiries),
        ("lease reinstates", r.lease_reinstates),
        ("worker panics", r.worker_panics),
        ("storage errors", r.storage_errors),
        ("worker restarts", r.worker_restarts),
        ("updates replayed", r.updates_replayed),
        ("checkpoints taken", r.checkpoints_taken),
        ("events suppressed", r.events_suppressed),
    ] {
        writeln!(out, "  {name:<22} {value}").map_err(|e| io_err("stdout", e))?;
    }
    let s = store.stats().snapshot();
    writeln!(out, "storage counters:").map_err(|e| io_err("stdout", e))?;
    for (name, value) in [
        ("cell reads", s.cell_reads),
        ("records read", s.records_read),
        ("pages read", s.pages_read),
        ("io nanos", s.io_nanos),
        ("read retries", s.read_retries),
        ("read giveups", s.read_giveups),
        ("corrupt pages", s.corrupt_pages),
        ("cache hits", s.cache_hits),
        ("cache misses", s.cache_misses),
        ("cache evictions", s.cache_evictions),
        ("cache prefetch hits", s.cache_prefetch_hits),
    ] {
        writeln!(out, "  {name:<22} {value}").map_err(|e| io_err("stdout", e))?;
    }
    writeln!(
        out,
        "  {:<22} {:.6}",
        "cache hit ratio",
        s.cache_hit_ratio()
    )
    .map_err(|e| io_err("stdout", e))?;
    report_latency(&report.latency, out)?;
    if let Some(path) = &report.flight_recorder_path {
        writeln!(out, "flight recorder dumped to {}", path.display())
            .map_err(|e| io_err("stdout", e))?;
    }
    writeln!(out, "final result:").map_err(|e| io_err("stdout", e))?;
    let mut text = String::new();
    for entry in &report.final_result {
        let _ = writeln!(
            text,
            "  place {:>6}  safety {:>4}",
            entry.place.0, entry.safety
        );
    }
    write!(out, "{text}").map_err(|e| io_err("stdout", e))?;
    Ok(())
}

/// The level-1 self-heal variant of `chaos`: the degraded feed is driven
/// through a loopback front door whose pump revives the killed engine
/// from the durable slots instead of parking in degraded mode. With
/// `--kill-repeat` every revived engine is re-armed to die again, so the
/// crash storm must trip the circuit breaker into sticky degraded mode.
fn chaos_self_heal(
    flags: &Flags,
    config: CtupConfig,
    resilience: ResilienceConfig,
    store: Arc<dyn PlaceStore>,
    unit_positions: Vec<Point>,
    degraded: Vec<StampedUpdate>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let dir = resilience
        .state_dir
        .clone()
        .ok_or_else(|| CliError("--self-heal requires --state-dir <dir>".into()))?;
    let kill_at = resilience
        .kill_at
        .ok_or_else(|| CliError("--self-heal requires --kill-at <n>".into()))?;
    let capacity = degraded.len().max(1);
    let monitor = OptCtup::new(config, Arc::clone(&store), &unit_positions).map_err(init_err)?;
    let initial = monitor.result();
    let pipeline = SupervisedPipeline::spawn(monitor, resilience.clone(), capacity);
    let sink = Arc::new(PipelineSink::new(pipeline, initial));
    let rearm_kill_every = flags.switch("kill-repeat").then_some(kill_at.max(1));
    let plan = RecoveryPlan {
        reviver: Arc::new(DirReviver {
            dir,
            store: Arc::clone(&store),
            resilience: ResilienceConfig {
                kill_at: None,
                ..resilience.clone()
            },
            capacity,
            rearm_kill_every,
            next_kill: std::sync::atomic::AtomicU64::new(
                kill_at.saturating_add(rearm_kill_every.unwrap_or(0)),
            ),
        }),
        config: RecoveryConfig {
            max_restarts: flags.get("max-revives", 3)?,
            backoff_base: std::time::Duration::from_millis(10),
            backoff_max: std::time::Duration::from_millis(100),
            ..RecoveryConfig::default()
        },
    };
    let server = IngestServer::spawn_with_recovery(
        "127.0.0.1:0",
        NetServerConfig::default(),
        sink,
        Some(plan),
    )
    .map_err(|e| io_err("binding the loopback front door", e))?;
    let mut client = FeedClient::new(
        Box::new(TcpDialer::new(server.local_addr())),
        ClientConfig::default(),
    );
    for &report in &degraded {
        client.enqueue(report);
    }
    client
        .drive(std::time::Duration::from_secs(120))
        .map_err(|e| CliError(format!("loopback feed: {e}")))?;
    let feed = client.finish();
    // Let an in-flight revival finish (or the storm trip the breaker)
    // before the final accounting is read.
    let settle = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while std::time::Instant::now() < settle {
        if !server.degraded() || server.breaker_tripped() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let tripped = server.breaker_tripped();
    let still_degraded = server.degraded();
    let n = server.shutdown();
    writeln!(
        out,
        "self-heal: {} offered, {} acked, {} shed; {} engine restarts, breaker tripped: {tripped}, degraded at exit: {still_degraded}",
        feed.enqueued,
        feed.acked,
        feed.shed_total(),
        n.engine_restarts,
    )
    .map_err(|e| io_err("stdout", e))?;
    Ok(())
}

/// Runs the deterministic workload selected by the shared flags and
/// returns the unified observability snapshot of the finished run (the
/// engine behind `report` and `serve-metrics`).
fn run_workload_for_snapshot(flags: &Flags) -> Result<Snapshot, CliError> {
    let params = common_params(flags)?;
    let engine = engine_params(flags)?;
    let updates: usize = flags.get("updates", 1_000)?;
    let algorithm_name = flags.get_str("algorithm").unwrap_or("opt").to_string();
    let mut workload = Workload::generate(WorkloadParams {
        num_units: params.units,
        places: PlaceGenConfig {
            count: params.places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = maybe_cache(
        Arc::new(CellLocalStore::build(
            Grid::unit_square(params.granularity),
            workload.places_vec(),
        )),
        engine.cell_cache_pages,
    );
    let unit_positions = workload.unit_positions();
    let mut alg = build_algorithm(
        &algorithm_name,
        params.config,
        Arc::clone(&store),
        &unit_positions,
        engine.shards,
        engine.layout,
    )?;
    let records_internally = alg.internal_latency().is_some();
    let mut latency = LatencySnapshot::default();
    for update in workload.next_updates(updates) {
        let stats = alg
            .handle_update(LocationUpdate {
                unit: UnitId(update.object),
                new: update.to,
            })
            .map_err(update_err)?;
        if !records_internally {
            record_latency(&mut latency, &stats);
        }
    }
    Ok(unified_snapshot(alg.as_ref(), &store, latency))
}

const SNAPSHOT_FLAGS: &[&str] = &[
    "algorithm",
    "updates",
    "units",
    "places",
    "granularity",
    "seed",
    "k",
    "delta",
    "radius",
    "threshold",
    "no-doo",
    "shards",
    "cell-cache-pages",
    "layout",
];

/// `ctup report` — run a workload and emit the unified metrics snapshot
/// (every counter, gauge and latency histogram) as human-readable text,
/// JSON, or Prometheus exposition text.
pub fn report(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["no-doo"])?;
    let mut known: Vec<&str> = SNAPSHOT_FLAGS.to_vec();
    known.extend(["format", "out"]);
    flags.reject_unknown(&known)?;
    let snapshot = run_workload_for_snapshot(&flags)?;
    let format = flags.get_str("format").unwrap_or("text");
    let rendered = match format {
        "text" => snapshot.render_text(),
        "json" => {
            let mut json = snapshot.render_json();
            json.push('\n');
            json
        }
        "prom" => snapshot.render_prom(),
        other => {
            return Err(CliError(format!(
                "unknown --format {other:?} (expected text, json or prom)"
            )))
        }
    };
    match flags.get_str("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| io_err(&format!("writing {path}"), e))?;
            writeln!(out, "report written to {path}").map_err(|e| io_err("stdout", e))?;
        }
        None => write!(out, "{rendered}").map_err(|e| io_err("stdout", e))?,
    }
    Ok(())
}

/// `ctup serve-metrics` — run a workload, then serve its snapshot as
/// Prometheus exposition text on `/metrics` for `--serve-secs` seconds.
pub fn serve_metrics(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["no-doo"])?;
    let mut known: Vec<&str> = SNAPSHOT_FLAGS.to_vec();
    known.extend(["addr", "serve-secs"]);
    flags.reject_unknown(&known)?;
    let snapshot = run_workload_for_snapshot(&flags)?;
    let addr = flags.get_str("addr").unwrap_or("127.0.0.1:9184");
    let serve_secs: u64 = flags.get("serve-secs", 300)?;
    let server = MetricsServer::bind(addr).map_err(|e| io_err(&format!("binding {addr}"), e))?;
    server.publisher().publish(snapshot.render_prom());
    writeln!(
        out,
        "serving Prometheus metrics at http://{}/metrics for {serve_secs}s",
        server.local_addr()
    )
    .map_err(|e| io_err("stdout", e))?;
    out.flush().map_err(|e| io_err("stdout", e))?;
    std::thread::sleep(std::time::Duration::from_secs(serve_secs));
    server.shutdown();
    Ok(())
}

/// The level-1 self-heal reviver: rebuilds the engine sink from the
/// durable A/B slot and journal tail in `dir`. Used by the front door's
/// pump (behind `ctup serve --state-dir` and `ctup chaos --self-heal`)
/// when the engine dies.
struct DirReviver {
    dir: PathBuf,
    store: Arc<dyn PlaceStore>,
    resilience: ResilienceConfig,
    capacity: usize,
    /// When set, every revived engine is re-armed to die again this many
    /// effective updates past the previous kill point — a seeded crash
    /// storm that must trip the circuit breaker.
    rearm_kill_every: Option<u64>,
    /// The next kill point of the storm (effective sequence numbers are
    /// monotone across recoveries, so each revival must aim further out).
    next_kill: std::sync::atomic::AtomicU64,
}

impl EngineReviver for DirReviver {
    fn revive(&self) -> Result<Arc<dyn EngineSink>, String> {
        let mut resilience = self.resilience.clone();
        if let Some(step) = self.rearm_kill_every {
            let at = self
                .next_kill
                .fetch_add(step, std::sync::atomic::Ordering::SeqCst);
            resilience.kill_at = Some(at);
        }
        // Restore once just for the starting top-k: pipeline events only
        // carry changes, so the sink must be seeded with the state the
        // replayed engine resumes from.
        let (checkpoint, _journal) = ctup_core::DurableState::load(&self.dir)
            .map_err(|e| format!("loading {}: {e}", self.dir.display()))?;
        let preview = OptCtup::restore(checkpoint, Arc::clone(&self.store))
            .map_err(|e| format!("restoring {}: {e}", self.dir.display()))?;
        let initial = preview.result();
        drop(preview);
        let pipeline = SupervisedPipeline::recover_from_dir::<OptCtup>(
            &self.dir,
            Arc::clone(&self.store),
            resilience,
            self.capacity,
        )
        .map_err(|e| format!("recovering from {}: {e}", self.dir.display()))?;
        Ok(Arc::new(PipelineSink::new(pipeline, initial)))
    }
}

/// Dials through a [`ChaosStream`] so `ctup feed` can rehearse faulty
/// links: each attempt's behaviour comes off the seeded plan.
struct ChaosDialer {
    addr: std::net::SocketAddr,
    plan: NetFaultPlan,
    attempt: u64,
}

impl Dialer for ChaosDialer {
    fn dial(&mut self) -> std::io::Result<Box<dyn Conn>> {
        let script = self.plan.script(self.attempt);
        self.attempt += 1;
        let stream =
            std::net::TcpStream::connect_timeout(&self.addr, std::time::Duration::from_secs(2))?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(25)))?;
        stream.set_write_timeout(Some(std::time::Duration::from_millis(25)))?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(ChaosStream::new(stream, script)))
    }
}

/// Prints the front door's full accounting: every [`NetStatsSnapshot`]
/// counter and gauge, so nothing the door does is invisible from the CLI.
fn report_net(n: &NetStatsSnapshot, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "net counters:").map_err(|e| io_err("stdout", e))?;
    for (name, value) in [
        ("connections accepted", n.connections_accepted),
        ("connections rejected", n.connections_rejected),
        ("sessions opened", n.sessions_opened),
        ("sessions resumed", n.sessions_resumed),
        ("sessions evicted", n.sessions_evicted),
        ("frames received", n.frames_received),
        ("frames malformed", n.frames_malformed),
        ("partial disconnects", n.partial_disconnects),
        ("reports accepted", n.reports_accepted),
        ("replays suppressed", n.replays_suppressed),
        ("shed: queue full", n.shed_queue_full),
        ("shed: deadline", n.shed_deadline_exceeded),
        ("shed: session quota", n.shed_session_quota),
        ("shed: engine degraded", n.shed_engine_degraded),
        ("shed total", n.shed_total()),
        ("degraded entries", n.degraded_entries),
        ("snapshots pushed", n.snapshots_pushed),
        ("engine restarts", n.engine_restarts),
        ("failovers", n.failovers),
        ("queue depth", n.queue_depth),
        ("sessions active", n.sessions_active),
        ("degraded", u64::from(n.degraded)),
        ("degraded since ms", n.degraded_since_ms),
        ("epoch", n.epoch),
        ("spans dropped", n.spans_dropped),
        ("traces sampled", n.traces_sampled),
        ("exemplars", n.exemplars),
    ] {
        writeln!(out, "  {name:<22} {value}").map_err(|e| io_err("stdout", e))?;
    }
    if !n.ingest_wait_nanos.is_empty() {
        writeln!(
            out,
            "  {:<22} {}",
            "ingest wait",
            summarize(&n.ingest_wait_nanos)
        )
        .map_err(|e| io_err("stdout", e))?;
    }
    for e in &n.ingest_wait_exemplars {
        writeln!(
            out,
            "  exemplar: bucket {:>2}  wait {:>10}ns  trace {:#018x}",
            e.bucket, e.wait_nanos, e.trace
        )
        .map_err(|e| io_err("stdout", e))?;
    }
    Ok(())
}

/// `ctup serve` — stand up the networked ingest front door: a sessioned
/// wire-protocol server feeding a supervised OptCTUP pipeline, with the
/// metrics endpoint (`/metrics` + `/healthz`) alongside. `--updates N`
/// first drives N workload updates through a loopback feed client, so the
/// served numbers (and the exactly-once accounting printed at shutdown)
/// are non-trivial; `--serve-secs 0` exits right after.
pub fn serve(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["no-doo"])?;
    flags.reject_unknown(&[
        "units",
        "places",
        "granularity",
        "seed",
        "k",
        "threshold",
        "delta",
        "radius",
        "no-doo",
        "updates",
        "addr",
        "metrics-addr",
        "serve-secs",
        "queue-capacity",
        "session-quota",
        "ingest-deadline-ms",
        "snapshot-push-ms",
        "kill-at",
        "state-dir",
        "checkpoint-every",
        "epoch",
        "standby",
        "span-dump",
        "trace-every",
    ])?;
    let params = common_params(&flags)?;
    let updates: usize = flags.get("updates", 0)?;
    let addr = flags.get_str("addr").unwrap_or("127.0.0.1:9710");
    let metrics_addr = flags.get_str("metrics-addr").unwrap_or("127.0.0.1:9184");
    let serve_secs: u64 = flags.get("serve-secs", 300)?;
    let kill_at: u64 = flags.get("kill-at", 0)?;
    let state_dir = flags.get_str("state-dir").map(PathBuf::from);
    let epoch: u64 = flags.get("epoch", 1)?;

    let mut net_config = NetServerConfig::default();
    net_config.admission.queue_capacity = flags.get("queue-capacity", 4096)?;
    net_config.admission = net_config.admission.normalized();
    net_config.session.session_quota = flags.get("session-quota", 256)?;
    net_config.admission.ingest_deadline =
        std::time::Duration::from_millis(flags.get("ingest-deadline-ms", 2_000)?);
    net_config.snapshot_push_interval =
        std::time::Duration::from_millis(flags.get("snapshot-push-ms", 250)?);
    net_config.epoch = epoch;
    net_config.state_dir = state_dir.clone();

    // `--span-dump FILE` arms end-to-end causal tracing: one shared sink
    // for the door, the engine worker and the loopback feed, so a report's
    // client-send → … → snapshot-publish chain lands in one JSONL dump.
    let span_dump = flags.get_str("span-dump").map(PathBuf::from);
    let trace_every: u64 = flags.get("trace-every", 1)?;
    let spans: Option<Arc<SpanSink>> = span_dump.as_ref().map(|_| Arc::new(SpanSink::new(65_536)));
    net_config.spans = spans.clone();
    net_config.trace_sample_every = trace_every;
    net_config.trace_seed = params.seed;

    let mut workload = Workload::generate(WorkloadParams {
        num_units: params.units,
        places: PlaceGenConfig {
            count: params.places,
            ..PlaceGenConfig::default()
        },
        seed: params.seed,
        ..WorkloadParams::default()
    });
    let store: Arc<dyn PlaceStore> = Arc::new(CellLocalStore::build(
        Grid::unit_square(params.granularity),
        workload.places_vec(),
    ));
    let unit_positions = workload.unit_positions();

    // `--standby <primary>`: no local engine of our own yet — bootstrap
    // from the primary's shipped checkpoint, tail its WAL, and take over
    // (behind the epoch fence) if it goes dark.
    if flags.get_str("standby").is_some() {
        return serve_standby(&flags, net_config, state_dir, store, spans, span_dump, out);
    }

    let monitor =
        OptCtup::new(params.config, Arc::clone(&store), &unit_positions).map_err(init_err)?;
    let initial = monitor.result();
    let resilience = ResilienceConfig {
        kill_at: (kill_at > 0).then_some(kill_at),
        state_dir: state_dir.clone(),
        checkpoint_every: flags.get("checkpoint-every", 256)?,
        spans: spans.clone(),
        ..ResilienceConfig::default()
    };
    let pipeline = SupervisedPipeline::spawn(monitor, resilience.clone(), 4096);
    let sink = Arc::new(PipelineSink::new(pipeline, initial));
    let engine: Arc<dyn EngineSink> = Arc::clone(&sink) as Arc<dyn EngineSink>;
    // With durable state the door revives a dead engine in-process
    // (level-1 self-heal) instead of parking in degraded mode.
    let recovery = state_dir.as_ref().map(|dir| RecoveryPlan {
        reviver: Arc::new(DirReviver {
            dir: dir.clone(),
            store: Arc::clone(&store),
            resilience: ResilienceConfig {
                kill_at: None,
                ..resilience.clone()
            },
            capacity: 4096,
            rearm_kill_every: None,
            next_kill: std::sync::atomic::AtomicU64::new(0),
        }),
        config: RecoveryConfig::default(),
    });
    let server = IngestServer::spawn_with_recovery(addr, net_config, engine, recovery)
        .map_err(|e| io_err(&format!("binding ingest address {addr}"), e))?;
    let metrics = MetricsServer::bind(metrics_addr)
        .map_err(|e| io_err(&format!("binding metrics address {metrics_addr}"), e))?;
    writeln!(
        out,
        "ingest front door at {} | metrics at http://{}/metrics | health at /healthz",
        server.local_addr(),
        metrics.local_addr(),
    )
    .map_err(|e| io_err("stdout", e))?;
    out.flush().map_err(|e| io_err("stdout", e))?;

    if updates > 0 {
        let clean: Vec<LocationUpdate> = workload
            .next_updates(updates)
            .into_iter()
            .map(|u| LocationUpdate {
                unit: UnitId(u.object),
                new: u.to,
            })
            .collect();
        // The loopback feed shares the server's sink, so client-send spans
        // land in the same dump (and on the same clock anchor) as the rest
        // of the pipeline — this is what makes single-process end-to-end
        // analysis possible.
        let client_config = ClientConfig {
            spans: spans.clone(),
            trace_sample_every: trace_every,
            trace_seed: params.seed,
            ..ClientConfig::default()
        };
        let mut client =
            FeedClient::new(Box::new(TcpDialer::new(server.local_addr())), client_config);
        for &report in &stamp_stream(clean) {
            client.enqueue(report);
        }
        client
            .drive(std::time::Duration::from_secs(120))
            .map_err(|e| CliError(format!("loopback feed: {e}")))?;
        let stats = client.finish();
        writeln!(
            out,
            "loopback feed: {} offered, {} acked, {} shed, {} reconnects",
            stats.enqueued,
            stats.acked,
            stats.shed_total(),
            stats.reconnects,
        )
        .map_err(|e| io_err("stdout", e))?;
    }

    // Serve loop: refresh the exposition every second — the unified
    // snapshot (storage + net sections live; algorithm metrics arrive at
    // shutdown) plus the health body with the degraded flag.
    let started = std::time::Instant::now();
    loop {
        let snapshot = Snapshot::new(
            "opt-net",
            ctup_core::metrics::Metrics::default(),
            store.stats().snapshot(),
            LatencySnapshot::default(),
        )
        .with_net(server.stats().snapshot());
        metrics.publisher().publish(snapshot.render_prom());
        metrics.publisher().publish_health(server.health_body());
        if started.elapsed() >= std::time::Duration::from_secs(serve_secs) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(
            1_000.min(serve_secs.saturating_mul(1_000)),
        ));
    }

    let net = server.shutdown();
    metrics.shutdown();
    report_net(&net, out)?;
    if net.engine_restarts > 0 {
        writeln!(
            out,
            "engine self-healed {} time(s) from {}; the accounting below covers the first engine only",
            net.engine_restarts,
            state_dir
                .as_ref()
                .map(|d| d.display().to_string())
                .unwrap_or_default(),
        )
        .map_err(|e| io_err("stdout", e))?;
    }
    // The sink's only other holders were the server threads; shutdown()
    // joined them, but a straggling handler may still be dropping its
    // clone, so wait bounded rather than spinning forever.
    let mut sink = sink;
    let unwrap_deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let pipeline = loop {
        match Arc::try_unwrap(sink) {
            Ok(inner) => break inner.into_pipeline(),
            Err(back) => {
                if std::time::Instant::now() >= unwrap_deadline {
                    return Err(CliError(
                        "a connection handler failed to release the engine sink".into(),
                    ));
                }
                sink = back;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    };
    let report = pipeline.shutdown();
    let r = &report.metrics.resilience;
    writeln!(
        out,
        "exactly-once: {} accepted at the door, {} applied by the engine, {} duplicates dropped at the gate",
        net.reports_accepted, report.updates_processed, r.duplicates_dropped,
    )
    .map_err(|e| io_err("stdout", e))?;
    if report.killed {
        writeln!(
            out,
            "engine was killed (--kill-at); the door degraded gracefully"
        )
        .map_err(|e| io_err("stdout", e))?;
    }
    writeln!(out, "final result:").map_err(|e| io_err("stdout", e))?;
    let mut text = String::new();
    for entry in &report.final_result {
        let _ = writeln!(
            text,
            "  place {:>6}  safety {:>4}",
            entry.place.0, entry.safety
        );
    }
    write!(out, "{text}").map_err(|e| io_err("stdout", e))?;
    // Dump spans last: the engine worker keeps recording until
    // `pipeline.shutdown()` above, so an earlier dump would truncate the
    // apply/publish tails of the final traces.
    dump_spans(span_dump.as_deref(), spans.as_deref(), out)?;
    Ok(())
}

/// Writes the sink's spans to `path` as JSONL (the `--span-dump` file
/// `cargo xtask spancheck` and `ctup trace` consume). No-op without both.
fn dump_spans(
    path: Option<&Path>,
    spans: Option<&SpanSink>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (Some(path), Some(sink)) = (path, spans) else {
        return Ok(());
    };
    let dump = sink.dump_jsonl();
    let count = dump.lines().count();
    std::fs::write(path, dump)
        .map_err(|e| io_err(&format!("writing span dump {}", path.display()), e))?;
    writeln!(
        out,
        "span dump: {count} span(s) ({} sampled trace(s), {} dropped) written to {}",
        sink.sampled(),
        sink.dropped(),
        path.display()
    )
    .map_err(|e| io_err("stdout", e))?;
    Ok(())
}

/// The `--standby` arm of `serve`: follow the primary over the
/// replication stream, publish the follower's health (and, once promoted,
/// the promoted front door's health and metrics), and exit after
/// `--serve-secs`.
fn serve_standby(
    flags: &Flags,
    net_config: NetServerConfig,
    state_dir: Option<PathBuf>,
    store: Arc<dyn PlaceStore>,
    spans: Option<Arc<SpanSink>>,
    span_dump: Option<PathBuf>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let primary = flags.get_str("standby").unwrap_or_default();
    let primary_addr: std::net::SocketAddr = primary
        .parse()
        .map_err(|e| CliError(format!("bad --standby {primary:?}: {e}")))?;
    let addr = flags.get_str("addr").unwrap_or("127.0.0.1:0");
    let metrics_addr = flags.get_str("metrics-addr").unwrap_or("127.0.0.1:9184");
    let serve_secs: u64 = flags.get("serve-secs", 300)?;
    let standby_config = StandbyConfig {
        primary_ingest: primary_addr,
        serve_addr: addr.to_string(),
        net: net_config,
        resilience: ResilienceConfig {
            state_dir,
            // The standby's halves of replicated traces (standby-apply,
            // and the full pipeline once promoted) share the same sink.
            spans: spans.clone(),
            ..ResilienceConfig::default()
        },
        ..StandbyConfig::default()
    };
    let standby = StandbyServer::spawn::<OptCtup>(standby_config, Arc::clone(&store));
    let metrics = MetricsServer::bind(metrics_addr)
        .map_err(|e| io_err(&format!("binding metrics address {metrics_addr}"), e))?;
    writeln!(
        out,
        "warm standby following {primary_addr} | health at http://{}/healthz",
        metrics.local_addr(),
    )
    .map_err(|e| io_err("stdout", e))?;
    out.flush().map_err(|e| io_err("stdout", e))?;

    let started = std::time::Instant::now();
    let mut announced = false;
    loop {
        let status = standby.status();
        if let StandbyPhase::Failed(why) = &status.phase {
            return Err(CliError(format!("standby failed: {why}")));
        }
        match standby.promoted_health() {
            Some(body) => {
                metrics.publisher().publish_health(body);
                if let Some(net) = standby.promoted_net_snapshot() {
                    let snapshot = Snapshot::new(
                        "opt-net",
                        ctup_core::metrics::Metrics::default(),
                        store.stats().snapshot(),
                        LatencySnapshot::default(),
                    )
                    .with_net(net);
                    metrics.publisher().publish(snapshot.render_prom());
                }
                if !announced {
                    if let Some(promoted) = standby.promoted_addr() {
                        writeln!(
                            out,
                            "promoted: ingest front door at {promoted} (epoch {})",
                            status.epoch
                        )
                        .map_err(|e| io_err("stdout", e))?;
                        out.flush().map_err(|e| io_err("stdout", e))?;
                        announced = true;
                    }
                }
            }
            None => {
                let phase = match &status.phase {
                    StandbyPhase::Syncing => "syncing",
                    StandbyPhase::Following => "following",
                    StandbyPhase::Promoting => "promoting",
                    StandbyPhase::Promoted => "promoted",
                    StandbyPhase::Failed(_) => "failed",
                };
                metrics.publisher().publish_health(format!(
                    "{{\"status\":\"standby\",\"phase\":\"{phase}\",\"epoch\":{},\"wal_applied\":{},\"stale_rejected\":{}}}",
                    status.epoch, status.wal_applied, status.stale_rejected
                ));
            }
        }
        if started.elapsed() >= std::time::Duration::from_secs(serve_secs) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    let status = standby.status();
    writeln!(
        out,
        "standby exiting: epoch {}, {} wal appends applied, {} stale frames rejected",
        status.epoch, status.wal_applied, status.stale_rejected
    )
    .map_err(|e| io_err("stdout", e))?;
    standby.shutdown();
    metrics.shutdown();
    dump_spans(span_dump.as_deref(), spans.as_deref(), out)?;
    Ok(())
}

/// `ctup feed` — drive a deterministic workload into a running `ctup
/// serve` instance over the wire protocol, optionally through scripted
/// link faults (refused dials, mid-frame deaths, slowloris trickles) to
/// rehearse reconnect-and-replay against a live server.
pub fn feed(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&[
        "addr",
        "updates",
        "units",
        "places",
        "granularity",
        "seed",
        "rate-hz",
        "max-in-flight",
        "max-attempts",
        "refuse-per-mille",
        "die-per-mille",
        "slow-per-mille",
        "net-seed",
        "deadline-secs",
        "failover",
        "span-dump",
        "trace-every",
    ])?;
    let addr_raw = flags.get_str("addr").unwrap_or("127.0.0.1:9710");
    let addr: std::net::SocketAddr = addr_raw
        .parse()
        .map_err(|e| CliError(format!("bad --addr {addr_raw:?}: {e}")))?;
    let updates: usize = flags.get("updates", 1_000)?;
    let units: u32 = flags.get("units", 150)?;
    let places: u32 = flags.get("places", 15_000)?;
    let granularity: u32 = flags.get("granularity", 10)?;
    let seed: u64 = flags.get("seed", 0xC7)?;
    let rate_hz: f64 = flags.get("rate-hz", 0.0)?;
    let deadline_secs: u64 = flags.get("deadline-secs", 120)?;

    // `--span-dump` records this feeder's client-send spans (its halves of
    // the traces; the server records the rest in its own dump). The trace
    // ids stamped here use the workload seed, so the server-side spans of
    // a `serve --updates 0` + `feed` pair correlate by id.
    let span_dump = flags.get_str("span-dump").map(PathBuf::from);
    let spans: Option<Arc<SpanSink>> = span_dump.as_ref().map(|_| Arc::new(SpanSink::new(65_536)));
    let mut client_config = ClientConfig {
        max_in_flight: flags.get("max-in-flight", 128)?,
        spans: spans.clone(),
        trace_sample_every: flags.get("trace-every", 1)?,
        trace_seed: seed,
        ..ClientConfig::default()
    };
    client_config.backoff.max_attempts = flags.get("max-attempts", 8)?;
    let plan = NetFaultPlan {
        seed: flags.get("net-seed", 0xc4a0_5badu64)?,
        refuse_per_mille: flags.get("refuse-per-mille", 0)?,
        die_per_mille: flags.get("die-per-mille", 0)?,
        slow_per_mille: flags.get("slow-per-mille", 0)?,
        ..NetFaultPlan::default()
    };

    // The same workload parameters as the server's: the gate validates
    // unit ids and the space, so a mismatched feed is rejected, loudly.
    let mut workload = Workload::generate(WorkloadParams {
        num_units: units,
        places: PlaceGenConfig {
            count: places,
            ..PlaceGenConfig::default()
        },
        seed,
        ..WorkloadParams::default()
    });
    let _ = granularity; // the feeder never touches the store
    let clean: Vec<LocationUpdate> = workload
        .next_updates(updates)
        .into_iter()
        .map(|u| LocationUpdate {
            unit: UnitId(u.object),
            new: u.to,
        })
        .collect();
    let stamped = stamp_stream(clean);

    // `--failover` walks a primary-then-standbys address list on every
    // reconnect; the link-fault flags script per-attempt behaviour on one
    // address, so the two are mutually exclusive.
    let dialer: Box<dyn Dialer> = match flags.get_str("failover") {
        Some(list) => {
            if plan.refuse_per_mille > 0 || plan.die_per_mille > 0 || plan.slow_per_mille > 0 {
                return Err(CliError(
                    "--failover cannot be combined with the link-fault flags".into(),
                ));
            }
            let mut addrs = vec![addr];
            for part in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                addrs.push(
                    part.parse()
                        .map_err(|e| CliError(format!("bad --failover entry {part:?}: {e}")))?,
                );
            }
            Box::new(FailoverDialer::new(addrs))
        }
        None => Box::new(ChaosDialer {
            addr,
            plan,
            attempt: 0,
        }),
    };
    let mut client = FeedClient::new(dialer, client_config);
    let overall = std::time::Duration::from_secs(deadline_secs);
    if rate_hz > 0.0 {
        // Paced submission: enqueue on schedule, interleaving protocol
        // work, then drain whatever is still outstanding.
        let gap = std::time::Duration::from_secs_f64(1.0 / rate_hz);
        let started = std::time::Instant::now();
        for (i, &report) in stamped.iter().enumerate() {
            let due = started + gap.mul_f64(i as f64);
            while std::time::Instant::now() < due {
                client
                    .step(std::time::Duration::from_millis(250))
                    .map_err(|e| CliError(format!("feeding {addr}: {e}")))?;
            }
            client.enqueue(report);
        }
    } else {
        for &report in &stamped {
            client.enqueue(report);
        }
    }
    client
        .drive(overall)
        .map_err(|e| CliError(format!("feeding {addr}: {e}")))?;
    let stats = client.finish();

    let mut by_reason = [0u64; 4];
    for shed in &stats.sheds {
        by_reason[usize::from(shed.reason.code())] += 1;
    }
    writeln!(
        out,
        "feed: {} offered, {} acked, {} shed, {} reconnects, {} frames sent, {} snapshots received",
        stats.enqueued,
        stats.acked,
        stats.shed_total(),
        stats.reconnects,
        stats.frames_sent,
        stats.snapshots_received,
    )
    .map_err(|e| io_err("stdout", e))?;
    if stats.shed_total() > 0 {
        writeln!(
            out,
            "sheds by reason: {} queue full, {} deadline, {} session quota, {} engine degraded",
            by_reason[0], by_reason[1], by_reason[2], by_reason[3],
        )
        .map_err(|e| io_err("stdout", e))?;
    }
    dump_spans(span_dump.as_deref(), spans.as_deref(), out)?;
    Ok(())
}

/// One trace reconstructed from a span dump: its canonical-chain spans in
/// pipeline order (longest shard picked for the fan-out stage), the
/// measured end-to-end window, and the stages it never reached.
struct TraceSummary {
    trace: u64,
    /// End-to-end latency: first chain-span start to last chain-span end.
    e2e: u64,
    /// Canonical-chain spans present, in chain order.
    chain: Vec<Span>,
    /// Canonical-chain stages with no span in the dump.
    missing: Vec<Stage>,
    /// Off-chain spans of this trace (wal-append, checkpoint, shed, …).
    extra: Vec<Span>,
}

impl TraceSummary {
    fn complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Reconstructs one trace from its spans. For the fan-out stage
/// (`shard-phase`) the *slowest* shard is put on the critical path —
/// the merge barrier waits for exactly that one.
fn summarize_trace(trace: u64, tspans: &[Span]) -> TraceSummary {
    let mut chain = Vec::new();
    let mut missing = Vec::new();
    for stage in Stage::CANONICAL_CHAIN {
        let pick = tspans
            .iter()
            .filter(|s| s.stage == stage)
            .max_by_key(|s| s.duration());
        match pick {
            Some(s) => chain.push(*s),
            None => missing.push(stage),
        }
    }
    let window: Vec<&Span> = if chain.is_empty() {
        tspans.iter().collect()
    } else {
        chain.iter().collect()
    };
    let start = window.iter().map(|s| s.start).min().unwrap_or(0);
    let end = window.iter().map(|s| s.end).max().unwrap_or(0);
    let extra = tspans
        .iter()
        .filter(|s| !Stage::CANONICAL_CHAIN.contains(&s.stage))
        .copied()
        .collect();
    TraceSummary {
        trace,
        e2e: end.saturating_sub(start),
        chain,
        missing,
        extra,
    }
}

/// `ctup trace` — offline analysis of a causal span dump (`--span-dump`
/// JSONL from `serve` or `feed`): per-stage latency breakdown across all
/// traces, the critical path of the slowest N traces (with the stage-sum
/// vs end-to-end accounting), and orphan/inversion diagnostics.
pub fn trace(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&["input", "slowest"])?;
    let input = flags
        .get_str("input")
        .ok_or_else(|| CliError("trace requires --input FILE (a --span-dump JSONL)".into()))?;
    let slowest: usize = flags.get("slowest", 10)?;
    let text =
        std::fs::read_to_string(input).map_err(|e| io_err(&format!("reading {input}"), e))?;
    render_trace_report(&text, input, slowest, out)
}

/// The body of `ctup trace`, on an in-memory dump (testable without I/O).
fn render_trace_report(
    text: &str,
    input: &str,
    slowest: usize,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    // Deterministic span ids make replay idempotent: a retransmitted
    // report re-records the *same* span id, so folding by id (last line
    // wins) collapses replays instead of double-counting them.
    let mut by_id: std::collections::BTreeMap<u64, Span> = std::collections::BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let s = Span::parse_jsonl(line).map_err(|e| CliError(format!("{input}:{}: {e}", i + 1)))?;
        lines += 1;
        by_id.insert(s.span, s);
    }
    if by_id.is_empty() {
        return Err(CliError(format!("{input}: no spans to analyze")));
    }
    let spans: Vec<Span> = by_id.values().copied().collect();
    let mut traces: std::collections::BTreeMap<u64, Vec<Span>> = std::collections::BTreeMap::new();
    for s in &spans {
        traces.entry(s.trace).or_default().push(*s);
    }
    writeln!(
        out,
        "{} span(s) ({} line(s)) across {} trace(s)",
        spans.len(),
        lines,
        traces.len()
    )
    .map_err(|e| io_err("stdout", e))?;

    writeln!(out, "stage latency breakdown:").map_err(|e| io_err("stdout", e))?;
    for stage in Stage::ALL {
        let mut d: Vec<u64> = spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(Span::duration)
            .collect();
        if d.is_empty() {
            continue;
        }
        d.sort_unstable();
        writeln!(
            out,
            "  {:<16} count {:>6}  p50 {:>12}ns  max {:>12}ns",
            stage.label(),
            d.len(),
            d[d.len() / 2],
            d[d.len() - 1],
        )
        .map_err(|e| io_err("stdout", e))?;
    }

    let mut summaries: Vec<TraceSummary> = traces
        .iter()
        .map(|(t, ts)| summarize_trace(*t, ts))
        .collect();
    summaries.sort_by(|a, b| b.e2e.cmp(&a.e2e).then(a.trace.cmp(&b.trace)));
    writeln!(
        out,
        "slowest {} trace(s) by end-to-end latency:",
        slowest.min(summaries.len())
    )
    .map_err(|e| io_err("stdout", e))?;
    for t in summaries.iter().take(slowest) {
        writeln!(
            out,
            "trace {:#018x}: end-to-end {}ns{}",
            t.trace,
            t.e2e,
            if t.complete() {
                " — complete causal chain"
            } else {
                ""
            }
        )
        .map_err(|e| io_err("stdout", e))?;
        let mut prev_end: Option<u64> = None;
        let mut sum = 0u64;
        let mut gaps = 0u64;
        for s in &t.chain {
            sum = sum.saturating_add(s.duration());
            // The wait between one stage closing and the next opening:
            // scheduling/transit time the chain attributes to no stage,
            // printed inline so the chain still tiles the whole window.
            let gap = prev_end.map_or(0, |p| s.start.saturating_sub(p));
            gaps = gaps.saturating_add(gap);
            let label = if s.stage == Stage::ShardPhase && s.aux != 0 {
                format!("{}[{}]", s.stage.label(), s.aux)
            } else {
                s.stage.label().to_string()
            };
            if gap > 0 {
                writeln!(out, "  {label:<16} {:>12}ns  (+{gap}ns gap)", s.duration())
            } else {
                writeln!(out, "  {label:<16} {:>12}ns", s.duration())
            }
            .map_err(|e| io_err("stdout", e))?;
            prev_end = Some(prev_end.map_or(s.end, |p| p.max(s.end)));
        }
        for s in &t.extra {
            writeln!(
                out,
                "  {:<16} {:>12}ns  (off critical path)",
                s.stage.label(),
                s.duration()
            )
            .map_err(|e| io_err("stdout", e))?;
        }
        if t.complete() && t.e2e > 0 {
            // Integer per-mille keeps the arithmetic exact. Stages plus
            // the attributed gaps tile the window, so the total sits at
            // (or within rounding of) 100% — anything materially off
            // means overlapping or missing spans.
            let per_mille = sum.saturating_mul(1000) / t.e2e;
            let tiled = sum.saturating_add(gaps).saturating_mul(1000) / t.e2e;
            writeln!(
                out,
                "  stage sum {sum}ns = {}.{}% of end-to-end \
                 (+{gaps}ns attributed gaps = {}.{}%)",
                per_mille / 10,
                per_mille % 10,
                tiled / 10,
                tiled % 10
            )
            .map_err(|e| io_err("stdout", e))?;
        } else if !t.missing.is_empty() {
            let names: Vec<&str> = t.missing.iter().map(|s| s.label()).collect();
            writeln!(out, "  chain broken — missing: {}", names.join(", "))
                .map_err(|e| io_err("stdout", e))?;
        }
    }

    // Diagnostics: a parent id that never appears in the dump is a hole
    // in the causal tree (unless the trace is a lone cross-process half);
    // a parent starting after its child is a clock inversion.
    let mut orphans = 0usize;
    let mut inversions = 0usize;
    for s in &spans {
        if s.parent == 0 {
            continue;
        }
        match by_id.get(&s.parent) {
            None => {
                if traces.get(&s.trace).is_some_and(|ts| ts.len() > 1) {
                    orphans += 1;
                    writeln!(
                        out,
                        "orphan: {} span {:#x} of trace {:#018x} (parent {:#x} not in dump)",
                        s.stage.label(),
                        s.span,
                        s.trace,
                        s.parent
                    )
                    .map_err(|e| io_err("stdout", e))?;
                }
            }
            Some(p) => {
                if p.start > s.start {
                    inversions += 1;
                    writeln!(
                        out,
                        "inversion: {} starts {}ns before its parent {} (trace {:#018x})",
                        s.stage.label(),
                        p.start - s.start,
                        p.stage.label(),
                        s.trace
                    )
                    .map_err(|e| io_err("stdout", e))?;
                }
            }
        }
    }
    writeln!(
        out,
        "diagnostics: {orphans} orphan(s), {inversions} inversion(s)"
    )
    .map_err(|e| io_err("stdout", e))?;
    Ok(())
}

/// Usage text.
pub fn usage() -> &'static str {
    "ctup — Continuous Top-k Unsafe Places monitoring

USAGE:
  ctup generate [--places N] [--seed S] [--rp-min N] [--rp-max N] [--rp-skew F] [--out FILE]
  ctup run      [--algorithm opt|basic|naive|naive-inc] [--updates N] [--units N]
                [--places N | --places-file FILE] [--granularity G] [--seed S]
                [--k K | --threshold T] [--delta D] [--radius R] [--no-doo] [--events]
                [--shards N] [--cell-cache-pages M] [--layout rowmajor|zorder]
  ctup run-opt  [same workload flags] [--checkpoint-out FILE]
  ctup resume   --checkpoint FILE [--skip N] [--updates N] [--places N] [--seed S]
  ctup chaos    [same workload flags] [--drop P] [--dup P] [--reorder P] [--reorder-window W]
                [--corrupt P] [--delay P] [--max-delay W] [--fault-seed S]
                [--panic-at N,N,...] [--lease-ttl T] [--checkpoint-every N] [--max-restarts N]
                [--disk-faults P] [--torn-writes N] [--bit-flips N] [--disk-seed S]
                [--state-dir DIR] [--kill-at N] [--tear-slot] [--recover]
                [--flight-recorder N] [--flight-recorder-keep N]
                [--self-heal] [--kill-repeat] [--max-revives N]
                [--layout rowmajor|zorder]
  ctup report   [same workload flags] [--format text|json|prom] [--out FILE]
  ctup serve-metrics [same workload flags] [--addr HOST:PORT] [--serve-secs N]
  ctup serve    [same workload flags] [--addr HOST:PORT] [--metrics-addr HOST:PORT]
                [--serve-secs N] [--updates N] [--kill-at N] [--queue-capacity N]
                [--session-quota N] [--ingest-deadline-ms N] [--snapshot-push-ms N]
                [--state-dir DIR] [--checkpoint-every N] [--epoch N]
                [--standby HOST:PORT] [--span-dump FILE] [--trace-every N]
  ctup feed     [--addr HOST:PORT] [--updates N] [--units N] [--places N] [--seed S]
                [--rate-hz F] [--max-in-flight N] [--max-attempts N] [--net-seed S]
                [--refuse-per-mille N] [--die-per-mille N] [--slow-per-mille N]
                [--deadline-secs N] [--failover HOST:PORT,HOST:PORT,...]
                [--span-dump FILE] [--trace-every N]
  ctup trace    --input FILE [--slowest N]

The workload is deterministic per --seed: `run-opt --updates N --checkpoint-out cp`
followed by `resume --checkpoint cp --skip N` continues the same stream.
`--shards N` (with the opt algorithm) runs the sharded parallel engine: grid
cells are partitioned across N OptCTUP workers and the per-shard top-k results
are merged into the exact global answer — same SK and safeties as the
sequential run, differing at most in which equally-unsafe places tie at SK.
`--cell-cache-pages M` puts a bounded LRU cell-read cache (M pages) in front of
the store; hits, misses, evictions, prefetch hits and the derived
cache_hit_ratio appear in every report format. `--layout zorder` switches the
physical cell layout to Morton (Z-order): shard ranges follow the Z-curve
(contiguous rank ranges balanced by cell load instead of modulo striping), the
sharded coordinator hands each batch's touched cells to the cache as one
working-set hint before the workers run — pinning resident cells and re-warming
just-evicted ones — and faulty-disk pages (`chaos --disk-faults`) are
packed in Morton order. The default `rowmajor` keeps the legacy striped layout
as the differential oracle — both layouts produce the exact same top-k. These
flags also apply to `report` and `serve-metrics`.
`chaos` degrades the feed with a seeded fault plan, runs the supervised
pipeline over it (ingest validation, liveness leases, checkpoint-restart on
injected panics), and prints the resilience counters. `--disk-faults P` adds
a faulty simulated disk (transient read errors with probability P, plus
`--torn-writes`/`--bit-flips` pages damaged at build); corruption is always
detected by the page checksums, never served silently. `--state-dir DIR`
makes checkpoints durable (A/B slots plus a report journal); `--kill-at N`
dies abruptly before effective update N (`--tear-slot` also tears the newest
slot, as a death mid-checkpoint-write), and rerunning the same command with
`--recover` resumes from the surviving slot, replays the journal tail, and
converges to the uninterrupted run's result. When a supervised worker dies
(killed or restart budget exhausted) with a --state-dir, the flight recorder
dumps its last --flight-recorder events as JSON Lines next to the slots,
rotating older dumps to numbered files (--flight-recorder-keep bounds how
many survive). `chaos --self-heal` (with --state-dir and --kill-at) drives
the degraded feed through a loopback front door whose pump revives the
killed engine from the durable slots — level-1 self-heal — and prints
whether degraded mode was exited without operator intervention;
`--kill-repeat` re-arms the kill after every revival, a crash storm that
must trip the circuit breaker (budget --max-revives) into sticky degraded
mode.
`report` emits the unified metrics snapshot (counters, gauges and latency
histograms with p50/p90/p99/p999) as text, JSON, or Prometheus exposition
text; `serve-metrics` serves the same snapshot on http://ADDR/metrics for
Prometheus to scrape.
`serve` opens the networked ingest front door: a sessioned wire-protocol
server feeding a supervised OptCTUP pipeline, with bounded admission queues,
typed load shedding, slow-client eviction and a watchdog that degrades to
serving the last-good top-k if the engine dies. /metrics and /healthz are
served on --metrics-addr; `--updates N` first self-feeds N workload updates
over loopback so the counters are non-trivial. `feed` drives the same
deterministic workload into a running server from another process, optionally
through scripted link faults (--refuse/--die/--slow-per-mille, seeded by
--net-seed) to rehearse reconnect-and-replay; use the same --units/--places/
--seed as the server so the ingest gate accepts the stream.
`serve --state-dir DIR` makes the engine's checkpoints durable and arms
level-1 self-heal: a dead engine is revived in-process from the A/B slot and
journal tail instead of parking in degraded mode. `serve --standby
PRIMARY:PORT` starts a warm standby instead of a primary: it bootstraps from
a checkpoint shipped over the wire protocol's replication frames, tails the
primary's WAL stream to stay hot, and — when liveness probes go dark —
promotes itself behind a fenced epoch (stale frames from a partitioned old
primary are rejected; sessions are re-based so old ids cannot be captured).
`feed --failover ADDR,ADDR` gives the client the standby address list: every
reconnect walks the list with the usual seeded-jitter backoff, so a feed
survives a primary kill by walking over to the promoted standby.
`serve --span-dump FILE` arms end-to-end causal tracing (DESIGN.md §17): a
1-in-N head sample of reports (--trace-every, default 1 = every report)
carries a 64-bit trace id from the client socket through admission, the
engine apply, the shard/merge phases and the top-k publish, and the spans
are dumped as JSON Lines at shutdown. Sheds, failovers and degraded-mode
entries are always traced regardless of the sampling rate. `feed
--span-dump` records the feeder's client-send halves the same way. `ctup
trace --input FILE` analyzes a dump offline: per-stage latency breakdown,
the critical path of the --slowest N traces (stage durations, inter-stage
gaps, and the stage-sum vs end-to-end accounting), plus orphaned-span and
clock-inversion diagnostics; `cargo xtask spancheck FILE` validates the
same dump structurally in CI."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(
        f: fn(Vec<String>, &mut dyn Write) -> Result<(), CliError>,
        args: &[&str],
    ) -> Result<String, CliError> {
        let mut out = Vec::new();
        f(args.iter().map(|s| s.to_string()).collect(), &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn generate_and_run_with_snapshot() {
        let dir = std::env::temp_dir().join("ctup-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cli_places.txt");
        let path_str = path.to_str().unwrap();

        let out = run_cmd(
            generate,
            &["--places", "300", "--seed", "5", "--out", path_str],
        )
        .expect("generate");
        assert!(out.contains("wrote 300 places"));

        let out = run_cmd(
            run,
            &[
                "--places-file",
                path_str,
                "--units",
                "10",
                "--updates",
                "50",
                "--k",
                "3",
                "--seed",
                "5",
            ],
        )
        .expect("run");
        assert!(out.contains("final result:"));
        assert!(out.contains("costs:"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_all_algorithms_small() {
        for algorithm in ["opt", "basic", "naive", "naive-inc"] {
            let out = run_cmd(
                run,
                &[
                    "--algorithm",
                    algorithm,
                    "--places",
                    "200",
                    "--units",
                    "8",
                    "--updates",
                    "20",
                    "--k",
                    "3",
                ],
            )
            .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            assert!(out.contains("final result:"), "{algorithm}");
        }
    }

    #[test]
    fn sharded_run_matches_sequential_result() {
        let base = [
            "--places",
            "300",
            "--units",
            "10",
            "--updates",
            "80",
            "--k",
            "4",
            "--seed",
            "17",
        ];
        let sequential = run_cmd(run, &base).expect("sequential run");
        let mut sharded_args = base.to_vec();
        sharded_args.extend(["--shards", "4", "--cell-cache-pages", "64"]);
        let sharded = run_cmd(run, &sharded_args).expect("sharded run");
        assert!(sharded.contains("using sharded"), "{sharded}");
        // Parse the `  place {id}  safety {s}` lines of the final result.
        let entries = |s: &str| -> Vec<(u64, i64)> {
            s.lines()
                .skip_while(|l| !l.starts_with("final result:"))
                .skip(1)
                .take_while(|l| !l.starts_with("costs:"))
                .map(|l| {
                    let mut words = l.split_whitespace();
                    assert_eq!(words.next(), Some("place"), "{l}");
                    let place = words.next().expect("place id").parse().expect("place id");
                    assert_eq!(words.next(), Some("safety"), "{l}");
                    let safety = words.next().expect("safety").parse().expect("safety");
                    (place, safety)
                })
                .collect()
        };
        let seq_entries = entries(&sequential);
        let sharded_entries = entries(&sharded);
        // The engines must agree on every safety and on every entry
        // strictly below SK; the tie tail at SK is implementation-chosen
        // (see DESIGN.md §13), so place ids there may differ.
        let safeties = |r: &[(u64, i64)]| r.iter().map(|&(_, s)| s).collect::<Vec<_>>();
        assert_eq!(
            safeties(&seq_entries),
            safeties(&sharded_entries),
            "sequential:\n{sequential}\nsharded:\n{sharded}"
        );
        let sk = seq_entries.get(3).map(|&(_, s)| s);
        let strictly_below = |r: &[(u64, i64)]| -> Vec<(u64, i64)> {
            r.iter()
                .filter(|&&(_, s)| sk.is_none_or(|sk| s < sk))
                .copied()
                .collect()
        };
        assert_eq!(
            strictly_below(&seq_entries),
            strictly_below(&sharded_entries),
            "sequential:\n{sequential}\nsharded:\n{sharded}"
        );
        // The sharded engine's per-shard latency channels feed the report:
        // 80 updates seen by 4 shards = 320 samples in the merged histogram.
        let total_line = sharded
            .lines()
            .find(|l| l.starts_with("latency update-total"))
            .expect("update-total latency line");
        assert!(total_line.contains("n=320 "), "{total_line}");
    }

    #[test]
    fn sharded_rejects_non_opt_and_zero_shards() {
        let err = run_cmd(run, &["--algorithm", "basic", "--shards", "2"]).expect_err("must fail");
        assert!(err.0.contains("requires the opt algorithm"), "{err}");
        let err = run_cmd(run, &["--shards", "0"]).expect_err("must fail");
        assert!(err.0.contains("--shards must be at least 1"), "{err}");
    }

    #[test]
    fn zorder_run_matches_rowmajor_run() {
        let base = [
            "--places",
            "300",
            "--units",
            "10",
            "--updates",
            "60",
            "--k",
            "4",
            "--seed",
            "29",
        ];
        let sequential = run_cmd(run, &base).expect("sequential run");
        let mut zorder_args = base.to_vec();
        zorder_args.extend([
            "--shards",
            "3",
            "--layout",
            "zorder",
            "--cell-cache-pages",
            "64",
        ]);
        let zorder = run_cmd(run, &zorder_args).expect("zorder run");
        assert!(zorder.contains("using sharded"), "{zorder}");
        // Same extraction as sharded_run_matches_sequential_result: safeties
        // must agree exactly; the tie tail at SK is implementation-chosen.
        let safeties = |s: &str| -> Vec<i64> {
            s.lines()
                .skip_while(|l| !l.starts_with("final result:"))
                .skip(1)
                .take_while(|l| !l.starts_with("costs:"))
                .map(|l| {
                    l.split_whitespace()
                        .nth(3)
                        .expect("safety value")
                        .parse()
                        .expect("safety value")
                })
                .collect()
        };
        assert_eq!(
            safeties(&sequential),
            safeties(&zorder),
            "sequential:\n{sequential}\nzorder:\n{zorder}"
        );
    }

    #[test]
    fn unknown_layout_is_rejected() {
        let err = run_cmd(run, &["--layout", "hilbert"]).expect_err("must fail");
        assert!(err.0.contains("unknown cell layout"), "{err}");
    }

    #[test]
    fn run_with_events_and_threshold() {
        let out = run_cmd(
            run,
            &[
                "--places",
                "200",
                "--units",
                "8",
                "--updates",
                "30",
                "--threshold",
                "-3",
                "--events",
            ],
        )
        .expect("run --events");
        assert!(out.contains("costs:"));
    }

    #[test]
    fn checkpoint_and_resume_roundtrip() {
        let dir = std::env::temp_dir().join("ctup-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cp = dir.join("cli_checkpoint.txt");
        let cp_str = cp.to_str().unwrap();

        let out = run_cmd(
            run_opt,
            &[
                "--places",
                "300",
                "--units",
                "10",
                "--updates",
                "100",
                "--k",
                "4",
                "--seed",
                "9",
                "--checkpoint-out",
                cp_str,
            ],
        )
        .expect("run-opt");
        assert!(out.contains("checkpoint written"));

        let out = run_cmd(
            resume,
            &[
                "--checkpoint",
                cp_str,
                "--places",
                "300",
                "--seed",
                "9",
                "--skip",
                "100",
                "--updates",
                "100",
            ],
        )
        .expect("resume");
        assert!(out.contains("resumed from"));
        assert!(out.contains("final result:"));
        std::fs::remove_file(&cp).ok();
    }

    #[test]
    fn resume_and_continuous_run_agree() {
        // A 200-update run must equal run(100) -> checkpoint -> resume(100).
        let dir = std::env::temp_dir().join("ctup-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cp = dir.join("cli_agree.txt");
        let cp_str = cp.to_str().unwrap();
        let base = [
            "--places", "300", "--units", "10", "--k", "4", "--seed", "33",
        ];
        let mut full_args: Vec<&str> = base.to_vec();
        full_args.extend(["--updates", "200"]);
        let full = run_cmd(run_opt, &full_args).expect("full run");

        let mut first_args: Vec<&str> = base.to_vec();
        first_args.extend(["--updates", "100", "--checkpoint-out", cp_str]);
        run_cmd(run_opt, &first_args).expect("first half");
        let resumed = run_cmd(
            resume,
            &[
                "--checkpoint",
                cp_str,
                "--places",
                "300",
                "--seed",
                "33",
                "--skip",
                "100",
                "--updates",
                "100",
            ],
        )
        .expect("second half");

        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("final result:"))
                .take_while(|l| !l.starts_with("costs:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            tail(&full),
            tail(&resumed),
            "full:\n{full}\nresumed:\n{resumed}"
        );
        std::fs::remove_file(&cp).ok();
    }

    #[test]
    fn chaos_survives_and_reports_counters() {
        let out = run_cmd(
            chaos,
            &[
                "--places",
                "300",
                "--units",
                "10",
                "--updates",
                "200",
                "--k",
                "4",
                "--seed",
                "7",
                "--drop",
                "0.1",
                "--dup",
                "0.05",
                "--corrupt",
                "0.05",
                "--panic-at",
                "40",
                "--checkpoint-every",
                "32",
            ],
        )
        .expect("chaos");
        assert!(out.contains("degraded feed:"));
        assert!(out.contains("resilience counters:"));
        assert!(out.contains("final result:"));
        assert!(!out.contains("GAVE UP"));
        // The injected mid-run panic must have been survived by one restart.
        let restarts: u64 = out
            .lines()
            .find(|l| l.trim_start().starts_with("worker restarts"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .expect("worker restarts line");
        assert_eq!(restarts, 1, "{out}");
    }

    #[test]
    fn chaos_rejects_bad_panic_at() {
        assert!(run_cmd(chaos, &["--panic-at", "40,x"]).is_err());
    }

    fn counter(out: &str, name: &str) -> u64 {
        out.lines()
            .find(|l| l.trim_start().starts_with(name))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing counter {name:?} in:\n{out}"))
    }

    #[test]
    fn chaos_with_disk_faults_reports_storage_counters() {
        let out = run_cmd(
            chaos,
            &[
                "--places",
                "300",
                "--units",
                "10",
                "--updates",
                "300",
                "--k",
                "4",
                "--seed",
                "11",
                "--disk-faults",
                "0.05",
            ],
        )
        .expect("chaos --disk-faults");
        assert!(out.contains("faulty disk (rowmajor layout):"), "{out}");
        assert!(out.contains("storage counters:"));
        assert!(out.contains("cache prefetch hits"), "{out}");
        assert!(!out.contains("GAVE UP"), "{out}");
        // At a 5% per-page transient fault rate some reads must have
        // retried; with the default 3-retry budget none silently succeed.
        assert!(counter(&out, "read retries") > 0, "{out}");
        assert!(counter(&out, "cell reads") > 0, "{out}");
    }

    #[test]
    fn chaos_zorder_disk_matches_rowmajor_under_faulty_feed_and_disk() {
        // The same seeded fault plan (degraded feed + transient page
        // errors) over both physical layouts: the engine reads the same
        // cell sequence either way, so the retried reads line up and the
        // final top-k must be identical — Morton packing moves bytes, not
        // answers.
        let base = [
            "--places",
            "300",
            "--units",
            "10",
            "--updates",
            "200",
            "--k",
            "4",
            "--seed",
            "23",
            "--disk-faults",
            "0.05",
        ];
        let mut rowmajor_args: Vec<&str> = base.to_vec();
        rowmajor_args.extend(["--layout", "rowmajor"]);
        let rowmajor = run_cmd(chaos, &rowmajor_args).expect("rowmajor chaos");
        let mut zorder_args: Vec<&str> = base.to_vec();
        zorder_args.extend(["--layout", "zorder"]);
        let zorder = run_cmd(chaos, &zorder_args).expect("zorder chaos");
        assert!(zorder.contains("faulty disk (zorder layout):"), "{zorder}");
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("final result:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        let final_rowmajor = tail(&rowmajor);
        assert!(!final_rowmajor.is_empty(), "{rowmajor}");
        assert_eq!(final_rowmajor, tail(&zorder), "{rowmajor}\n---\n{zorder}");
    }

    #[test]
    fn chaos_zorder_kill_then_recover_through_layout_tagged_checkpoint() {
        let dir = std::env::temp_dir().join("ctup-cli-test-zorder-state");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        // A Z-order faulty disk under the full degraded feed, checkpointing
        // as it goes. The checkpoint carries the layout tag, so recovery
        // over a rebuilt Z-order disk re-binds cleanly — and a restore over
        // the wrong layout is refused instead of silently misreading pages.
        let base = [
            "--places",
            "300",
            "--units",
            "10",
            "--updates",
            "200",
            "--k",
            "4",
            "--seed",
            "23",
            "--disk-faults",
            "0.05",
            "--layout",
            "zorder",
            "--checkpoint-every",
            "16",
        ];
        let uninterrupted = run_cmd(chaos, &base).expect("uninterrupted zorder chaos");
        assert!(!uninterrupted.contains("KILLED"));

        let mut kill_args: Vec<&str> = base.to_vec();
        kill_args.extend(["--state-dir", &dir_str, "--kill-at", "60"]);
        let killed = run_cmd(chaos, &kill_args).expect("killed zorder chaos");
        assert!(killed.contains("KILLED"), "{killed}");

        let mut wrong_layout_args: Vec<&str> = kill_args.clone();
        let layout_pos = wrong_layout_args
            .iter()
            .position(|a| *a == "zorder")
            .expect("layout flag");
        wrong_layout_args[layout_pos] = "rowmajor";
        wrong_layout_args.retain(|a| *a != "--kill-at" && *a != "60");
        wrong_layout_args.push("--recover");
        let err = run_cmd(chaos, &wrong_layout_args).expect_err("layout mismatch must fail");
        assert!(
            err.0.contains("taken over a zorder store") && err.0.contains("is rowmajor"),
            "{err}"
        );

        let mut recover_args: Vec<&str> = base.to_vec();
        recover_args.extend(["--state-dir", &dir_str, "--recover"]);
        let recovered = run_cmd(chaos, &recover_args).expect("recovered zorder chaos");
        assert!(recovered.contains("recovering from"), "{recovered}");
        assert!(counter(&recovered, "updates replayed") > 0, "{recovered}");
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("final result:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            tail(&uninterrupted),
            tail(&recovered),
            "uninterrupted:\n{uninterrupted}\nrecovered:\n{recovered}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_kill_then_recover_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("ctup-cli-test-state");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let base = [
            "--places",
            "300",
            "--units",
            "10",
            "--updates",
            "200",
            "--k",
            "4",
            "--seed",
            "21",
            "--checkpoint-every",
            "16",
        ];

        let uninterrupted = run_cmd(chaos, &base).expect("uninterrupted chaos");
        assert!(!uninterrupted.contains("KILLED"));

        let mut kill_args: Vec<&str> = base.to_vec();
        kill_args.extend(["--state-dir", &dir_str, "--kill-at", "60", "--tear-slot"]);
        let killed = run_cmd(chaos, &kill_args).expect("killed chaos run");
        assert!(killed.contains("KILLED"), "{killed}");
        assert!(!killed.contains("final result:\n  place"), "{killed}");
        // The death left a parseable flight-recorder dump next to the slots.
        assert!(killed.contains("flight recorder dumped to"), "{killed}");
        let dump_path = dir.join("flight-recorder.jsonl");
        let dump = std::fs::read_to_string(&dump_path).expect("dump exists");
        assert!(dump.lines().count() > 0);
        assert!(
            dump.lines()
                .last()
                .expect("lines")
                .contains("\"outcome\":\"killed\""),
            "{dump}"
        );

        let mut recover_args: Vec<&str> = base.to_vec();
        recover_args.extend(["--state-dir", &dir_str, "--recover"]);
        let recovered = run_cmd(chaos, &recover_args).expect("recovered chaos run");
        assert!(recovered.contains("recovering from"), "{recovered}");
        assert!(!recovered.contains("KILLED"), "{recovered}");
        assert!(counter(&recovered, "updates replayed") > 0, "{recovered}");

        // The recovered run converges to the same final top-k as the run
        // that was never interrupted.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("final result:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            tail(&uninterrupted),
            tail(&recovered),
            "uninterrupted:\n{uninterrupted}\nrecovered:\n{recovered}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_recover_requires_state_dir() {
        let err = run_cmd(chaos, &["--updates", "10", "--recover"]).expect_err("must fail");
        assert!(err.0.contains("--recover requires --state-dir"), "{err}");
    }

    #[test]
    fn chaos_self_heal_exits_degraded_without_operator() {
        let dir = std::env::temp_dir().join("ctup-cli-test-self-heal");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let out = run_cmd(
            chaos,
            &[
                "--places",
                "300",
                "--units",
                "10",
                "--updates",
                "200",
                "--k",
                "4",
                "--seed",
                "21",
                "--checkpoint-every",
                "16",
                "--state-dir",
                &dir_str,
                "--kill-at",
                "60",
                "--self-heal",
            ],
        )
        .expect("chaos --self-heal");
        assert!(out.contains("self-heal:"), "{out}");
        assert!(out.contains("breaker tripped: false"), "{out}");
        assert!(out.contains("degraded at exit: false"), "{out}");
        let restarts: u64 = out
            .lines()
            .find(|l| l.starts_with("self-heal:"))
            .and_then(|l| l.split(';').nth(1)?.split_whitespace().next()?.parse().ok())
            .expect("engine restarts count");
        assert_eq!(restarts, 1, "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_self_heal_crash_storm_trips_breaker() {
        let dir = std::env::temp_dir().join("ctup-cli-test-crash-storm");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().unwrap().to_string();
        let out = run_cmd(
            chaos,
            &[
                "--places",
                "300",
                "--units",
                "10",
                "--updates",
                "400",
                "--k",
                "4",
                "--seed",
                "21",
                "--checkpoint-every",
                "8",
                "--state-dir",
                &dir_str,
                "--kill-at",
                "20",
                "--self-heal",
                "--kill-repeat",
                "--max-revives",
                "2",
            ],
        )
        .expect("chaos --self-heal --kill-repeat");
        assert!(out.contains("breaker tripped: true"), "{out}");
        assert!(out.contains("degraded at exit: true"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_self_heal_requires_state_dir_and_kill_at() {
        let err = run_cmd(chaos, &["--updates", "10", "--self-heal"]).expect_err("must fail");
        assert!(err.0.contains("--self-heal requires --state-dir"), "{err}");
        let dir = std::env::temp_dir().join("ctup-cli-test-self-heal-args");
        let dir_str = dir.to_str().unwrap().to_string();
        let err = run_cmd(
            chaos,
            &["--updates", "10", "--self-heal", "--state-dir", &dir_str],
        )
        .expect_err("must fail");
        assert!(err.0.contains("--self-heal requires --kill-at"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(run_cmd(run, &["--algorithm", "magic"]).is_err());
        assert!(run_cmd(run, &["--bogus", "1"]).is_err());
        assert!(run_cmd(resume, &[]).is_err());
        assert!(run_cmd(generate, &["--rp-min", "9", "--rp-max", "2"]).is_err());
        assert!(run_cmd(report, &["--format", "xml"]).is_err());
    }

    #[test]
    fn run_report_includes_latency_quantiles() {
        let out = run_cmd(
            run,
            &[
                "--places",
                "200",
                "--units",
                "8",
                "--updates",
                "50",
                "--k",
                "3",
            ],
        )
        .expect("run");
        assert!(out.contains("latency update-total"), "{out}");
        assert!(out.contains("p50="), "{out}");
        assert!(out.contains("p99="), "{out}");
    }

    const REPORT_BASE: &[&str] = &[
        "--places",
        "200",
        "--units",
        "8",
        "--updates",
        "60",
        "--k",
        "3",
        "--seed",
        "13",
    ];

    #[test]
    fn report_text_lists_every_series() {
        let mut args = REPORT_BASE.to_vec();
        args.extend(["--format", "text"]);
        let out = run_cmd(report, &args).expect("report text");
        assert!(out.contains("algorithm: opt\n"), "{out}");
        assert!(out.contains("updates_processed: 60\n"), "{out}");
        assert!(out.contains("storage_cell_reads:"), "{out}");
        assert!(out.contains("resilience_worker_panics: 0\n"), "{out}");
        assert!(out.contains("update_total_nanos: n=60 "), "{out}");
    }

    #[test]
    fn report_json_round_trips_counters() {
        let mut args = REPORT_BASE.to_vec();
        args.extend(["--format", "json"]);
        let out = run_cmd(report, &args).expect("report json");
        assert!(
            out.starts_with('{') && out.trim_end().ends_with('}'),
            "{out}"
        );
        assert!(out.contains("\"algorithm\":\"opt\""), "{out}");
        assert!(out.contains("\"updates_processed\":60"), "{out}");
        assert!(out.contains("\"p99\":"), "{out}");
    }

    #[test]
    fn report_prom_is_scrapeable_exposition() {
        let mut args = REPORT_BASE.to_vec();
        args.extend(["--format", "prom"]);
        let out = run_cmd(report, &args).expect("report prom");
        assert!(
            out.contains("# TYPE ctup_updates_processed counter\n"),
            "{out}"
        );
        assert!(
            out.contains("ctup_updates_processed{algorithm=\"opt\"} 60\n"),
            "{out}"
        );
        assert!(
            out.contains("# TYPE ctup_update_total_nanos histogram\n"),
            "{out}"
        );
        assert!(out.contains("le=\"+Inf\"}"), "{out}");
        assert!(
            out.contains("ctup_update_total_nanos_count{algorithm=\"opt\"} 60\n"),
            "{out}"
        );
    }

    #[test]
    fn report_with_tiny_cache_counts_misses_and_evictions() {
        // naive's bulk load reads each of the 10x10 grid's cells exactly
        // once in grid order and never touches storage again, so a one-page
        // budget makes every read a miss and evicts on all but the first
        // insertion. The whole pipeline (cache -> stats -> report) is thus
        // exactly predictable.
        let out = run_cmd(
            report,
            &[
                "--algorithm",
                "naive",
                "--places",
                "200",
                "--units",
                "8",
                "--updates",
                "30",
                "--k",
                "3",
                "--cell-cache-pages",
                "1",
            ],
        )
        .expect("report with cache");
        let field = |name: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing {name:?} in:\n{out}"))
        };
        assert_eq!(field("storage_cache_hits:"), 0, "{out}");
        assert_eq!(field("storage_cache_misses:"), 100, "{out}");
        assert_eq!(field("storage_cache_evictions:"), 99, "{out}");
        // Every lower-level read flowed through the cache as a miss.
        assert_eq!(field("storage_cell_reads:"), 100, "{out}");
        assert!(out.contains("cache_hit_ratio: 0.000000\n"), "{out}");
    }

    #[test]
    fn report_without_cache_reports_zero_cache_traffic() {
        let mut args = REPORT_BASE.to_vec();
        args.extend(["--format", "text"]);
        let out = run_cmd(report, &args).expect("report text");
        assert!(out.contains("storage_cache_hits: 0\n"), "{out}");
        assert!(out.contains("storage_cache_misses: 0\n"), "{out}");
        assert!(out.contains("cache_hit_ratio: 0.000000\n"), "{out}");
    }

    #[test]
    fn report_sharded_zorder_counts_prefetch_hits() {
        let mut args = REPORT_BASE.to_vec();
        args.extend([
            "--format",
            "text",
            "--shards",
            "4",
            "--layout",
            "zorder",
            "--cell-cache-pages",
            "64",
        ]);
        let out = run_cmd(report, &args).expect("report with prefetch");
        let hits: u64 = out
            .lines()
            .find(|l| l.starts_with("storage_cache_prefetch_hits:"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing storage_cache_prefetch_hits in:\n{out}"));
        // The coordinator hints every batch's touched cells before the
        // shards run, so demand hits must land on hinted entries.
        assert!(hits > 0, "{out}");
    }

    #[test]
    fn report_writes_file_with_out_flag() {
        let dir = std::env::temp_dir().join("ctup-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_report.json");
        let path_str = path.to_str().unwrap();
        let mut args = REPORT_BASE.to_vec();
        args.extend(["--format", "json", "--out", path_str]);
        let out = run_cmd(report, &args).expect("report --out");
        assert!(out.contains("report written to"), "{out}");
        let body = std::fs::read_to_string(&path).expect("file written");
        assert!(body.contains("\"histograms\":{"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_metrics_binds_and_announces() {
        let out = run_cmd(
            serve_metrics,
            &[
                "--places",
                "200",
                "--units",
                "8",
                "--updates",
                "20",
                "--k",
                "3",
                "--addr",
                "127.0.0.1:0",
                "--serve-secs",
                "0",
            ],
        )
        .expect("serve-metrics");
        assert!(
            out.contains("serving Prometheus metrics at http://127.0.0.1:"),
            "{out}"
        );
    }

    #[test]
    fn serve_loopback_feed_accounts_exactly_once() {
        let out = run_cmd(
            serve,
            &[
                "--units",
                "25",
                "--places",
                "1500",
                "--updates",
                "200",
                "--serve-secs",
                "0",
                "--addr",
                "127.0.0.1:0",
                "--metrics-addr",
                "127.0.0.1:0",
            ],
        )
        .expect("serve");
        assert!(out.contains("ingest front door at 127.0.0.1:"), "{out}");
        assert!(out.contains("health at /healthz"), "{out}");
        assert!(
            out.contains("loopback feed: 200 offered, 200 acked, 0 shed"),
            "{out}"
        );
        assert_eq!(counter(&out, "reports accepted"), 200, "{out}");
        assert_eq!(counter(&out, "shed total"), 0, "{out}");
        assert_eq!(counter(&out, "sessions opened"), 1, "{out}");
        assert!(
            out.contains("exactly-once: 200 accepted at the door, 200 applied by the engine"),
            "{out}"
        );
        assert!(out.contains("final result:"), "{out}");
    }

    #[test]
    fn serve_span_dump_yields_a_complete_traced_chain() {
        let dir = std::env::temp_dir().join(format!("ctup-span-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("spans.jsonl");
        let dump_str = dump.to_str().unwrap().to_string();
        let out = run_cmd(
            serve,
            &[
                "--units",
                "25",
                "--places",
                "1500",
                "--updates",
                "40",
                "--serve-secs",
                "0",
                "--addr",
                "127.0.0.1:0",
                "--metrics-addr",
                "127.0.0.1:0",
                "--span-dump",
                &dump_str,
                "--trace-every",
                "1",
            ],
        )
        .expect("serve with span dump");
        assert!(out.contains("span dump:"), "{out}");
        assert!(counter(&out, "traces sampled") >= 40, "{out}");
        let text = std::fs::read_to_string(&dump).expect("span dump file");
        // Every canonical pipeline stage must appear in the dump.
        for stage in Stage::CANONICAL_CHAIN {
            assert!(
                text.contains(stage.label()),
                "stage {} missing from dump:\n{text}",
                stage.label()
            );
        }
        // The analyzer must reconstruct at least one contiguous chain and
        // account its stage durations against the end-to-end latency.
        let traced =
            run_cmd(trace, &["--input", &dump_str, "--slowest", "3"]).expect("trace analysis");
        assert!(traced.contains("complete causal chain"), "{traced}");
        assert!(traced.contains("% of end-to-end"), "{traced}");
        assert!(traced.contains("client-send"), "{traced}");
        assert!(traced.contains("snapshot-publish"), "{traced}");
        assert!(traced.contains("diagnostics: 0 orphan(s)"), "{traced}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_analyzes_a_synthetic_dump() {
        use ctup_obs::mint_trace;
        let sink = SpanSink::new(1024);
        // A fast trace and a slow one; the slow one must lead the report.
        for (seq, scale) in [(1u64, 1u64), (2, 100)] {
            let t = mint_trace(7, seq);
            let stages = Stage::CANONICAL_CHAIN;
            for (i, stage) in stages.iter().enumerate() {
                let i = u64::try_from(i).unwrap();
                sink.record_stage(t, *stage, 0, i * 10 * scale, (i * 10 + 10) * scale, true);
            }
        }
        let mut out = Vec::new();
        render_trace_report(&sink.dump_jsonl(), "synthetic", 1, &mut out).expect("analyze");
        let text = String::from_utf8(out).expect("utf8");
        assert!(
            text.contains("14 span(s) (14 line(s)) across 2 trace(s)"),
            "{text}"
        );
        assert!(text.contains("complete causal chain"), "{text}");
        // The slow trace: stages [0,1000),[1000,2000)..[6000,7000) tile
        // exactly, so the stage sum is 100.0% of the end-to-end window.
        assert!(text.contains("100.0% of end-to-end"), "{text}");
        assert!(
            text.contains("diagnostics: 0 orphan(s), 0 inversion(s)"),
            "{text}"
        );
    }

    #[test]
    fn trace_flags_broken_chains_and_orphans() {
        use ctup_obs::mint_trace;
        let t = mint_trace(3, 3);
        // Session-admit and engine-apply without their intermediate
        // stages: engine-apply's parent (queue-wait) is a hole.
        let lines = [
            Span::stage_span(t, Stage::SessionAdmit, 0, 10, 20, true).to_jsonl(),
            Span::stage_span(t, Stage::EngineApply, 0, 30, 40, true).to_jsonl(),
        ]
        .join("\n");
        let mut out = Vec::new();
        render_trace_report(&lines, "synthetic", 5, &mut out).expect("analyze");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("chain broken — missing:"), "{text}");
        assert!(text.contains("queue-wait"), "{text}");
        assert!(text.contains("2 orphan(s)"), "{text}");
    }

    #[test]
    fn trace_requires_input_and_rejects_garbage() {
        let err = run_cmd(trace, &[]).expect_err("missing input");
        assert!(err.0.contains("--input"), "{err}");
        let dir = std::env::temp_dir().join(format!("ctup-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not a span\n").unwrap();
        let err = run_cmd(trace, &["--input", path.to_str().unwrap()]).expect_err("garbage input");
        assert!(err.0.contains("garbage.jsonl:1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn feed_drives_a_live_server_and_reports_accounting() {
        let sink = Arc::new(ctup_core::net::CountingSink::default());
        let engine: Arc<dyn EngineSink> = Arc::clone(&sink) as Arc<dyn EngineSink>;
        let server = IngestServer::spawn("127.0.0.1:0", NetServerConfig::default(), engine)
            .expect("spawn server");
        let addr = server.local_addr().to_string();
        let out = run_cmd(
            feed,
            &[
                "--addr",
                &addr,
                "--updates",
                "150",
                "--units",
                "25",
                "--places",
                "1500",
            ],
        )
        .expect("feed");
        assert!(
            out.contains("feed: 150 offered, 150 acked, 0 shed, 0 reconnects"),
            "{out}"
        );
        assert_eq!(sink.accepted(), 150);
        let net = server.shutdown();
        assert_eq!(net.reports_accepted, 150);
        assert_eq!(net.shed_total(), 0);
    }

    #[test]
    fn feed_rejects_bad_addr() {
        let err = run_cmd(feed, &["--addr", "not-an-addr"]).expect_err("bad addr");
        assert!(err.0.contains("bad --addr"), "{err}");
    }

    #[test]
    fn feed_failover_rejects_bad_entry_and_fault_combo() {
        let err = run_cmd(
            feed,
            &["--addr", "127.0.0.1:9710", "--failover", "not-an-addr"],
        )
        .expect_err("bad failover entry");
        assert!(err.0.contains("bad --failover entry"), "{err}");
        let err = run_cmd(
            feed,
            &[
                "--addr",
                "127.0.0.1:9710",
                "--failover",
                "127.0.0.1:9711",
                "--die-per-mille",
                "5",
            ],
        )
        .expect_err("fault combo");
        assert!(err.0.contains("--failover cannot be combined"), "{err}");
    }

    #[test]
    fn feed_walks_over_to_a_failover_address() {
        // Primary address points at nothing; the failover list's second
        // entry is a live server — the dialer must walk over to it.
        let sink = Arc::new(ctup_core::net::CountingSink::default());
        let engine: Arc<dyn EngineSink> = Arc::clone(&sink) as Arc<dyn EngineSink>;
        let server = IngestServer::spawn("127.0.0.1:0", NetServerConfig::default(), engine)
            .expect("spawn server");
        let live = server.local_addr().to_string();
        // A bound-then-dropped listener yields an address that refuses.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let out = run_cmd(
            feed,
            &[
                "--addr",
                &dead,
                "--failover",
                &live,
                "--updates",
                "50",
                "--units",
                "25",
                "--places",
                "1500",
                "--max-attempts",
                "8",
            ],
        )
        .expect("feed with failover");
        assert!(out.contains("feed: 50 offered, 50 acked, 0 shed"), "{out}");
        assert_eq!(sink.accepted(), 50);
        let net = server.shutdown();
        assert_eq!(net.reports_accepted, 50);
    }

    #[test]
    fn serve_standby_rejects_bad_primary() {
        let err = run_cmd(
            serve,
            &[
                "--standby",
                "nowhere",
                "--serve-secs",
                "0",
                "--units",
                "10",
                "--places",
                "200",
            ],
        )
        .expect_err("bad standby addr");
        assert!(err.0.contains("bad --standby"), "{err}");
    }
}
