//! Network-constrained moving objects (the protecting units).
//!
//! Objects spawn on random intersections, route to random destinations along
//! travel-time shortest paths, and re-target on arrival — the behaviour of
//! the Brinkhoff generator. An object reports a location update once it has
//! moved at least `report_threshold` away from its previously reported
//! position, matching the paper's "e.g. one meter away from the location
//! reported previously" update policy.

use crate::network::{NodeId, RoadNetwork};
use crate::route::Router;
use ctup_spatial::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A location update emitted by a moving object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionUpdate {
    /// The reporting object (0-based, dense).
    pub object: u32,
    /// Previously reported position.
    pub from: Point,
    /// Newly reported position.
    pub to: Point,
}

#[derive(Debug)]
struct ObjectState {
    /// Last node reached.
    at: NodeId,
    /// Exact current position (between `at` and `path.last()`).
    pos: Point,
    /// Position last reported to the server.
    reported: Point,
    /// Remaining route, reversed so the next node is `path.last()`.
    path: Vec<NodeId>,
}

/// Simulates a fleet of objects moving on a road network.
#[derive(Debug)]
pub struct MovingObjectSim {
    net: RoadNetwork,
    router: Router,
    rng: StdRng,
    objects: Vec<ObjectState>,
    report_threshold: f64,
}

impl MovingObjectSim {
    /// Spawns `num_objects` objects on random intersections of `net`.
    ///
    /// `report_threshold` is the minimum displacement from the previously
    /// reported position before a new update is emitted.
    pub fn new(net: RoadNetwork, num_objects: u32, report_threshold: f64, seed: u64) -> Self {
        assert!(net.num_nodes() > 1, "network too small");
        assert!(report_threshold >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..num_objects)
            .map(|_| {
                let at = NodeId(rng.gen_range(0..net.num_nodes() as u32));
                let pos = net.node_pos(at);
                ObjectState {
                    at,
                    pos,
                    reported: pos,
                    path: Vec::new(),
                }
            })
            .collect();
        let router = Router::new(net.num_nodes());
        MovingObjectSim {
            net,
            router,
            rng,
            objects,
            report_threshold,
        }
    }

    /// Number of simulated objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Current (not necessarily reported) position of an object.
    pub fn position(&self, object: u32) -> Point {
        self.objects[object as usize].pos
    }

    /// Last reported position of an object — the position the server
    /// believes the object to be at.
    pub fn reported_position(&self, object: u32) -> Point {
        self.objects[object as usize].reported
    }

    /// Initial/reported positions of all objects, in id order.
    pub fn reported_positions(&self) -> Vec<Point> {
        self.objects.iter().map(|o| o.reported).collect()
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    fn pick_new_route(
        net: &RoadNetwork,
        router: &mut Router,
        rng: &mut StdRng,
        from: NodeId,
    ) -> Vec<NodeId> {
        // The synthetic city is connected, but guard against pathological
        // custom networks by retrying a few destinations.
        for _ in 0..16 {
            let dest = NodeId(rng.gen_range(0..net.num_nodes() as u32));
            if dest == from {
                continue;
            }
            if let Some(path) = router.shortest_path(net, from, dest) {
                let mut rest: Vec<NodeId> = path[1..].to_vec();
                rest.reverse(); // next hop at the back
                return rest;
            }
        }
        Vec::new() // isolated node: the object stays put
    }

    fn speed_between(net: &RoadNetwork, a: NodeId, b: NodeId) -> f64 {
        for &e in net.incident(a) {
            let edge = net.edge(e);
            if net.other_end(edge, a) == b {
                return edge.speed;
            }
        }
        unreachable!("route uses a non-edge {a:?} -> {b:?}")
    }

    /// Advances every object by `dt` time units and returns the location
    /// updates triggered by the movement, in object-id order.
    pub fn tick(&mut self, dt: f64) -> Vec<PositionUpdate> {
        assert!(dt > 0.0, "dt must be positive");
        let mut updates = Vec::new();
        for (id, obj) in self.objects.iter_mut().enumerate() {
            let mut remaining = dt;
            // Bounded number of segment hops per tick as a safety net
            // against degenerate zero-length routes.
            for _ in 0..1024 {
                if remaining <= 0.0 {
                    break;
                }
                if obj.path.is_empty() {
                    obj.path =
                        Self::pick_new_route(&self.net, &mut self.router, &mut self.rng, obj.at);
                    if obj.path.is_empty() {
                        break; // isolated node
                    }
                }
                let Some(&target) = obj.path.last() else {
                    break;
                };
                let target_pos = self.net.node_pos(target);
                let speed = Self::speed_between(&self.net, obj.at, target);
                let dist = obj.pos.dist(target_pos);
                let needed = dist / speed;
                if needed <= remaining {
                    obj.pos = target_pos;
                    obj.at = target;
                    obj.path.pop();
                    remaining -= needed;
                } else {
                    obj.pos = obj.pos.lerp(target_pos, remaining * speed / dist);
                    remaining = 0.0;
                }
            }
            if obj.pos.dist(obj.reported) >= self.report_threshold {
                updates.push(PositionUpdate {
                    object: id as u32,
                    from: obj.reported,
                    to: obj.pos,
                });
                obj.reported = obj.pos;
            }
        }
        updates
    }

    /// Ticks the simulation until at least `n` updates have been produced
    /// and returns exactly `n` of them.
    pub fn collect_updates(&mut self, n: usize, dt: f64) -> Vec<PositionUpdate> {
        let mut out = Vec::with_capacity(n);
        // Give up after a generous number of ticks (e.g. everything
        // stationary because the threshold is huge).
        let mut idle_ticks = 0;
        while out.len() < n && idle_ticks < 100_000 {
            let batch = self.tick(dt);
            if batch.is_empty() {
                idle_ticks += 1;
            } else {
                idle_ticks = 0;
            }
            out.extend(batch);
        }
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CityParams;

    fn sim(seed: u64) -> MovingObjectSim {
        let net = RoadNetwork::synthetic_city(&CityParams::default(), seed);
        MovingObjectSim::new(net, 20, 0.002, seed)
    }

    #[test]
    fn updates_are_consistent_chains() {
        let mut s = sim(1);
        let mut last_reported: Vec<Point> = s.reported_positions();
        for _ in 0..50 {
            for u in s.tick(1.0) {
                // Every update's `from` must equal the previous `to`.
                assert_eq!(u.from, last_reported[u.object as usize]);
                assert!(u.from.dist(u.to) >= 0.002);
                last_reported[u.object as usize] = u.to;
            }
        }
    }

    #[test]
    fn objects_stay_in_unit_square() {
        let mut s = sim(2);
        for _ in 0..100 {
            s.tick(1.0);
        }
        for id in 0..s.num_objects() as u32 {
            let p = s.position(id);
            assert!(
                (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y),
                "{p:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = sim(3);
        let mut b = sim(3);
        for _ in 0..20 {
            assert_eq!(a.tick(0.7), b.tick(0.7));
        }
        let mut c = sim(4);
        let ticks_a: Vec<_> = (0..20).flat_map(|_| a.tick(0.7)).collect();
        let ticks_c: Vec<_> = (0..20).flat_map(|_| c.tick(0.7)).collect();
        assert_ne!(ticks_a, ticks_c);
    }

    #[test]
    fn collect_updates_returns_exactly_n() {
        let mut s = sim(5);
        let updates = s.collect_updates(500, 1.0);
        assert_eq!(updates.len(), 500);
    }

    #[test]
    fn objects_actually_move() {
        let mut s = sim(6);
        let before = s.reported_positions();
        s.collect_updates(100, 1.0);
        let after = s.reported_positions();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(moved > s.num_objects() / 2, "only {moved} objects moved");
    }

    #[test]
    fn huge_threshold_suppresses_updates() {
        let net = RoadNetwork::synthetic_city(&CityParams::default(), 9);
        let mut s = MovingObjectSim::new(net, 5, 100.0, 9);
        for _ in 0..20 {
            assert!(s.tick(1.0).is_empty());
        }
    }

    #[test]
    fn displacement_per_tick_is_bounded_by_fastest_edge() {
        let mut s = sim(8);
        let mut prev: Vec<Point> = (0..s.num_objects() as u32).map(|i| s.position(i)).collect();
        for _ in 0..50 {
            s.tick(1.0);
            for id in 0..s.num_objects() as u32 {
                let p = s.position(id);
                // Straight-line displacement cannot exceed time * max speed.
                assert!(p.dist(prev[id as usize]) <= 0.06 + 1e-9);
                prev[id as usize] = p;
            }
        }
    }
}
