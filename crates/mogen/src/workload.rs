//! Ready-made experiment workloads bundling places, units and update
//! streams, including the paper's Table III default configuration.

use crate::network::{CityParams, RoadNetwork};
use crate::objects::{MovingObjectSim, PositionUpdate};
use crate::places::{PlaceGenConfig, PlaceGenerator};
use ctup_spatial::Point;
use ctup_storage::PlaceRecord;
use serde::{Deserialize, Serialize};

/// Parameters of a complete workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of protecting units `|U|` (Table III default: 150).
    pub num_units: u32,
    /// Place generation (Table III default count: 15 000).
    pub places: PlaceGenConfig,
    /// Road network for the units.
    pub city: CityParams,
    /// Report threshold for unit updates.
    pub report_threshold: f64,
    /// Simulation time step between reporting rounds.
    pub tick_dt: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    /// The paper's default experimental setting (Table III): 150 units and
    /// 15 000 places on a unit-square city.
    fn default() -> Self {
        WorkloadParams {
            num_units: 150,
            places: PlaceGenConfig::default(),
            city: CityParams::default(),
            report_threshold: 0.002,
            tick_dt: 1.0,
            seed: 0xC7_u64,
        }
    }
}

/// A generated workload: the static place set, the initial unit positions,
/// and a deterministic stream of location updates.
#[derive(Debug)]
pub struct Workload {
    params: WorkloadParams,
    places: Vec<PlaceRecord>,
    sim: MovingObjectSim,
}

impl Workload {
    /// Generates the workload for `params`.
    pub fn generate(params: WorkloadParams) -> Self {
        let places = PlaceGenerator::new(params.places.clone()).generate(params.seed);
        let net = RoadNetwork::synthetic_city(&params.city, params.seed.wrapping_add(1));
        let sim = MovingObjectSim::new(
            net,
            params.num_units,
            params.report_threshold,
            params.seed.wrapping_add(2),
        );
        Workload {
            params,
            places,
            sim,
        }
    }

    /// The paper's Table III defaults with the given seed.
    pub fn paper_default(seed: u64) -> Self {
        Workload::generate(WorkloadParams {
            seed,
            ..WorkloadParams::default()
        })
    }

    /// The parameters this workload was generated from.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The place set.
    pub fn places(&self) -> &[PlaceRecord] {
        &self.places
    }

    /// Takes ownership of the place set (the store builders want a `Vec`).
    pub fn places_vec(&self) -> Vec<PlaceRecord> {
        self.places.clone()
    }

    /// Current reported unit positions in unit-id order (the server's
    /// initial view).
    pub fn unit_positions(&self) -> Vec<Point> {
        self.sim.reported_positions()
    }

    /// Produces the next `n` location updates of the stream.
    pub fn next_updates(&mut self, n: usize) -> Vec<PositionUpdate> {
        let dt = self.params.tick_dt;
        self.sim.collect_updates(n, dt)
    }

    /// Access to the underlying simulation (for examples that want to draw
    /// or inspect the fleet).
    pub fn sim(&self) -> &MovingObjectSim {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_iii() {
        let w = Workload::paper_default(1);
        assert_eq!(w.params().num_units, 150);
        assert_eq!(w.places().len(), 15_000);
        assert_eq!(w.unit_positions().len(), 150);
    }

    #[test]
    fn update_stream_is_deterministic() {
        let mut a = Workload::paper_default(5);
        let mut b = Workload::paper_default(5);
        assert_eq!(a.places(), b.places());
        assert_eq!(a.unit_positions(), b.unit_positions());
        assert_eq!(a.next_updates(200), b.next_updates(200));
    }

    #[test]
    fn smaller_workloads_generate_quickly() {
        let params = WorkloadParams {
            num_units: 10,
            places: PlaceGenConfig {
                count: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut w = Workload::generate(params);
        let updates = w.next_updates(50);
        assert_eq!(updates.len(), 50);
        for u in &updates {
            assert!(u.object < 10);
        }
    }
}
