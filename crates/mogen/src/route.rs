//! Shortest-path routing over a road network.
//!
//! Objects route by travel time (edge length / edge speed), so arterials
//! attract traffic just as in the Brinkhoff generator.

use crate::network::{NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate in the Dijkstra frontier (min-heap on cost).
#[derive(Debug, PartialEq)]
struct Frontier {
    cost: f64,
    node: NodeId,
}

impl Eq for Frontier {}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Reusable Dijkstra state; keep one router per thread and call
/// [`Router::shortest_path`] repeatedly without reallocating.
#[derive(Debug)]
pub struct Router {
    dist: Vec<f64>,
    prev_edge: Vec<u32>,
    touched: Vec<NodeId>,
}

/// Sentinel for "no predecessor".
const NO_EDGE: u32 = u32::MAX;

impl Router {
    /// Creates a router for networks with up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Router {
            dist: vec![f64::INFINITY; num_nodes],
            prev_edge: vec![NO_EDGE; num_nodes],
            touched: Vec::new(),
        }
    }

    /// Computes the travel-time shortest path `from -> to` and returns it as
    /// the sequence of nodes including both endpoints, or `None` when `to`
    /// is unreachable. A path from a node to itself is `[from]`.
    pub fn shortest_path(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
    ) -> Option<Vec<NodeId>> {
        assert!(
            from.index() < net.num_nodes() && to.index() < net.num_nodes(),
            "endpoint out of range"
        );
        // Reset only what the previous run dirtied.
        for &n in &self.touched {
            self.dist[n.index()] = f64::INFINITY;
            self.prev_edge[n.index()] = NO_EDGE;
        }
        self.touched.clear();

        let mut heap = BinaryHeap::new();
        self.dist[from.index()] = 0.0;
        self.touched.push(from);
        heap.push(Frontier {
            cost: 0.0,
            node: from,
        });

        while let Some(Frontier { cost, node }) = heap.pop() {
            if node == to {
                break;
            }
            if cost > self.dist[node.index()] {
                continue; // stale entry
            }
            for &edge_idx in net.incident(node) {
                let edge = net.edge(edge_idx);
                let next = net.other_end(edge, node);
                let next_cost = cost + edge.length / edge.speed;
                if next_cost < self.dist[next.index()] {
                    if self.dist[next.index()].is_infinite() {
                        self.touched.push(next);
                    }
                    self.dist[next.index()] = next_cost;
                    self.prev_edge[next.index()] = edge_idx;
                    heap.push(Frontier {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }

        if self.dist[to.index()].is_infinite() {
            return None;
        }
        // Walk predecessors back to the source.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            let edge = net.edge(self.prev_edge[cur.index()]);
            cur = net.other_end(edge, cur);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Travel time of the last computed path's destination; only valid right
    /// after a successful [`Router::shortest_path`] call for that node.
    pub fn cost_to(&self, node: NodeId) -> f64 {
        self.dist[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{CityParams, Edge};
    use ctup_spatial::Point;

    fn line_network(n: u32) -> RoadNetwork {
        let nodes = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges = (0..n - 1)
            .map(|i| Edge {
                a: NodeId(i),
                b: NodeId(i + 1),
                length: 1.0,
                speed: 1.0,
            })
            .collect();
        RoadNetwork::from_parts(nodes, edges)
    }

    #[test]
    fn straight_line_path() {
        let net = line_network(5);
        let mut router = Router::new(net.num_nodes());
        let path = router.shortest_path(&net, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(
            path,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(router.cost_to(NodeId(4)), 4.0);
    }

    #[test]
    fn trivial_self_path() {
        let net = line_network(3);
        let mut router = Router::new(net.num_nodes());
        assert_eq!(
            router.shortest_path(&net, NodeId(1), NodeId(1)).unwrap(),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected segments.
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(6.0, 0.0),
        ];
        let edges = vec![
            Edge {
                a: NodeId(0),
                b: NodeId(1),
                length: 1.0,
                speed: 1.0,
            },
            Edge {
                a: NodeId(2),
                b: NodeId(3),
                length: 1.0,
                speed: 1.0,
            },
        ];
        let net = RoadNetwork::from_parts(nodes, edges);
        let mut router = Router::new(net.num_nodes());
        assert!(router.shortest_path(&net, NodeId(0), NodeId(3)).is_none());
        // And the router remains usable afterwards.
        assert!(router.shortest_path(&net, NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn prefers_fast_detour_over_slow_direct() {
        // 0 -(slow direct)- 2, or 0 -1- 2 over fast edges.
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ];
        let slow = 0.1; // direct cost = 2 / 0.1 = 20
        let fast = 1.0; // detour cost = 2 * sqrt(2) ≈ 2.83
        let edges = vec![
            Edge {
                a: NodeId(0),
                b: NodeId(2),
                length: 2.0,
                speed: slow,
            },
            Edge {
                a: NodeId(0),
                b: NodeId(1),
                length: 2.0_f64.sqrt(),
                speed: fast,
            },
            Edge {
                a: NodeId(1),
                b: NodeId(2),
                length: 2.0_f64.sqrt(),
                speed: fast,
            },
        ];
        let net = RoadNetwork::from_parts(nodes, edges);
        let mut router = Router::new(net.num_nodes());
        let path = router.shortest_path(&net, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reusable_across_many_queries_on_city() {
        let net = RoadNetwork::synthetic_city(&CityParams::default(), 11);
        let mut router = Router::new(net.num_nodes());
        let n = net.num_nodes() as u32;
        for i in 0..50u32 {
            let from = NodeId((i * 37) % n);
            let to = NodeId((i * 101 + 13) % n);
            let path = router
                .shortest_path(&net, from, to)
                .expect("city is connected");
            assert_eq!(*path.first().unwrap(), from);
            assert_eq!(*path.last().unwrap(), to);
            // Consecutive nodes are adjacent in the network.
            for w in path.windows(2) {
                let adjacent = net
                    .incident(w[0])
                    .iter()
                    .any(|&e| net.other_end(net.edge(e), w[0]) == w[1]);
                assert!(adjacent, "{:?} -> {:?} not an edge", w[0], w[1]);
            }
        }
    }
}
