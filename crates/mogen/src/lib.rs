//! Workload substrate for the CTUP reproduction: a Brinkhoff-style
//! network-based moving-object generator and place-set generators.
//!
//! The paper evaluates on units moving along the Oldenburg road network
//! (via the Brinkhoff generator) with randomly generated places. This crate
//! rebuilds that pipeline from scratch:
//!
//! * [`faults`] — seeded degraded-feed simulation (drops, duplicates,
//!   reordering, corruption) for resilience testing;
//! * [`network`] — synthetic, connected road networks with arterials;
//! * [`route`] — travel-time Dijkstra routing;
//! * [`objects`] — objects that roam the network and report location
//!   updates past a displacement threshold;
//! * [`places`] — place sets with skewed required-protection distributions;
//! * [`uniform`] — random-waypoint and teleport models for stress tests;
//! * [`workload`] — bundles of all of the above, including the paper's
//!   Table III defaults.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod netfaults;
pub mod network;
pub mod objects;
pub mod places;
pub mod route;
pub mod uniform;
pub mod workload;

pub use faults::{FaultLog, FaultPlan};
pub use netfaults::{ChaosStream, LinkScript, NetFaultPlan};
pub use network::{CityParams, Edge, NodeId, RoadNetwork};
pub use objects::{MovingObjectSim, PositionUpdate};
pub use places::{PlaceGenConfig, PlaceGenerator, Spread};
pub use route::Router;
pub use uniform::{RandomWaypointSim, TeleportSim};
pub use workload::{Workload, WorkloadParams};
