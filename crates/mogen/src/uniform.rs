//! Simple non-network movement models.
//!
//! Used by tests and ablations as alternatives to the road-network
//! simulation: a random-waypoint model (smooth, locality-preserving) and a
//! teleport model (adversarial — every update is a jump to a fresh uniform
//! position, maximally stressing lower-bound maintenance).

use crate::objects::PositionUpdate;
use ctup_spatial::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-waypoint movement in the unit square: each object walks straight
/// towards a uniformly random target at a fixed speed and re-targets on
/// arrival. Every tick emits one update per object that moved beyond the
/// report threshold.
#[derive(Debug)]
pub struct RandomWaypointSim {
    rng: StdRng,
    pos: Vec<Point>,
    reported: Vec<Point>,
    target: Vec<Point>,
    speed: f64,
    report_threshold: f64,
}

impl RandomWaypointSim {
    /// Spawns `num_objects` objects uniformly at random.
    pub fn new(num_objects: u32, speed: f64, report_threshold: f64, seed: u64) -> Self {
        assert!(speed > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let pos: Vec<Point> = (0..num_objects)
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        let target: Vec<Point> = (0..num_objects)
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        RandomWaypointSim {
            rng,
            reported: pos.clone(),
            pos,
            target,
            speed,
            report_threshold,
        }
    }

    /// Current reported positions, in object order.
    pub fn reported_positions(&self) -> Vec<Point> {
        self.reported.clone()
    }

    /// Advances by `dt` and returns triggered updates.
    pub fn tick(&mut self, dt: f64) -> Vec<PositionUpdate> {
        let mut updates = Vec::new();
        for i in 0..self.pos.len() {
            let mut remaining = dt * self.speed;
            while remaining > 0.0 {
                let dist = self.pos[i].dist(self.target[i]);
                if dist <= remaining {
                    self.pos[i] = self.target[i];
                    remaining -= dist;
                    self.target[i] = Point::new(self.rng.gen(), self.rng.gen());
                } else {
                    self.pos[i] = self.pos[i].lerp(self.target[i], remaining / dist);
                    remaining = 0.0;
                }
            }
            if self.pos[i].dist(self.reported[i]) >= self.report_threshold {
                updates.push(PositionUpdate {
                    object: i as u32,
                    from: self.reported[i],
                    to: self.pos[i],
                });
                self.reported[i] = self.pos[i];
            }
        }
        updates
    }

    /// Collects exactly `n` updates.
    pub fn collect_updates(&mut self, n: usize, dt: f64) -> Vec<PositionUpdate> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            out.extend(self.tick(dt));
        }
        out.truncate(n);
        out
    }
}

/// Teleport movement: each update moves a round-robin-chosen object to a
/// fresh uniform position. No spatial locality at all — the worst case for
/// any scheme exploiting small per-update displacement.
#[derive(Debug)]
pub struct TeleportSim {
    rng: StdRng,
    pos: Vec<Point>,
    next: usize,
}

impl TeleportSim {
    /// Spawns `num_objects` objects uniformly at random.
    pub fn new(num_objects: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = (0..num_objects)
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        TeleportSim { rng, pos, next: 0 }
    }

    /// Current positions, in object order.
    pub fn positions(&self) -> Vec<Point> {
        self.pos.clone()
    }

    /// Produces the next teleport update.
    pub fn next_update(&mut self) -> PositionUpdate {
        let i = self.next;
        self.next = (self.next + 1) % self.pos.len();
        let from = self.pos[i];
        let to = Point::new(self.rng.gen(), self.rng.gen());
        self.pos[i] = to;
        PositionUpdate {
            object: i as u32,
            from,
            to,
        }
    }

    /// Collects exactly `n` updates.
    pub fn collect_updates(&mut self, n: usize) -> Vec<PositionUpdate> {
        (0..n).map(|_| self.next_update()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waypoint_objects_stay_in_square_and_move() {
        let mut sim = RandomWaypointSim::new(10, 0.05, 0.001, 1);
        let before = sim.reported_positions();
        let updates = sim.collect_updates(100, 1.0);
        assert_eq!(updates.len(), 100);
        for u in &updates {
            assert!((0.0..=1.0).contains(&u.to.x) && (0.0..=1.0).contains(&u.to.y));
        }
        assert_ne!(before, sim.reported_positions());
    }

    #[test]
    fn waypoint_chains_are_consistent() {
        let mut sim = RandomWaypointSim::new(5, 0.1, 0.01, 2);
        let mut last = sim.reported_positions();
        for _ in 0..30 {
            for u in sim.tick(1.0) {
                assert_eq!(u.from, last[u.object as usize]);
                last[u.object as usize] = u.to;
            }
        }
    }

    #[test]
    fn teleport_is_round_robin_and_chained() {
        let mut sim = TeleportSim::new(3, 3);
        let mut last = sim.positions();
        for (i, u) in sim.collect_updates(12).into_iter().enumerate() {
            assert_eq!(u.object as usize, i % 3);
            assert_eq!(u.from, last[u.object as usize]);
            last[u.object as usize] = u.to;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomWaypointSim::new(4, 0.05, 0.0, 9).collect_updates(20, 1.0);
        let b = RandomWaypointSim::new(4, 0.05, 0.0, 9).collect_updates(20, 1.0);
        assert_eq!(a, b);
        let mut t1 = TeleportSim::new(4, 9);
        let mut t2 = TeleportSim::new(4, 9);
        assert_eq!(t1.collect_updates(10), t2.collect_updates(10));
    }
}
