//! Seeded network fault injection for the ingest front door.
//!
//! A [`NetFaultPlan`] deterministically scripts how each connection
//! *attempt* misbehaves: dropped before the handshake, killed after a
//! byte budget (tearing a frame mid-write), throttled into a slowloris
//! trickle, or left clean. [`ChaosStream`] wraps any `Read + Write`
//! transport (a `TcpStream` in the chaos tests) and enforces the script
//! at the byte level, so the server sees genuine partial frames and slow
//! clients rather than simulated ones.
//!
//! Everything here is `std`-only and driven by a xorshift generator: the
//! same seed always yields the same fault schedule, which is what lets
//! `tests/netchaos.rs` assert *exact* accounting under faults.

use std::io::{Read, Write};
use std::time::Duration;

/// How one connection attempt is scripted to behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkScript {
    /// Refuse the attempt outright (dial succeeds, but the first write
    /// fails) — models a connection dropped before the handshake.
    pub refuse: bool,
    /// Kill the link after this many written bytes (`None` = never);
    /// landing inside a frame produces a genuine partial-frame disconnect.
    pub die_after_bytes: Option<u64>,
    /// Largest chunk a single write may push; 0 means unlimited. Small
    /// chunks with a delay model a slowloris sender.
    pub write_chunk: usize,
    /// Sleep inserted before each chunked write.
    pub write_delay: Duration,
}

impl LinkScript {
    /// A well-behaved link.
    pub fn clean() -> Self {
        LinkScript {
            refuse: false,
            die_after_bytes: None,
            write_chunk: 0,
            write_delay: Duration::ZERO,
        }
    }
}

/// Deterministic per-attempt fault schedule.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Seed for the schedule; same seed, same faults.
    pub seed: u64,
    /// Probability (per mille) that an attempt is refused outright.
    pub refuse_per_mille: u16,
    /// Probability (per mille) that the link dies mid-stream.
    pub die_per_mille: u16,
    /// Byte budget range for mid-stream deaths: the link dies after
    /// `die_min_bytes + r % die_spread_bytes` written bytes.
    pub die_min_bytes: u64,
    /// Spread added to [`NetFaultPlan::die_min_bytes`] (0 = exact).
    pub die_spread_bytes: u64,
    /// Probability (per mille) that the attempt is a slowloris trickle.
    pub slow_per_mille: u16,
    /// Chunk size of a slowloris attempt.
    pub slow_chunk: usize,
    /// Delay before each slowloris chunk.
    pub slow_delay: Duration,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan {
            seed: 0xc4a0_5bad,
            refuse_per_mille: 0,
            die_per_mille: 0,
            die_min_bytes: 16,
            die_spread_bytes: 64,
            slow_per_mille: 0,
            slow_chunk: 1,
            slow_delay: Duration::from_millis(5),
        }
    }
}

fn mix(seed: u64, attempt: u64) -> u64 {
    // splitmix64 over (seed, attempt): decorrelates consecutive attempts.
    let mut z = seed
        .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl NetFaultPlan {
    /// The script for connection attempt `attempt` (0-based). Faults are
    /// mutually exclusive per attempt, checked in order refuse → die →
    /// slow; an attempt matching none is clean.
    pub fn script(&self, attempt: u64) -> LinkScript {
        let r = mix(self.seed, attempt);
        let roll = u16::try_from(r % 1000).unwrap_or(999);
        let mut script = LinkScript::clean();
        if roll < self.refuse_per_mille {
            script.refuse = true;
        } else if roll < self.refuse_per_mille.saturating_add(self.die_per_mille) {
            let spread = self.die_spread_bytes.max(1);
            script.die_after_bytes = Some(self.die_min_bytes + (r >> 10) % spread);
        } else if roll
            < self
                .refuse_per_mille
                .saturating_add(self.die_per_mille)
                .saturating_add(self.slow_per_mille)
        {
            script.write_chunk = self.slow_chunk.max(1);
            script.write_delay = self.slow_delay;
        }
        script
    }
}

/// A `Read + Write` transport that enforces a [`LinkScript`].
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    script: LinkScript,
    written: u64,
    dead: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `script`.
    pub fn new(inner: S, script: LinkScript) -> Self {
        ChaosStream {
            inner,
            script,
            written: 0,
            dead: false,
        }
    }

    /// Bytes successfully written before the link died (or so far).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether the scripted death has happened.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn broken() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "chaos: link dead")
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(Self::broken());
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead || self.script.refuse {
            self.dead = true;
            return Err(Self::broken());
        }
        let mut allowed = buf.len();
        // Budgeted death: allow exactly the remaining budget through, so
        // the peer observes a genuinely torn frame, then fail.
        if let Some(budget) = self.script.die_after_bytes {
            let remaining = budget.saturating_sub(self.written);
            if remaining == 0 {
                self.dead = true;
                return Err(Self::broken());
            }
            allowed = allowed.min(usize::try_from(remaining).unwrap_or(usize::MAX));
        }
        if self.script.write_chunk > 0 {
            allowed = allowed.min(self.script.write_chunk);
            if !self.script.write_delay.is_zero() {
                std::thread::sleep(self.script.write_delay);
            }
        }
        let n = self.inner.write(&buf[..allowed])?;
        self.written += u64::try_from(n).unwrap_or(0);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = NetFaultPlan {
            refuse_per_mille: 100,
            die_per_mille: 300,
            slow_per_mille: 200,
            ..NetFaultPlan::default()
        };
        for attempt in 0..64 {
            assert_eq!(plan.script(attempt), plan.script(attempt));
        }
        let other = NetFaultPlan {
            seed: plan.seed + 1,
            ..plan.clone()
        };
        // A different seed must produce a different schedule somewhere.
        assert!((0..64).any(|a| plan.script(a) != other.script(a)));
    }

    #[test]
    fn fault_rates_roughly_match_per_mille() {
        let plan = NetFaultPlan {
            refuse_per_mille: 250,
            die_per_mille: 250,
            slow_per_mille: 250,
            ..NetFaultPlan::default()
        };
        let mut refused = 0;
        let mut died = 0;
        let mut slowed = 0;
        let total = 4000u64;
        for attempt in 0..total {
            let s = plan.script(attempt);
            if s.refuse {
                refused += 1;
            } else if s.die_after_bytes.is_some() {
                died += 1;
            } else if s.write_chunk > 0 {
                slowed += 1;
            }
        }
        for (name, count) in [("refused", refused), ("died", died), ("slowed", slowed)] {
            let share = f64::from(count) / total as f64;
            assert!(
                (0.15..0.35).contains(&share),
                "{name} share {share} far from 0.25"
            );
        }
    }

    #[test]
    fn die_after_bytes_tears_mid_write() {
        let script = LinkScript {
            refuse: false,
            die_after_bytes: Some(10),
            write_chunk: 0,
            write_delay: Duration::ZERO,
        };
        let mut chaos = ChaosStream::new(std::io::Cursor::new(Vec::new()), script);
        assert_eq!(chaos.write(b"0123456").expect("within budget"), 7);
        // 3 bytes of budget left: the write is truncated, then fails.
        assert_eq!(chaos.write(b"789abcdef").expect("torn write"), 3);
        assert!(chaos.write(b"x").is_err());
        assert!(chaos.is_dead());
        assert_eq!(chaos.written(), 10);
        assert!(chaos.read(&mut [0u8; 4]).is_err());
    }

    #[test]
    fn refuse_fails_the_first_write() {
        let script = LinkScript {
            refuse: true,
            ..LinkScript::clean()
        };
        let mut chaos = ChaosStream::new(Vec::new(), script);
        assert!(chaos.write(b"hello").is_err());
    }

    #[test]
    fn slow_chunk_limits_write_size() {
        let script = LinkScript {
            refuse: false,
            die_after_bytes: None,
            write_chunk: 2,
            write_delay: Duration::ZERO,
        };
        let mut chaos = ChaosStream::new(Vec::new(), script);
        assert_eq!(chaos.write(b"abcdef").expect("chunked"), 2);
        assert_eq!(chaos.write(b"cdef").expect("chunked"), 2);
    }
}
