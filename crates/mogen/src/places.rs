//! Place generation with configurable required-protection distributions.
//!
//! The paper says only that "the places are randomly generated"; its
//! motivation section implies a skewed requirement distribution (banks need
//! six units, residential buildings one). The default here samples
//! `RP ∈ {rp_min .. =rp_max}` with Zipf-tilted weights `w_r ∝ 1/r^skew`, so
//! most places need little protection and a few need a lot.

use ctup_spatial::{Point, Rect};
use ctup_storage::{PlaceId, PlaceRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How place locations are spread over the space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Spread {
    /// Uniformly at random over the space.
    Uniform,
    /// A mixture: `fraction_clustered` of the places fall in Gaussian
    /// clusters (downtown blocks, malls, …), the rest are uniform.
    Clustered {
        /// Number of cluster centers.
        clusters: u32,
        /// Standard deviation of each cluster.
        std_dev: f64,
        /// Fraction of places assigned to clusters (0.0 ..= 1.0).
        fraction_clustered: f64,
    },
}

/// Configuration for [`PlaceGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceGenConfig {
    /// Number of places `|P|`.
    pub count: u32,
    /// Smallest required protection (inclusive, ≥ 0).
    pub rp_min: u32,
    /// Largest required protection (inclusive).
    pub rp_max: u32,
    /// Zipf exponent of the requirement distribution; 0 = uniform over
    /// `rp_min..=rp_max`, larger = more skew towards `rp_min`.
    pub rp_skew: f64,
    /// Probability that a place is extended rather than a point.
    pub extent_prob: f64,
    /// Maximum side length of an extended place.
    pub extent_max_side: f64,
    /// Location distribution.
    pub spread: Spread,
}

impl Default for PlaceGenConfig {
    fn default() -> Self {
        PlaceGenConfig {
            count: 15_000,
            rp_min: 1,
            rp_max: 8,
            rp_skew: 1.0,
            extent_prob: 0.0,
            extent_max_side: 0.01,
            spread: Spread::Uniform,
        }
    }
}

/// Seeded generator of place data sets over the unit square.
#[derive(Debug, Clone)]
pub struct PlaceGenerator {
    config: PlaceGenConfig,
}

impl PlaceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (empty RP range, probabilities
    /// outside `[0, 1]`).
    pub fn new(config: PlaceGenConfig) -> Self {
        assert!(config.rp_min <= config.rp_max, "empty RP range");
        assert!(
            (0.0..=1.0).contains(&config.extent_prob),
            "extent_prob out of range"
        );
        assert!(config.rp_skew >= 0.0, "negative skew");
        if let Spread::Clustered {
            clusters,
            fraction_clustered,
            std_dev,
        } = &config.spread
        {
            assert!(*clusters > 0, "need at least one cluster");
            assert!(
                (0.0..=1.0).contains(fraction_clustered),
                "fraction out of range"
            );
            assert!(*std_dev > 0.0, "cluster std_dev must be positive");
        }
        PlaceGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PlaceGenConfig {
        &self.config
    }

    /// Cumulative weights of the RP distribution.
    fn rp_cdf(&self) -> Vec<f64> {
        let weights: Vec<f64> = (self.config.rp_min..=self.config.rp_max)
            .map(|r| 1.0 / (r.max(1) as f64).powf(self.config.rp_skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }

    fn sample_rp(&self, cdf: &[f64], rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        let idx = cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1);
        self.config.rp_min + idx as u32
    }

    /// Standard normal sample via Box–Muller (rand 0.8 core has no normal
    /// distribution without the `rand_distr` crate).
    fn sample_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn sample_pos(&self, centers: &[Point], rng: &mut StdRng) -> Point {
        match &self.config.spread {
            Spread::Uniform => Point::new(rng.gen(), rng.gen()),
            Spread::Clustered {
                std_dev,
                fraction_clustered,
                ..
            } => {
                if rng.gen::<f64>() < *fraction_clustered {
                    let c = centers[rng.gen_range(0..centers.len())];
                    Point::new(
                        (c.x + Self::sample_normal(rng) * std_dev).clamp(0.0, 1.0),
                        (c.y + Self::sample_normal(rng) * std_dev).clamp(0.0, 1.0),
                    )
                } else {
                    Point::new(rng.gen(), rng.gen())
                }
            }
        }
    }

    /// Generates the data set deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<PlaceRecord> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let cdf = self.rp_cdf();
        let centers: Vec<Point> = match &self.config.spread {
            Spread::Uniform => Vec::new(),
            Spread::Clustered { clusters, .. } => (0..*clusters)
                .map(|_| Point::new(rng.gen(), rng.gen()))
                .collect(),
        };
        (0..self.config.count)
            .map(|i| {
                let pos = self.sample_pos(&centers, &mut rng);
                let rp = self.sample_rp(&cdf, &mut rng);
                let id = PlaceId(i);
                if self.config.extent_prob > 0.0 && rng.gen::<f64>() < self.config.extent_prob {
                    let half_w = rng.gen_range(0.0..self.config.extent_max_side) / 2.0;
                    let half_h = rng.gen_range(0.0..self.config.extent_max_side) / 2.0;
                    // Clamp the extent to the unit square while keeping pos inside.
                    let lo = Point::new((pos.x - half_w).max(0.0), (pos.y - half_h).max(0.0));
                    let hi = Point::new((pos.x + half_w).min(1.0), (pos.y + half_h).min(1.0));
                    PlaceRecord::extended(id, pos, rp, Rect::new(lo, hi))
                } else {
                    PlaceRecord::point(id, pos, rp)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let g = PlaceGenerator::new(PlaceGenConfig {
            count: 1000,
            ..Default::default()
        });
        let places = g.generate(1);
        assert_eq!(places.len(), 1000);
        for (i, p) in places.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i);
            assert!((0.0..=1.0).contains(&p.pos.x) && (0.0..=1.0).contains(&p.pos.y));
            assert!((1..=8).contains(&p.rp));
            assert!(p.extent.is_none());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = PlaceGenerator::new(PlaceGenConfig {
            count: 100,
            ..Default::default()
        });
        assert_eq!(g.generate(7), g.generate(7));
        assert_ne!(g.generate(7), g.generate(8));
    }

    #[test]
    fn zipf_skew_prefers_low_requirements() {
        let g = PlaceGenerator::new(PlaceGenConfig {
            count: 20_000,
            rp_skew: 1.5,
            ..Default::default()
        });
        let places = g.generate(2);
        let ones = places.iter().filter(|p| p.rp == 1).count();
        let eights = places.iter().filter(|p| p.rp == 8).count();
        assert!(ones > 5 * eights, "ones={ones} eights={eights}");
        assert!(eights > 0, "tail should still occur");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let g = PlaceGenerator::new(PlaceGenConfig {
            count: 16_000,
            rp_skew: 0.0,
            ..Default::default()
        });
        let places = g.generate(3);
        for r in 1..=8u32 {
            let n = places.iter().filter(|p| p.rp == r).count();
            assert!((1600..2400).contains(&n), "rp={r}: {n}");
        }
    }

    #[test]
    fn clustered_spread_concentrates_places() {
        let g = PlaceGenerator::new(PlaceGenConfig {
            count: 5000,
            spread: Spread::Clustered {
                clusters: 3,
                std_dev: 0.02,
                fraction_clustered: 1.0,
            },
            ..Default::default()
        });
        let places = g.generate(4);
        // With 3 tight clusters, a 10x10 grid histogram must be very uneven:
        // some cell should hold far more than the uniform share of 50.
        let mut histogram = [0u32; 100];
        for p in &places {
            let cx = (p.pos.x * 10.0).min(9.0) as usize;
            let cy = (p.pos.y * 10.0).min(9.0) as usize;
            histogram[cy * 10 + cx] += 1;
        }
        let max = *histogram.iter().max().unwrap();
        assert!(max > 500, "max cell load {max}");
    }

    #[test]
    fn extents_are_valid_and_bounded() {
        let g = PlaceGenerator::new(PlaceGenConfig {
            count: 2000,
            extent_prob: 0.5,
            extent_max_side: 0.02,
            ..Default::default()
        });
        let places = g.generate(5);
        let extended = places.iter().filter(|p| p.extent.is_some()).count();
        assert!((700..1300).contains(&extended), "extended={extended}");
        for p in &places {
            if let Some(r) = &p.extent {
                assert!(r.contains_point(p.pos));
                assert!(r.width() <= 0.02 && r.height() <= 0.02);
                assert!(r.lo.x >= 0.0 && r.hi.x <= 1.0 && r.lo.y >= 0.0 && r.hi.y <= 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty RP range")]
    fn rejects_inverted_rp_range() {
        PlaceGenerator::new(PlaceGenConfig {
            rp_min: 5,
            rp_max: 2,
            ..Default::default()
        });
    }
}
