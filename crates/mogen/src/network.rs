//! Synthetic road networks.
//!
//! The paper generates its protecting units with the Brinkhoff
//! network-based generator on the Oldenburg road map. That data set is not
//! redistributable, so this module builds a synthetic but structurally
//! comparable city network: a jittered lattice of intersections with a
//! fraction of streets removed, a few fast diagonal arterials, and a
//! connectivity repair pass. All randomness is seeded.

use ctup_spatial::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a network node (an intersection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected road segment between two intersections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Euclidean length.
    pub length: f64,
    /// Travel speed on this segment (space units per time unit).
    pub speed: f64,
}

/// An undirected road network embedded in the plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
    /// `adjacency[n]` lists indices into `edges` incident to node `n`.
    adjacency: Vec<Vec<u32>>,
}

/// Parameters for [`RoadNetwork::synthetic_city`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityParams {
    /// Intersections per side of the underlying lattice (≥ 2).
    pub blocks_per_side: u32,
    /// Fraction of lattice streets randomly removed before the
    /// connectivity repair (0.0 ..= 0.9).
    pub removal_rate: f64,
    /// Positional jitter of intersections as a fraction of block size.
    pub jitter: f64,
    /// Base street speed.
    pub street_speed: f64,
    /// Speed of arterial roads (every `arterial_every`-th row/column).
    pub arterial_speed: f64,
    /// Period of arterial rows/columns; 0 disables arterials.
    pub arterial_every: u32,
}

impl Default for CityParams {
    fn default() -> Self {
        CityParams {
            blocks_per_side: 16,
            removal_rate: 0.15,
            jitter: 0.25,
            street_speed: 0.02,
            arterial_speed: 0.06,
            arterial_every: 4,
        }
    }
}

/// Union-find used by the connectivity repair pass.
struct DisjointSet {
    parent: Vec<u32>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

impl RoadNetwork {
    /// Builds a network from explicit nodes and edges.
    ///
    /// # Panics
    /// Panics if an edge references a missing node or has a non-positive
    /// speed.
    pub fn from_parts(nodes: Vec<Point>, edges: Vec<Edge>) -> Self {
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            assert!(
                e.a.index() < nodes.len() && e.b.index() < nodes.len(),
                "edge endpoint out of range"
            );
            assert!(e.speed > 0.0, "edge speed must be positive");
            adjacency[e.a.index()].push(i as u32);
            adjacency[e.b.index()].push(i as u32);
        }
        RoadNetwork {
            nodes,
            edges,
            adjacency,
        }
    }

    /// Generates a synthetic city inside the unit square (see module docs).
    /// The result is always connected.
    pub fn synthetic_city(params: &CityParams, seed: u64) -> Self {
        assert!(params.blocks_per_side >= 2, "need at least a 2x2 lattice");
        assert!(
            (0.0..=0.9).contains(&params.removal_rate),
            "removal_rate out of range"
        );
        let n = params.blocks_per_side;
        let mut rng = StdRng::seed_from_u64(seed);
        let spacing = 1.0 / (n - 1) as f64;
        let jitter = params.jitter * spacing * 0.5;

        // Jittered lattice nodes; boundary nodes stay inside the unit square.
        let mut nodes = Vec::with_capacity((n * n) as usize);
        for row in 0..n {
            for col in 0..n {
                let x = (col as f64 * spacing + rng.gen_range(-jitter..=jitter)).clamp(0.0, 1.0);
                let y = (row as f64 * spacing + rng.gen_range(-jitter..=jitter)).clamp(0.0, 1.0);
                nodes.push(Point::new(x, y));
            }
        }
        let node_at = |col: u32, row: u32| NodeId(row * n + col);

        let is_arterial =
            |i: u32| params.arterial_every != 0 && i.is_multiple_of(params.arterial_every);
        let mut kept: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut removed: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for row in 0..n {
            for col in 0..n {
                let from = node_at(col, row);
                // Horizontal street.
                if col + 1 < n {
                    let speed = if is_arterial(row) {
                        params.arterial_speed
                    } else {
                        params.street_speed
                    };
                    let to = node_at(col + 1, row);
                    if !is_arterial(row) && rng.gen_bool(params.removal_rate) {
                        removed.push((from, to, speed));
                    } else {
                        kept.push((from, to, speed));
                    }
                }
                // Vertical street.
                if row + 1 < n {
                    let speed = if is_arterial(col) {
                        params.arterial_speed
                    } else {
                        params.street_speed
                    };
                    let to = node_at(col, row + 1);
                    if !is_arterial(col) && rng.gen_bool(params.removal_rate) {
                        removed.push((from, to, speed));
                    } else {
                        kept.push((from, to, speed));
                    }
                }
            }
        }

        // Connectivity repair: re-add removed streets that bridge components.
        let mut dsu = DisjointSet::new(nodes.len());
        for &(a, b, _) in &kept {
            dsu.union(a.0, b.0);
        }
        for &(a, b, speed) in &removed {
            if dsu.find(a.0) != dsu.find(b.0) {
                dsu.union(a.0, b.0);
                kept.push((a, b, speed));
            }
        }

        let edges = kept
            .into_iter()
            .map(|(a, b, speed)| Edge {
                a,
                b,
                length: nodes[a.index()].dist(nodes[b.index()]),
                speed,
            })
            .collect();
        RoadNetwork::from_parts(nodes, edges)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Position of a node.
    #[inline]
    pub fn node_pos(&self, node: NodeId) -> Point {
        self.nodes[node.index()]
    }

    /// The edges incident to `node` as indices into [`RoadNetwork::edge`].
    #[inline]
    pub fn incident(&self, node: NodeId) -> &[u32] {
        &self.adjacency[node.index()]
    }

    /// Edge by index.
    #[inline]
    pub fn edge(&self, idx: u32) -> &Edge {
        &self.edges[idx as usize]
    }

    /// The endpoint of `edge` that is not `from`.
    #[inline]
    pub fn other_end(&self, edge: &Edge, from: NodeId) -> NodeId {
        if edge.a == from {
            edge.b
        } else {
            debug_assert_eq!(edge.b, from);
            edge.a
        }
    }

    /// Bounding box of all nodes.
    pub fn bbox(&self) -> Rect {
        self.nodes
            .iter()
            .fold(Rect::empty(), |acc, &p| acc.union(&Rect::point(p)))
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(node) = stack.pop() {
            for &e in self.incident(node) {
                let next = self.other_end(self.edge(e), node);
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_city_is_connected_and_in_unit_square() {
        for seed in 0..5 {
            let net = RoadNetwork::synthetic_city(&CityParams::default(), seed);
            assert!(net.is_connected(), "seed {seed}");
            assert_eq!(net.num_nodes(), 256);
            assert!(net.num_edges() > 256, "too sparse: {}", net.num_edges());
            let bb = net.bbox();
            assert!(bb.lo.x >= 0.0 && bb.lo.y >= 0.0 && bb.hi.x <= 1.0 && bb.hi.y <= 1.0);
        }
    }

    #[test]
    fn synthetic_city_is_deterministic_per_seed() {
        let a = RoadNetwork::synthetic_city(&CityParams::default(), 42);
        let b = RoadNetwork::synthetic_city(&CityParams::default(), 42);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.node_pos(NodeId(17)), b.node_pos(NodeId(17)));
        let c = RoadNetwork::synthetic_city(&CityParams::default(), 43);
        assert_ne!(a.node_pos(NodeId(17)), c.node_pos(NodeId(17)));
    }

    #[test]
    fn removal_rate_thins_the_grid() {
        let dense = RoadNetwork::synthetic_city(
            &CityParams {
                removal_rate: 0.0,
                ..CityParams::default()
            },
            1,
        );
        let sparse = RoadNetwork::synthetic_city(
            &CityParams {
                removal_rate: 0.5,
                ..CityParams::default()
            },
            1,
        );
        assert!(sparse.num_edges() < dense.num_edges());
        assert!(sparse.is_connected());
    }

    #[test]
    fn arterials_are_faster() {
        let net = RoadNetwork::synthetic_city(&CityParams::default(), 7);
        let speeds: Vec<f64> = (0..net.num_edges() as u32)
            .map(|i| net.edge(i).speed)
            .collect();
        assert!(speeds.contains(&0.02));
        assert!(speeds.contains(&0.06));
    }

    #[test]
    fn edge_lengths_match_geometry() {
        let net = RoadNetwork::synthetic_city(&CityParams::default(), 3);
        for i in 0..net.num_edges() as u32 {
            let e = net.edge(i);
            let expect = net.node_pos(e.a).dist(net.node_pos(e.b));
            assert!((e.length - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn from_parts_builds_adjacency() {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let edges = vec![
            Edge {
                a: NodeId(0),
                b: NodeId(1),
                length: 1.0,
                speed: 1.0,
            },
            Edge {
                a: NodeId(1),
                b: NodeId(2),
                length: 1.0,
                speed: 1.0,
            },
        ];
        let net = RoadNetwork::from_parts(nodes, edges);
        assert_eq!(net.incident(NodeId(1)), &[0, 1]);
        assert_eq!(net.other_end(net.edge(0), NodeId(0)), NodeId(1));
        assert_eq!(net.other_end(net.edge(0), NodeId(1)), NodeId(0));
        assert!(net.is_connected());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn from_parts_rejects_dangling_edges() {
        RoadNetwork::from_parts(
            vec![Point::new(0.0, 0.0)],
            vec![Edge {
                a: NodeId(0),
                b: NodeId(5),
                length: 1.0,
                speed: 1.0,
            }],
        );
    }
}
