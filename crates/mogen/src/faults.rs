//! Deterministic degraded-feed simulation.
//!
//! A [`FaultPlan`] perturbs a generated update stream the way a lossy
//! wireless link would: dropping, duplicating, reordering, delaying and
//! corrupting messages, all driven by one seed so every run is exactly
//! reproducible. The plan is generic over the item type — the consumer
//! supplies the corruption mutation — so it works on raw
//! [`PositionUpdate`](crate::objects::PositionUpdate)s as well as on the
//! core crate's stamped wire reports without this crate knowing their
//! layout.
//!
//! The model is emission-slot based: item `i` of the clean stream is
//! nominally emitted at slot `i`; reordering and delay push its slot
//! forward by a bounded amount, duplication emits a second copy at a later
//! slot, and a stable sort by slot produces the delivered order. Faults
//! therefore never move a message *earlier* than it was sent — exactly the
//! asymmetry of a store-and-forward radio link.

use ctup_storage::DiskFaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded description of how a feed degrades. Probabilities are
/// per-message and independent; `0.0` disables the fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; two applications of the same plan to the same stream
    /// produce identical output.
    pub seed: u64,
    /// Probability a message is lost entirely.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (the copy arrives within
    /// `reorder_window` slots after the original).
    pub dup_prob: f64,
    /// Probability a message is pushed up to `reorder_window` slots late,
    /// overtaken by its successors.
    pub reorder_prob: f64,
    /// Maximum forward displacement (in slots) of a reordered or
    /// duplicated message; `0` disables reordering and duplication.
    pub reorder_window: usize,
    /// Probability the consumer-supplied corruption is applied to a
    /// message's payload.
    pub corrupt_prob: f64,
    /// Probability a message is delayed up to `max_delay` slots (a longer
    /// stall than plain reordering).
    pub delay_prob: f64,
    /// Maximum delay (in slots); `0` disables delays.
    pub max_delay: usize,
    /// Effective-update sequence numbers at which the *processor* (not the
    /// link) should be crashed, forwarded by the harness to the supervised
    /// pipeline's fault injection. Carried here so one plan value describes
    /// the whole chaos scenario.
    pub panic_at: Vec<u64>,
    /// Faults of the *storage medium* (transient read errors, torn page
    /// writes, bit flips, latency spikes), forwarded by the harness to the
    /// lower level's [`FaultDisk`](ctup_storage::FaultDisk). The link
    /// faults above and the disk faults here together describe one chaos
    /// scenario end to end.
    pub disk: DiskFaultPlan,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: 4,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 16,
            panic_at: Vec::new(),
            disk: DiskFaultPlan::default(),
        }
    }
}

/// What [`FaultPlan::apply`] did, for assertions and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Messages removed from the stream.
    pub dropped: u64,
    /// Extra copies emitted.
    pub duplicated: u64,
    /// Messages displaced by reordering.
    pub reordered: u64,
    /// Messages displaced by a long delay.
    pub delayed: u64,
    /// Messages whose payload was corrupted.
    pub corrupted: u64,
    /// Messages in the degraded stream (input − dropped + duplicated).
    pub emitted: u64,
}

impl FaultPlan {
    /// Degrades `input`, returning the delivered stream and a log of the
    /// injected faults. `corrupt` mutates a message payload in place (e.g.
    /// poisoning a coordinate or the unit id); it receives the plan's RNG
    /// so corruption is covered by the same seed.
    pub fn apply<T: Clone>(
        &self,
        input: Vec<T>,
        mut corrupt: impl FnMut(&mut T, &mut StdRng),
    ) -> (Vec<T>, FaultLog) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut log = FaultLog::default();
        // (slot, tiebreak) keys keep the sort stable and deterministic:
        // originals order before duplicates landing on the same slot.
        let mut emissions: Vec<(usize, usize, u8, T)> = Vec::with_capacity(input.len());
        for (i, mut item) in input.into_iter().enumerate() {
            if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
                log.dropped += 1;
                continue;
            }
            if self.corrupt_prob > 0.0 && rng.gen_bool(self.corrupt_prob) {
                corrupt(&mut item, &mut rng);
                log.corrupted += 1;
            }
            let mut slot = i;
            if self.reorder_window > 0 && self.reorder_prob > 0.0 && rng.gen_bool(self.reorder_prob)
            {
                slot += rng.gen_range(1..=self.reorder_window);
                log.reordered += 1;
            }
            if self.max_delay > 0 && self.delay_prob > 0.0 && rng.gen_bool(self.delay_prob) {
                slot += rng.gen_range(1..=self.max_delay);
                log.delayed += 1;
            }
            if self.reorder_window > 0 && self.dup_prob > 0.0 && rng.gen_bool(self.dup_prob) {
                let dup_slot = slot + rng.gen_range(1..=self.reorder_window);
                emissions.push((dup_slot, i, 1, item.clone()));
                log.duplicated += 1;
            }
            emissions.push((slot, i, 0, item));
        }
        emissions.sort_by_key(|&(slot, i, copy, _)| (slot, i, copy));
        log.emitted = emissions.len() as u64;
        (
            emissions.into_iter().map(|(_, _, _, item)| item).collect(),
            log,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn no_faults_is_identity() {
        let plan = FaultPlan::default();
        let (out, log) = plan.apply(stream(50), |_, _| {});
        assert_eq!(out, stream(50));
        assert_eq!(
            log,
            FaultLog {
                emitted: 50,
                ..FaultLog::default()
            }
        );
    }

    #[test]
    fn same_seed_same_degradation() {
        let plan = FaultPlan {
            seed: 99,
            drop_prob: 0.1,
            dup_prob: 0.1,
            reorder_prob: 0.2,
            corrupt_prob: 0.05,
            delay_prob: 0.05,
            ..FaultPlan::default()
        };
        let corrupt = |item: &mut u32, _: &mut StdRng| *item = u32::MAX;
        let (a, log_a) = plan.apply(stream(300), corrupt);
        let (b, log_b) = plan.apply(stream(300), corrupt);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        // A different seed degrades differently.
        let (c, _) = FaultPlan { seed: 100, ..plan }.apply(stream(300), corrupt);
        assert_ne!(a, c);
    }

    #[test]
    fn log_accounts_for_every_message() {
        let plan = FaultPlan {
            seed: 7,
            drop_prob: 0.2,
            dup_prob: 0.15,
            reorder_prob: 0.3,
            corrupt_prob: 0.1,
            ..FaultPlan::default()
        };
        let (out, log) = plan.apply(stream(1_000), |item, _| *item = u32::MAX);
        assert_eq!(out.len() as u64, log.emitted);
        assert_eq!(log.emitted, 1_000 - log.dropped + log.duplicated);
        assert!(log.dropped > 0 && log.duplicated > 0 && log.reordered > 0);
        assert!(out.iter().filter(|&&x| x == u32::MAX).count() as u64 >= log.corrupted);
    }

    #[test]
    fn reordering_is_bounded_by_the_window() {
        let plan = FaultPlan {
            seed: 3,
            reorder_prob: 1.0,
            reorder_window: 4,
            ..FaultPlan::default()
        };
        let (out, log) = plan.apply(stream(200), |_, _| {});
        assert_eq!(log.reordered, 200);
        for (pos, &item) in out.iter().enumerate() {
            // Slot = original index + displacement in 1..=4; after sorting,
            // no message strays more than the window from its origin.
            let origin = item as usize;
            assert!(pos.abs_diff(origin) <= 4, "item {item} at {pos}");
        }
    }

    #[test]
    fn duplicates_arrive_after_their_original() {
        let plan = FaultPlan {
            seed: 11,
            dup_prob: 1.0,
            ..FaultPlan::default()
        };
        let (out, log) = plan.apply(stream(100), |_, _| {});
        assert_eq!(log.duplicated, 100);
        assert_eq!(out.len(), 200);
        let mut first_seen = vec![usize::MAX; 100];
        for (pos, &item) in out.iter().enumerate() {
            let slot = &mut first_seen[item as usize];
            if *slot == usize::MAX {
                *slot = pos;
            } else {
                assert!(pos > *slot, "duplicate of {item} before its original");
            }
        }
    }
}
