//! Property-based tests of the workload substrate: synthetic cities are
//! always connected, routes are valid walks, moving objects respect the
//! network's speed limits and report thresholds, and generators are
//! deterministic functions of their seed.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_mogen::{
    CityParams, MovingObjectSim, NodeId, PlaceGenConfig, PlaceGenerator, RoadNetwork, Router,
};
use proptest::prelude::*;

fn city_params() -> impl Strategy<Value = CityParams> {
    (3u32..12, 0.0f64..0.6, 0.0f64..0.9, 1u32..8).prop_map(
        |(blocks, removal, jitter, arterial_every)| CityParams {
            blocks_per_side: blocks,
            removal_rate: removal,
            jitter,
            arterial_every,
            ..CityParams::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn synthetic_cities_are_connected_and_bounded(params in city_params(), seed in 0u64..1000) {
        let net = RoadNetwork::synthetic_city(&params, seed);
        prop_assert!(net.is_connected());
        prop_assert_eq!(net.num_nodes(), (params.blocks_per_side * params.blocks_per_side) as usize);
        let bb = net.bbox();
        prop_assert!(bb.lo.x >= 0.0 && bb.lo.y >= 0.0);
        prop_assert!(bb.hi.x <= 1.0 && bb.hi.y <= 1.0);
        // Every edge length matches its endpoints and every speed is one of
        // the two configured classes.
        for i in 0..net.num_edges() as u32 {
            let e = net.edge(i);
            let d = net.node_pos(e.a).dist(net.node_pos(e.b));
            prop_assert!((e.length - d).abs() < 1e-12);
            prop_assert!(e.speed == params.street_speed || e.speed == params.arterial_speed);
        }
    }

    #[test]
    fn routes_are_valid_walks(params in city_params(), seed in 0u64..500, pairs in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..10)) {
        let net = RoadNetwork::synthetic_city(&params, seed);
        let mut router = Router::new(net.num_nodes());
        for (a, b) in pairs {
            let from = NodeId(a.index(net.num_nodes()) as u32);
            let to = NodeId(b.index(net.num_nodes()) as u32);
            let path = router.shortest_path(&net, from, to);
            let path = path.expect("connected city");
            prop_assert_eq!(*path.first().unwrap(), from);
            prop_assert_eq!(*path.last().unwrap(), to);
            for w in path.windows(2) {
                let adjacent = net
                    .incident(w[0])
                    .iter()
                    .any(|&e| net.other_end(net.edge(e), w[0]) == w[1]);
                prop_assert!(adjacent, "{:?}->{:?} is not an edge", w[0], w[1]);
            }
            // No node repeats on a shortest path.
            let mut seen: Vec<NodeId> = path.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), path.len(), "cycle in shortest path");
        }
    }

    #[test]
    fn objects_respect_speed_and_threshold(
        seed in 0u64..300,
        num_objects in 1u32..20,
        threshold in 0.0005f64..0.01,
        ticks in 1usize..40,
    ) {
        let params = CityParams::default();
        let net = RoadNetwork::synthetic_city(&params, seed);
        let mut sim = MovingObjectSim::new(net, num_objects, threshold, seed);
        let mut last_reported = sim.reported_positions();
        let dt = 1.0;
        for _ in 0..ticks {
            for u in sim.tick(dt) {
                // Chained from the previous report and past the threshold.
                prop_assert_eq!(u.from, last_reported[u.object as usize]);
                prop_assert!(u.from.dist(u.to) >= threshold);
                last_reported[u.object as usize] = u.to;
            }
            for id in 0..num_objects {
                let p = sim.position(id);
                prop_assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn place_generator_respects_configuration(
        count in 1u32..500,
        rp_min in 0u32..4,
        rp_span in 0u32..6,
        skew in 0.0f64..2.0,
        seed in 0u64..100,
    ) {
        let config = PlaceGenConfig {
            count,
            rp_min,
            rp_max: rp_min + rp_span,
            rp_skew: skew,
            ..PlaceGenConfig::default()
        };
        let a = PlaceGenerator::new(config.clone()).generate(seed);
        let b = PlaceGenerator::new(config).generate(seed);
        prop_assert_eq!(&a, &b, "not deterministic");
        prop_assert_eq!(a.len(), count as usize);
        for (i, p) in a.iter().enumerate() {
            prop_assert_eq!(p.id.0 as usize, i);
            prop_assert!((rp_min..=rp_min + rp_span).contains(&p.rp));
            prop_assert!((0.0..=1.0).contains(&p.pos.x) && (0.0..=1.0).contains(&p.pos.y));
        }
    }
}
