//! Model of the admission watermark hysteresis (`core::net::admission`).
//!
//! `try_enqueue` under the queue mutex: at capacity, latch shedding; in
//! the shed state, reject until depth drains to the low watermark, then
//! clear the latch and admit; out of it, latch at the high watermark.
//! The point of the hysteresis is that the shed/admit boundary must not
//! flap (clear only at low, not just below high) and must not latch up
//! (a drained queue must re-admit). The model runs a producer burst, a
//! concurrent drain, and a final probe arrival after the queue empties —
//! the probe is what detects latch-up.

use crate::{Model, Step};

/// The queue state plus the bookkeeping the properties speak about.
#[derive(Debug, Default)]
pub struct AdmissionWorld {
    pub depth: usize,
    pub shedding: bool,
    pub admitted: usize,
    pub shed: usize,
    /// shed→admit transitions (hysteresis clears).
    pub clears: usize,
    /// Set when a clear happened at a depth above the low watermark.
    pub cleared_above_low: bool,
    pub producer_done: bool,
}

/// Seeded bugs in the hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMutation {
    /// The shipped hysteresis.
    Correct,
    /// Clears the shed latch as soon as depth dips below high — the
    /// classic flapping bug hysteresis exists to prevent.
    ClearBelowHigh,
    /// Never clears the latch: sheds forever after the first burst.
    NeverClear,
}

const CAPACITY: usize = 4;
const HIGH: usize = 3;
const LOW: usize = 1;
const ARRIVALS: usize = 6;

fn try_enqueue(w: &mut AdmissionWorld, m: AdmissionMutation) {
    if w.depth >= CAPACITY {
        w.shedding = true;
        w.shed += 1;
        return;
    }
    if w.shedding {
        let clear_at = match m {
            AdmissionMutation::ClearBelowHigh => HIGH - 1,
            _ => LOW,
        };
        if w.depth > clear_at {
            w.shed += 1;
            return;
        }
        if m != AdmissionMutation::NeverClear {
            w.shedding = false;
            w.clears += 1;
            if w.depth > LOW {
                w.cleared_above_low = true;
            }
        }
    } else if w.depth >= HIGH {
        w.shedding = true;
        w.shed += 1;
        return;
    }
    w.admitted += 1;
    w.depth += 1;
}

/// Builds the admission model under `m`.
pub fn model(m: AdmissionMutation) -> Model<AdmissionWorld> {
    // Producer: ARRIVALS calls to try_enqueue (each one atomic section),
    // then wait for the queue to fully drain, then one probe arrival.
    let mut sent = 0usize;
    let mut probed = false;
    let producer = move |w: &mut AdmissionWorld| -> Step {
        if sent < ARRIVALS {
            try_enqueue(w, m);
            sent += 1;
            return Step::Ran;
        }
        if !probed {
            if w.depth > 0 {
                return Step::Blocked;
            }
            try_enqueue(w, m);
            probed = true;
            return Step::Ran;
        }
        w.producer_done = true;
        Step::Done
    };

    // Consumer: pop one report per step.
    let consumer = move |w: &mut AdmissionWorld| -> Step {
        if w.depth > 0 {
            w.depth -= 1;
            Step::Ran
        } else if w.producer_done {
            Step::Done
        } else {
            Step::Blocked
        }
    };

    Model::new(AdmissionWorld::default())
        .thread("producer", producer)
        .thread("consumer", consumer)
        .invariant("depth-bounded", |w: &AdmissionWorld| {
            if w.depth <= CAPACITY {
                Ok(())
            } else {
                Err(format!("depth {} exceeds capacity {CAPACITY}", w.depth))
            }
        })
        .invariant("clears-only-at-low", |w: &AdmissionWorld| {
            if w.cleared_above_low {
                Err(format!(
                    "shed latch cleared above the low watermark {LOW} (flapping)"
                ))
            } else {
                Ok(())
            }
        })
        .invariant("no-flapping", |w: &AdmissionWorld| {
            // Each genuine clear needs (HIGH - LOW) drains since the last
            // latch, so clears are bounded by arrivals / (HIGH - LOW),
            // plus the final probe.
            let bound = (ARRIVALS + 1) / (HIGH - LOW) + 1;
            if w.clears <= bound {
                Ok(())
            } else {
                Err(format!("{} hysteresis clears > bound {bound}", w.clears))
            }
        })
        .final_check("no-shed-latch-up", |w: &AdmissionWorld| {
            if w.shedding {
                Err("queue fully drained but the shed latch is still set".into())
            } else {
                Ok(())
            }
        })
        .final_check("probe-admitted-after-drain", |w: &AdmissionWorld| {
            if w.admitted + w.shed == ARRIVALS + 1 && w.admitted >= 1 {
                Ok(())
            } else {
                Err(format!(
                    "accounting off: admitted {} + shed {} != {}",
                    w.admitted,
                    w.shed,
                    ARRIVALS + 1
                ))
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore_exhaustive;

    #[test]
    fn correct_hysteresis_survives_exhaustive_exploration() {
        let report = explore_exhaustive(|| model(AdmissionMutation::Correct), 500_000)
            .expect("correct hysteresis must be schedule-clean");
        assert!(report.complete, "schedule space not exhausted: {report:?}");
    }

    #[test]
    fn clearing_below_high_flaps_and_is_caught() {
        let cex = explore_exhaustive(|| model(AdmissionMutation::ClearBelowHigh), 500_000)
            .expect_err("flapping must be caught");
        assert!(cex.failure.contains("clears-only-at-low"), "{cex}");
    }

    #[test]
    fn never_clearing_latches_up_and_is_caught() {
        let cex = explore_exhaustive(|| model(AdmissionMutation::NeverClear), 500_000)
            .expect_err("latch-up must be caught");
        assert!(cex.failure.contains("no-shed-latch-up"), "{cex}");
    }
}
