//! Model of the primary → warm-standby promotion handoff.
//!
//! Mirrors `ctup-core`'s `net::standby` + `net::server` replication
//! protocol: the primary journals a report, ships it to the standby as a
//! `WalAppend` at its epoch, and only then acks the client; the standby
//! applies appends in order, probes the primary, and — after a run of
//! dark probes — promotes itself at `epoch + 1` behind one final fencing
//! probe, draining the established replication connection first. Frames
//! stamped with an epoch below the standby's own are rejected as stale.
//!
//! The model runs the protocol against two chaos scripts:
//!
//! * [`FailoverScenario::Kill`] — the primary is killed outright
//!   (`kill -9`); frames already shipped still arrive (the kernel owns
//!   the socket buffer), frames never shipped are gone.
//! * [`FailoverScenario::Partition`] — the primary stays alive but goes
//!   unreachable for a while, then heals. This is the split-brain
//!   aperture: the standby may legitimately promote during the outage,
//!   and the healed primary becomes a zombie whose old-epoch frames must
//!   bounce off the fence.
//!
//! Checked properties:
//!
//! * `no-dual-primary` — promotion never happens while the primary is
//!   answering the fencing probe.
//! * `stale-frames-fenced` — a promoted standby never applies a frame
//!   stamped with a pre-promotion epoch.
//! * `no-acked-report-loss` — if the primary died and the standby took
//!   over, every report the primary acked is in the promoted state.
//! * `applied-exactly-once` — replication never duplicates a report.
//!
//! Seeded mutants ([`FailoverMutation`]) re-introduce one handoff bug
//! each; the unit tests prove the exhaustive explorer catches every one.

use crate::{explore_exhaustive, Model, Step};

/// Reports the primary acks during the run. One report is enough: every
/// seeded bug needs only a single in-flight report, and the schedule
/// space of the four threads must stay exhaustible.
const REPORTS: u64 = 1;
/// Dark probes required before the standby attempts promotion. One is
/// enough to split suspicion (observing silence) from the promotion
/// commit into separate steps — the gap the fencing probe exists for —
/// while keeping the schedule space exhaustible.
const PROBE_LIMIT: u32 = 1;
/// Epoch the primary serves at; a promoted standby serves at `+ 1`.
const PRIMARY_EPOCH: u64 = 1;

/// Which chaos script the model runs against the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverScenario {
    /// The primary dies permanently at a nondeterministic point.
    Kill,
    /// The primary goes unreachable, then heals — the zombie case.
    Partition,
}

/// One seeded handoff bug per variant; `Correct` is the shipped protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverMutation {
    /// The protocol as implemented.
    Correct,
    /// Ack the client before shipping the append to the standby. A kill
    /// between the ack and the ship loses an acked report.
    AckBeforeShip,
    /// Promote without draining the established replication connection
    /// first. In-flight acked appends get stale-fenced by the very node
    /// that should have applied them.
    PromoteBeforeDrain,
    /// Skip the final fencing probe and promote on stale darkness. A
    /// primary that healed in the meantime makes it a dual primary.
    PromoteWithoutFence,
    /// Apply replication frames without comparing epochs. A healed
    /// zombie primary writes into the promoted standby's state.
    IgnoreEpochFencing,
}

/// Shared state: the primary's ledger, the wire, and the standby.
#[derive(Debug)]
pub struct FailoverWorld {
    /// Primary process is running (false once killed).
    pub primary_alive: bool,
    /// Primary is unreachable (probes and the wire read side go dark).
    pub partitioned: bool,
    /// Primary thread finished its script (or died).
    pub primary_done: bool,
    /// Chaos thread finished its script.
    pub chaos_done: bool,
    /// Report seqs the primary acked to its client.
    pub acked: Vec<u64>,
    /// Shipped-but-not-yet-applied `(epoch, seq)` frames, in order.
    pub wire: Vec<(u64, u64)>,
    /// Report seqs in the standby's applied state.
    pub standby_applied: Vec<u64>,
    /// Frames the standby bounced off the epoch fence.
    pub stale_rejected: u64,
    /// Consecutive dark probes observed by the standby.
    pub dark: u32,
    /// Standby has taken over as primary.
    pub promoted: bool,
    /// Epoch the standby serves/fences at.
    pub standby_epoch: u64,
    /// Set when promotion happened while the primary answered the probe.
    pub promoted_while_primary_answering: bool,
    /// Set when a pre-promotion-epoch frame was applied after promotion.
    pub stale_applied: bool,
}

impl FailoverWorld {
    fn new() -> Self {
        Self {
            primary_alive: true,
            partitioned: false,
            primary_done: false,
            chaos_done: false,
            acked: Vec::new(),
            wire: Vec::new(),
            standby_applied: Vec::new(),
            stale_rejected: 0,
            dark: 0,
            promoted: false,
            standby_epoch: PRIMARY_EPOCH,
            promoted_while_primary_answering: false,
            stale_applied: false,
        }
    }

    fn primary_answering(&self) -> bool {
        self.primary_alive && !self.partitioned
    }
}

/// Builds the handoff model for one mutation under one chaos script.
///
/// Thread layout is scenario-specific to keep the space exhaustible:
/// a kill is a separate chaos thread (it must be able to strike *between*
/// a ship and its ack), while the partition/heal script is folded into
/// the primary's own step sequence — a partition never interrupts the
/// primary process, it only parks the wire, so the interesting frame is
/// the one already in flight when the link drops (exactly the TCP
/// kernel-buffer case).
pub fn model(mutation: FailoverMutation, scenario: FailoverScenario) -> Model<FailoverWorld> {
    // Primary: per report, ship the append then ack the client (the
    // AckBeforeShip mutant swaps the two). Under `Partition`, it then
    // goes dark and heals as a zombie; under `Kill`, the chaos thread
    // ends it wherever the scheduler likes.
    let mut phase: u32 = 0;
    let primary = move |w: &mut FailoverWorld| -> Step {
        if !w.primary_alive {
            w.primary_done = true;
            return Step::Done;
        }
        let ship_first = mutation != FailoverMutation::AckBeforeShip;
        let report_steps = u32::try_from(REPORTS * 2).unwrap_or(u32::MAX);
        if phase < report_steps {
            let seq = u64::from(phase / 2);
            let first_half = phase.is_multiple_of(2);
            if first_half == ship_first {
                w.wire.push((PRIMARY_EPOCH, seq));
            } else {
                w.acked.push(seq);
            }
            phase += 1;
            return Step::Ran;
        }
        if scenario == FailoverScenario::Partition {
            if phase == report_steps {
                w.partitioned = true;
                phase += 1;
                return Step::Ran;
            }
            if phase == report_steps + 1 {
                w.partitioned = false;
                w.chaos_done = true;
                phase += 1;
                return Step::Ran;
            }
        }
        w.primary_done = true;
        Step::Done
    };

    // Follower half of the standby: applies replication frames in order.
    // A partition parks the connection; frames shipped before a kill
    // still arrive (the kernel owns the socket buffer).
    let follower = move |w: &mut FailoverWorld| -> Step {
        if !w.partitioned {
            if let Some(&(epoch, frame_seq)) = w.wire.first() {
                w.wire.remove(0);
                if epoch < w.standby_epoch {
                    if mutation == FailoverMutation::IgnoreEpochFencing {
                        w.standby_applied.push(frame_seq);
                        w.stale_applied = true;
                    } else {
                        w.stale_rejected += 1;
                    }
                } else {
                    w.standby_applied.push(frame_seq);
                }
                return Step::Ran;
            }
        }
        if w.primary_done && w.chaos_done && w.wire.is_empty() {
            Step::Done
        } else {
            Step::Blocked
        }
    };

    // Prober half of the standby: counts dark probes and runs the
    // promotion protocol once the limit is reached.
    let prober = move |w: &mut FailoverWorld| -> Step {
        if w.promoted {
            return Step::Done;
        }
        let answering = w.primary_answering();
        if w.dark >= PROBE_LIMIT {
            // Final fencing probe: any answer aborts the promotion.
            if mutation != FailoverMutation::PromoteWithoutFence && answering {
                w.dark = 0;
                return Step::Ran;
            }
            // Drain the established connection before serving: frames
            // already on the wire predate the epoch bump and must land.
            // (A partitioned wire can't be drained — that is the
            // unavoidable split-brain window, and the fence covers it.)
            if mutation != FailoverMutation::PromoteBeforeDrain
                && !w.partitioned
                && !w.wire.is_empty()
            {
                return Step::Blocked;
            }
            if answering {
                w.promoted_while_primary_answering = true;
            }
            w.promoted = true;
            w.standby_epoch = PRIMARY_EPOCH + 1;
            return Step::Ran;
        }
        if answering {
            if w.dark > 0 {
                w.dark = 0;
                return Step::Ran;
            }
            if w.primary_done && w.chaos_done {
                return Step::Done;
            }
            return Step::Blocked;
        }
        w.dark += 1;
        Step::Ran
    };

    // Chaos: only the kill needs its own thread, so it can land between
    // any two primary steps (notably between a ship and its ack).
    let mut killed = false;
    let chaos = move |w: &mut FailoverWorld| -> Step {
        if killed {
            return Step::Done;
        }
        killed = true;
        w.primary_alive = false;
        w.chaos_done = true;
        Step::Ran
    };

    let mut m = Model::new(FailoverWorld::new())
        .thread("primary", primary)
        .thread("follower", follower)
        .thread("prober", prober);
    if scenario == FailoverScenario::Kill {
        m = m.thread("chaos", chaos);
    } else {
        // The partition script lives inside the primary thread; nothing
        // kills the process, so the chaos flag is set by its heal step.
        let _ = chaos;
    }
    m.invariant("no-dual-primary", |w| {
        if w.promoted_while_primary_answering {
            return Err("standby promoted while the primary was answering probes".into());
        }
        Ok(())
    })
    .invariant("stale-frames-fenced", |w| {
        if w.stale_applied {
            return Err("promoted standby applied a pre-promotion-epoch frame".into());
        }
        Ok(())
    })
    .final_check("no-acked-report-loss", |w| {
        if w.promoted && !w.primary_alive {
            for &acked_seq in &w.acked {
                if !w.standby_applied.contains(&acked_seq) {
                    return Err(format!(
                        "acked report {acked_seq} missing from the promoted state \
                             (applied: {:?}, fenced: {})",
                        w.standby_applied, w.stale_rejected
                    ));
                }
            }
        }
        Ok(())
    })
    .final_check("applied-exactly-once", |w| {
        let mut seen = w.standby_applied.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != w.standby_applied.len() {
            return Err(format!("duplicate apply: {:?}", w.standby_applied));
        }
        Ok(())
    })
}

/// Convenience: the exhaustive budget every schedule space here fits in
/// (the kill matrix is the largest at ~260k complete schedules).
pub const EXPLORE_BUDGET: usize = 400_000;

/// Runs one `(mutation, scenario)` cell exhaustively.
pub fn explore(
    mutation: FailoverMutation,
    scenario: FailoverScenario,
) -> Result<crate::ExplorationReport, crate::Counterexample> {
    explore_exhaustive(|| model(mutation, scenario), EXPLORE_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_survives_kill_exhaustively() {
        let report = explore(FailoverMutation::Correct, FailoverScenario::Kill)
            .expect("correct handoff under kill");
        assert!(report.complete, "kill schedule space not exhausted");
        assert!(report.schedules > 1, "kill model is not concurrent");
    }

    #[test]
    fn correct_protocol_survives_partition_exhaustively() {
        let report = explore(FailoverMutation::Correct, FailoverScenario::Partition)
            .expect("correct handoff under partition");
        assert!(report.complete, "partition schedule space not exhausted");
        assert!(report.schedules > 1, "partition model is not concurrent");
    }

    #[test]
    fn ack_before_ship_loses_an_acked_report() {
        let cex = explore(FailoverMutation::AckBeforeShip, FailoverScenario::Kill)
            .expect_err("acking before shipping must lose a report to a kill");
        assert!(
            cex.failure.contains("no-acked-report-loss"),
            "wrong failure: {cex}"
        );
    }

    #[test]
    fn promote_before_drain_fences_out_acked_reports() {
        let cex = explore(FailoverMutation::PromoteBeforeDrain, FailoverScenario::Kill)
            .expect_err("promoting over an undrained wire must lose a report");
        assert!(
            cex.failure.contains("no-acked-report-loss"),
            "wrong failure: {cex}"
        );
    }

    #[test]
    fn promote_without_fence_creates_a_dual_primary() {
        let cex = explore(
            FailoverMutation::PromoteWithoutFence,
            FailoverScenario::Partition,
        )
        .expect_err("skipping the fencing probe must create a dual primary");
        assert!(
            cex.failure.contains("no-dual-primary"),
            "wrong failure: {cex}"
        );
    }

    #[test]
    fn ignoring_the_epoch_fence_applies_zombie_frames() {
        let cex = explore(
            FailoverMutation::IgnoreEpochFencing,
            FailoverScenario::Partition,
        )
        .expect_err("a zombie primary's old-epoch frames must be rejected");
        assert!(
            cex.failure.contains("stale-frames-fenced"),
            "wrong failure: {cex}"
        );
    }
}
