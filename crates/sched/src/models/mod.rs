//! Executable models of the workspace's real concurrency protocols.
//!
//! Each module models one protocol at the granularity of its real atomic
//! sections (one lock-held region = one [`Step`](crate::Step)), states
//! its safety properties as invariants/final checks, and exposes a
//! `Mutation` enum whose non-`Correct` variants re-introduce a specific
//! bug — including the historical ones these protocols were hardened
//! against. The mutation-validation suite (`tests/sched_models.rs` at
//! the workspace root, mirrored by unit tests here) proves every checker
//! catches its seeded mutant, so a green exhaustive run is evidence, not
//! vacuity.
//!
//! | Model | Real code | Property |
//! |-------|-----------|----------|
//! | [`session`] | `core::net::session` pending/ack | ack never precedes apply; no ghost pending; exactly-once |
//! | [`admission`] | `core::net::admission` hysteresis | bounded depth; clears only at low; no shed latch-up |
//! | [`cache`] | `storage::cache` miss vs. invalidate | no stale entry after write-invalidation |
//! | [`barrier`] | `core::parallel` batch barrier | merge only after every shard; merged == sequential |
//! | [`failover`] | `core::net::standby` promotion handoff | no dual primary; no acked-report loss; stale frames fenced |

pub mod admission;
pub mod barrier;
pub mod cache;
pub mod failover;
pub mod session;
