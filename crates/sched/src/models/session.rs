//! Model of the session pending/ack protocol (`core::net::session`).
//!
//! The real protocol: a connection handler *registers* each report's
//! sequence number as pending, then *admits* it to the bounded queue; if
//! admission sheds, `retract_pending` rolls the registration back. The
//! engine pump drains the queue, applies the report to the engine, and
//! only then marks it drained — which is what advances the cumulative
//! ack line (`min(pending) - 1`, or everything issued when no report is
//! pending). PR 6's fast-pump ghost-pending race lived exactly in the
//! register/admit/drain interleavings this model explores.

use crate::{Model, Step};

/// Shared state: the session registry, the admission queue, and the
/// engine, reduced to the fields the safety properties speak about.
#[derive(Debug, Default)]
pub struct SessionWorld {
    /// Registered-but-unresolved sequence numbers.
    pub pending: Vec<u64>,
    /// The bounded admission queue.
    pub queue: Vec<u64>,
    /// Sequence numbers applied to the engine, in apply order.
    pub applied: Vec<u64>,
    /// Sequence numbers shed at the admission door.
    pub shed: Vec<u64>,
    /// Cumulative ack line: every seq `<= ack_line` is claimed resolved.
    pub ack_line: i64,
    /// Highest seq the handler has offered to admission.
    pub issued_max: i64,
    /// Set if the ack line ever moved backwards.
    pub ack_regressed: bool,
    /// Handler finished all reports.
    pub handler_done: bool,
}

impl SessionWorld {
    fn recompute_ack(&mut self) {
        let new = match self.pending.iter().min() {
            Some(&s) => s as i64 - 1,
            None => self.issued_max,
        };
        if new < self.ack_line {
            self.ack_regressed = true;
        }
        self.ack_line = new;
    }
}

/// Seeded bugs. `Correct` is the shipped protocol; each other variant is
/// one specific regression the invariants must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMutation {
    /// The protocol as implemented.
    Correct,
    /// Shed path forgets `retract_pending` — the pre-PR-6 ghost-pending bug.
    ForgetRetract,
    /// Pump advances the ack line before the engine apply.
    AckBeforeApply,
    /// Handler admits to the queue before registering pending.
    EnqueueBeforeRegister,
}

const REPORTS: u64 = 3;
const QUEUE_CAP: usize = 1;

fn register(w: &mut SessionWorld, seq: u64) {
    w.pending.push(seq);
    w.recompute_ack();
}

fn admit(w: &mut SessionWorld, seq: u64, m: SessionMutation) {
    w.issued_max = w.issued_max.max(seq as i64);
    if w.queue.len() < QUEUE_CAP {
        w.queue.push(seq);
    } else {
        w.shed.push(seq);
        if m != SessionMutation::ForgetRetract {
            w.pending.retain(|&p| p != seq);
        }
        w.recompute_ack();
    }
}

/// Builds the session model under `m`. Explore with
/// [`crate::explore_exhaustive`]; the schedule space is small (one
/// handler, one pump, three reports).
pub fn model(m: SessionMutation) -> Model<SessionWorld> {
    // Handler: for each report, one step to register, one to admit
    // (swapped under `EnqueueBeforeRegister`) — two atomic sections, as
    // in the real code where the session lock and the queue lock are
    // taken separately.
    let mut seq = 0u64;
    let mut second_half = false;
    let handler = move |w: &mut SessionWorld| -> Step {
        if seq >= REPORTS {
            return Step::Done;
        }
        let register_first = m != SessionMutation::EnqueueBeforeRegister;
        if !second_half {
            if register_first {
                register(w, seq);
            } else {
                admit(w, seq, m);
            }
            second_half = true;
        } else {
            if register_first {
                admit(w, seq, m);
            } else {
                register(w, seq);
            }
            second_half = false;
            seq += 1;
            if seq >= REPORTS {
                w.handler_done = true;
                return Step::Done;
            }
        }
        Step::Ran
    };

    // Pump: pop, apply, drained — three atomic sections. Under
    // `AckBeforeApply` the drained (ack-advancing) section runs first.
    let mut in_flight: Option<u64> = None;
    let mut phase = 0u8;
    let pump = move |w: &mut SessionWorld| -> Step {
        match (phase, in_flight) {
            (0, _) => {
                if w.queue.is_empty() {
                    if w.handler_done {
                        Step::Done
                    } else {
                        Step::Blocked
                    }
                } else {
                    in_flight = Some(w.queue.remove(0));
                    phase = 1;
                    Step::Ran
                }
            }
            (1, Some(s)) => {
                if m == SessionMutation::AckBeforeApply {
                    w.pending.retain(|&p| p != s);
                    w.recompute_ack();
                } else {
                    w.applied.push(s);
                }
                phase = 2;
                Step::Ran
            }
            (_, Some(s)) => {
                if m == SessionMutation::AckBeforeApply {
                    w.applied.push(s);
                } else {
                    w.pending.retain(|&p| p != s);
                    w.recompute_ack();
                }
                in_flight = None;
                phase = 0;
                Step::Ran
            }
            // Unreachable by construction (phase > 0 implies in-flight),
            // but the model must not panic: treat it as completion.
            (_, None) => Step::Done,
        }
    };

    Model::new(SessionWorld {
        ack_line: -1,
        issued_max: -1,
        ..SessionWorld::default()
    })
    .thread("handler", handler)
    .thread("pump", pump)
    .invariant("ack-never-precedes-apply", |w: &SessionWorld| {
        for s in 0..=w.ack_line.max(-1) {
            let s_u = s as u64;
            if s >= 0 && !w.applied.contains(&s_u) && !w.shed.contains(&s_u) {
                return Err(format!(
                    "ack line {} covers seq {s} which is neither applied nor shed",
                    w.ack_line
                ));
            }
        }
        Ok(())
    })
    .invariant("ack-line-monotone", |w: &SessionWorld| {
        if w.ack_regressed {
            Err("cumulative ack line moved backwards".into())
        } else {
            Ok(())
        }
    })
    .final_check("no-ghost-pending", |w: &SessionWorld| {
        if w.pending.is_empty() {
            Ok(())
        } else {
            Err(format!("pending entries left behind: {:?}", w.pending))
        }
    })
    .final_check("every-report-resolved-exactly-once", |w: &SessionWorld| {
        let mut resolved: Vec<u64> = w.applied.iter().chain(w.shed.iter()).copied().collect();
        resolved.sort_unstable();
        let expect: Vec<u64> = (0..REPORTS).collect();
        if resolved == expect {
            Ok(())
        } else {
            Err(format!(
                "applied {:?} + shed {:?} != 0..{REPORTS}",
                w.applied, w.shed
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore_exhaustive;

    #[test]
    fn correct_protocol_survives_exhaustive_exploration() {
        let report = explore_exhaustive(|| model(SessionMutation::Correct), 200_000)
            .expect("correct session protocol must be schedule-clean");
        assert!(report.complete, "schedule space not exhausted: {report:?}");
        assert!(report.schedules > 10, "suspiciously few schedules explored");
    }

    #[test]
    fn forget_retract_leaves_a_ghost() {
        let cex = explore_exhaustive(|| model(SessionMutation::ForgetRetract), 200_000)
            .expect_err("ghost pending must be caught");
        assert!(cex.failure.contains("no-ghost-pending"), "{cex}");
    }

    #[test]
    fn ack_before_apply_is_caught() {
        let cex = explore_exhaustive(|| model(SessionMutation::AckBeforeApply), 200_000)
            .expect_err("premature ack must be caught");
        assert!(cex.failure.contains("ack-never-precedes-apply"), "{cex}");
    }

    #[test]
    fn enqueue_before_register_is_caught_by_interleaving() {
        let cex = explore_exhaustive(|| model(SessionMutation::EnqueueBeforeRegister), 200_000)
            .expect_err("admit-before-register race must be caught");
        // The failure needs the pump to sneak between the handler's two
        // steps, so the counterexample schedule must interleave them.
        assert!(
            cex.failure.contains("no-ghost-pending") || cex.failure.contains("monotone"),
            "{cex}"
        );
    }
}
