//! Model of the shard batch barrier (`core::parallel::ShardedCtup`).
//!
//! The real engine broadcasts a batch to every shard worker, then the
//! coordinator blocks on one reply per shard before merging the
//! per-shard top-k candidates — the barrier is what makes the sharded
//! result equal the sequential one. The `MergeEarly` mutant merges as
//! soon as the *first* shard replies, which is only wrong in schedules
//! where the other shard is still mid-batch — exactly the kind of bug
//! one lucky real-thread run never sees.

use crate::{Model, Step};

/// A batch being processed by two shards plus the merge slot.
#[derive(Debug, Default)]
pub struct BarrierWorld {
    /// Per-shard accumulated result (sum stands in for the top-k fold).
    pub shard_sum: [u64; 2],
    pub shard_done: [bool; 2],
    /// The coordinator's merged result, once merged.
    pub merged: Option<u64>,
}

/// Seeded bugs in the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMutation {
    /// The shipped barrier: merge only after every shard replied.
    Correct,
    /// Merge as soon as any one shard has replied.
    MergeEarly,
}

/// The batch: items pre-partitioned to the two shards (index % 2, as in
/// the real cell partitioning).
const SHARD_ITEMS: [[u64; 2]; 2] = [[1, 3], [5, 7]];

fn sequential_expected() -> u64 {
    SHARD_ITEMS.iter().flatten().sum()
}

/// Builds the barrier model under `m`.
pub fn model(m: BarrierMutation) -> Model<BarrierWorld> {
    let shard = |idx: usize| {
        let mut next = 0usize;
        move |w: &mut BarrierWorld| -> Step {
            if next < SHARD_ITEMS[idx].len() {
                w.shard_sum[idx] += SHARD_ITEMS[idx][next];
                next += 1;
                Step::Ran
            } else {
                w.shard_done[idx] = true;
                Step::Done
            }
        }
    };

    let coordinator = move |w: &mut BarrierWorld| -> Step {
        let ready = match m {
            BarrierMutation::Correct => w.shard_done.iter().all(|&d| d),
            BarrierMutation::MergeEarly => w.shard_done.iter().any(|&d| d),
        };
        if !ready {
            return Step::Blocked;
        }
        w.merged = Some(w.shard_sum.iter().sum());
        Step::Done
    };

    Model::new(BarrierWorld::default())
        .thread("shard-0", shard(0))
        .thread("shard-1", shard(1))
        .thread("coordinator", coordinator)
        .invariant("merge-only-after-barrier", |w: &BarrierWorld| {
            if w.merged.is_some() && !w.shard_done.iter().all(|&d| d) {
                Err("merged while a shard was still processing its batch".into())
            } else {
                Ok(())
            }
        })
        .final_check("merged-equals-sequential", |w: &BarrierWorld| {
            let expect = sequential_expected();
            match w.merged {
                Some(got) if got == expect => Ok(()),
                Some(got) => Err(format!("merged {got} != sequential {expect}")),
                None => Err("batch never merged".into()),
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore_exhaustive;

    #[test]
    fn barrier_survives_exhaustive_exploration() {
        let report = explore_exhaustive(|| model(BarrierMutation::Correct), 500_000)
            .expect("the barrier must be schedule-clean");
        assert!(report.complete, "schedule space not exhausted: {report:?}");
    }

    #[test]
    fn merging_early_diverges_from_sequential_in_some_schedule() {
        let cex = explore_exhaustive(|| model(BarrierMutation::MergeEarly), 500_000)
            .expect_err("early merge must be caught");
        assert!(
            cex.failure.contains("merge-only-after-barrier")
                || cex.failure.contains("merged-equals-sequential"),
            "{cex}"
        );
    }
}
