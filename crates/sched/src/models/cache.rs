//! Model of the cell-cache miss path racing write-invalidation
//! (`storage::cache::CachedStore`).
//!
//! The real miss path deliberately reads the lower level *outside* the
//! cache lock (so concurrent misses are not serialized behind the
//! simulated disk), which opens a window: a write plus
//! `invalidate_cell` can land between the unlocked read and the insert,
//! and inserting the pre-write records would serve stale data forever
//! after. The shipped fix captures an invalidation generation at the
//! miss and refuses the insert if it changed. This model is that
//! protocol with the lock sections as atomic steps; the
//! `SkipGenCheck` mutant is the pre-fix code.

use crate::{Model, Step};

/// One cell's truth and its cached copy.
#[derive(Debug, Default)]
pub struct CacheWorld {
    /// Version of the cell in the lower-level store.
    pub inner_version: u64,
    /// Cached copy, if resident: the version that was read.
    pub cached: Option<u64>,
    /// Invalidation generation (bumped by every invalidation).
    pub generation: u64,
    /// Reads served (hit or miss), for liveness accounting.
    pub reads: usize,
}

/// Seeded bugs in the miss path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMutation {
    /// The shipped protocol: insert only if the generation is unchanged.
    Correct,
    /// Insert unconditionally — the pre-fix stale-insert race.
    SkipGenCheck,
}

const READS: usize = 2;
const WRITES: u64 = 2;

/// Builds the cache model under `m`.
pub fn model(m: CacheMutation) -> Model<CacheWorld> {
    // Reader: performs READS lookups. Each miss is three atomic
    // sections, exactly as in `CachedStore::read_cell`:
    //   1. locked: check residency, capture the generation;
    //   2. unlocked: read the lower level (the disk window);
    //   3. locked: insert — guarded by the generation check.
    let mut reads_left = READS;
    let mut phase = 0u8;
    let mut gen_at_miss = 0u64;
    let mut read_version = 0u64;
    let reader = move |w: &mut CacheWorld| -> Step {
        if reads_left == 0 {
            return Step::Done;
        }
        match phase {
            0 => {
                if w.cached.is_some() {
                    // Hit: served from cache, lookup complete.
                    w.reads += 1;
                    reads_left -= 1;
                    if reads_left == 0 {
                        return Step::Done;
                    }
                } else {
                    gen_at_miss = w.generation;
                    phase = 1;
                }
                Step::Ran
            }
            1 => {
                read_version = w.inner_version;
                phase = 2;
                Step::Ran
            }
            _ => {
                if m == CacheMutation::SkipGenCheck || w.generation == gen_at_miss {
                    w.cached = Some(read_version);
                }
                w.reads += 1;
                reads_left -= 1;
                phase = 0;
                if reads_left == 0 {
                    Step::Done
                } else {
                    Step::Ran
                }
            }
        }
    };

    // Writer: each write updates the lower level and runs the
    // write-invalidation hook (one atomic section per write — the real
    // invalidate_cell holds the cache lock throughout).
    let mut writes_left = WRITES;
    let writer = move |w: &mut CacheWorld| -> Step {
        if writes_left == 0 {
            return Step::Done;
        }
        w.inner_version += 1;
        w.cached = None;
        w.generation += 1;
        writes_left -= 1;
        if writes_left == 0 {
            Step::Done
        } else {
            Step::Ran
        }
    };

    Model::new(CacheWorld::default())
        .thread("reader", reader)
        .thread("writer", writer)
        .invariant("no-stale-cache-after-write", |w: &CacheWorld| {
            match w.cached {
                Some(v) if v != w.inner_version => Err(format!(
                    "cache holds version {v} but the store is at {}: a read after \
                     the write would return stale records",
                    w.inner_version
                )),
                _ => Ok(()),
            }
        })
        .final_check("all-reads-served", |w: &CacheWorld| {
            if w.reads == READS {
                Ok(())
            } else {
                Err(format!("{} of {READS} reads served", w.reads))
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore_exhaustive;

    #[test]
    fn generation_checked_miss_path_survives_exhaustive_exploration() {
        let report = explore_exhaustive(|| model(CacheMutation::Correct), 200_000)
            .expect("generation-checked miss path must be schedule-clean");
        assert!(report.complete, "schedule space not exhausted: {report:?}");
    }

    #[test]
    fn unconditional_insert_caches_stale_data_in_some_schedule() {
        let cex = explore_exhaustive(|| model(CacheMutation::SkipGenCheck), 200_000)
            .expect_err("the stale-insert race must be caught");
        assert!(cex.failure.contains("no-stale-cache-after-write"), "{cex}");
        // The race needs the writer inside the reader's disk window.
        let w_pos = cex.schedule.iter().position(|n| n == "writer");
        assert!(w_pos.is_some(), "writer never ran in {cex}");
    }
}
