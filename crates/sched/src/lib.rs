//! `ctup-sched` — a deterministic-schedule model checker ("loom-lite").
//!
//! The real concurrency in this workspace — the net front door's
//! session/ack protocol, the admission hysteresis, the shard barrier, the
//! cell-cache invalidation — is tested end to end with real threads, but
//! real threads explore one arbitrary interleaving per run. This crate
//! runs *models* of those protocols on cooperative virtual threads under
//! a scheduler the test controls, so a property can be checked against
//! **every** interleaving (bounded-exhaustive DFS over scheduling
//! choices) or against a reproducible random sample (seeded).
//!
//! # The model contract
//!
//! A model is a `World` (plain data, the shared state) plus named virtual
//! threads, each a closure `FnMut(&mut W) -> Step` that performs **one
//! atomic step** per call and reports:
//!
//! * [`Step::Ran`] — it made progress (mutating the world is allowed);
//! * [`Step::Blocked`] — it cannot proceed until another thread makes
//!   progress. A blocked step MUST NOT mutate the world: the scheduler
//!   treats it as a pure poll, and re-enables the thread as soon as any
//!   other thread runs (condvar-with-spurious-wakeup semantics);
//! * [`Step::Done`] — the thread finished; it is never called again.
//!
//! Granularity is the whole point: everything inside one step is atomic
//! (as if done under one lock), and the scheduler may interleave other
//! threads *between* steps. To model "read outside the lock", split the
//! read and the use into two steps with thread-local state in between.
//!
//! [`Model::invariant`] predicates are checked after **every** step;
//! [`Model::final_check`] predicates run once after all threads are done.
//! Any failure — invariant, final check, deadlock (all live threads
//! blocked), or livelock (step budget exhausted) — aborts exploration
//! with a [`Counterexample`] carrying the exact schedule that produced
//! it, as a list of thread names in execution order. Replaying that
//! schedule through a fresh model reproduces the failure exactly —
//! nothing here reads clocks or ambient randomness.
//!
//! # Exploration
//!
//! * [`explore_exhaustive`] — depth-first over every scheduling decision,
//!   bounded by a schedule budget. With the budget large enough for the
//!   model it IS a proof over the model (the report says whether the
//!   space was exhausted).
//! * [`explore_random`] — seeded xorshift choices; cheap smoke coverage
//!   for spaces too big to exhaust.
//!
//! Executable models of the real protocols live in [`models`], each with
//! a seeded-mutant variant proving its checker is not vacuous.

pub mod models;

/// What one virtual-thread step did. See the crate docs for the contract
/// (notably: a [`Step::Blocked`] step must not mutate the world).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Made progress; other threads' blocked polls are re-enabled.
    Ran,
    /// Cannot proceed until another thread makes progress.
    Blocked,
    /// Finished; the thread will not be scheduled again.
    Done,
}

type ThreadFn<W> = Box<dyn FnMut(&mut W) -> Step>;
type CheckFn<W> = Box<dyn Fn(&W) -> Result<(), String>>;

/// A world plus its virtual threads and checks. Build with
/// [`Model::new`] and the chained registration methods, then hand a
/// *factory* of models to an explorer (each schedule needs a fresh one).
pub struct Model<W> {
    world: W,
    names: Vec<String>,
    threads: Vec<ThreadFn<W>>,
    invariants: Vec<(String, CheckFn<W>)>,
    final_checks: Vec<(String, CheckFn<W>)>,
    max_steps: usize,
}

impl<W> std::fmt::Debug for Model<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("threads", &self.names)
            .field("max_steps", &self.max_steps)
            .finish_non_exhaustive()
    }
}

/// A failing schedule: the thread names in the order they were stepped,
/// and what went wrong at the end of that prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Thread names in execution order up to and including the failing step.
    pub schedule: Vec<String>,
    /// Which invariant/final check failed, or deadlock/livelock.
    pub failure: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after schedule [{}]",
            self.failure,
            self.schedule.join(", ")
        )
    }
}

/// Outcome of an exploration that found no counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationReport {
    /// Schedules actually run.
    pub schedules: usize,
    /// Total steps across all schedules.
    pub steps: usize,
    /// True when the whole schedule space was covered (exhaustive mode
    /// within budget); random sampling always reports `false`.
    pub complete: bool,
}

impl<W> Model<W> {
    /// A model over `world` with no threads yet and a step budget of
    /// 10 000 (a livelock backstop; raise it for genuinely long models).
    pub fn new(world: W) -> Self {
        Model {
            world,
            names: Vec::new(),
            threads: Vec::new(),
            invariants: Vec::new(),
            final_checks: Vec::new(),
            max_steps: 10_000,
        }
    }

    /// Overrides the per-schedule step budget (livelock bound).
    #[must_use]
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Registers a virtual thread. `step` is called with the world each
    /// time the scheduler picks this thread; see the crate docs for the
    /// one-atomic-step contract.
    #[must_use]
    pub fn thread(mut self, name: &str, step: impl FnMut(&mut W) -> Step + 'static) -> Self {
        self.names.push(name.to_string());
        self.threads.push(Box::new(step));
        self
    }

    /// Registers an invariant checked after every step.
    #[must_use]
    pub fn invariant(
        mut self,
        name: &str,
        check: impl Fn(&W) -> Result<(), String> + 'static,
    ) -> Self {
        self.invariants.push((name.to_string(), Box::new(check)));
        self
    }

    /// Registers a check that runs once, after every thread is done.
    #[must_use]
    pub fn final_check(
        mut self,
        name: &str,
        check: impl Fn(&W) -> Result<(), String> + 'static,
    ) -> Self {
        self.final_checks.push((name.to_string(), Box::new(check)));
        self
    }

    /// Runs one schedule to completion under `choose`, which picks among
    /// the currently enabled threads: `choose(n)` returns an index
    /// `< n`. Returns the steps taken, or the failing schedule.
    ///
    /// Public so a CI counterexample can be replayed against a fresh
    /// model with a hand-written chooser; the explorers drive it for
    /// everything else. Out-of-range picks are clamped.
    pub fn run(mut self, mut choose: impl FnMut(usize) -> usize) -> Result<usize, Counterexample> {
        let n = self.threads.len();
        let mut done = vec![false; n];
        let mut blocked = vec![false; n];
        let mut schedule: Vec<String> = Vec::new();
        let mut steps = 0usize;
        loop {
            let enabled: Vec<usize> = (0..n).filter(|&t| !done[t] && !blocked[t]).collect();
            if enabled.is_empty() {
                if done.iter().all(|&d| d) {
                    break;
                }
                let stuck: Vec<&str> = (0..n)
                    .filter(|&t| !done[t])
                    .map(|t| self.names[t].as_str())
                    .collect();
                return Err(Counterexample {
                    schedule,
                    failure: format!("deadlock: threads [{}] all blocked", stuck.join(", ")),
                });
            }
            let pick = choose(enabled.len());
            debug_assert!(pick < enabled.len(), "chooser returned out-of-range pick");
            let t = enabled[pick.min(enabled.len() - 1)];
            schedule.push(self.names[t].clone());
            match (self.threads[t])(&mut self.world) {
                Step::Ran => {
                    // Progress: blocked polls get another look.
                    blocked.iter_mut().for_each(|b| *b = false);
                }
                Step::Blocked => blocked[t] = true,
                Step::Done => {
                    done[t] = true;
                    blocked.iter_mut().for_each(|b| *b = false);
                }
            }
            for (name, check) in &self.invariants {
                if let Err(why) = check(&self.world) {
                    return Err(Counterexample {
                        schedule,
                        failure: format!("invariant `{name}` violated: {why}"),
                    });
                }
            }
            steps += 1;
            if steps > self.max_steps {
                return Err(Counterexample {
                    schedule,
                    failure: format!("livelock: no completion within {} steps", self.max_steps),
                });
            }
        }
        for (name, check) in &self.final_checks {
            if let Err(why) = check(&self.world) {
                return Err(Counterexample {
                    schedule,
                    failure: format!("final check `{name}` failed: {why}"),
                });
            }
        }
        Ok(steps)
    }
}

/// Explores every interleaving of the model produced by `factory`,
/// depth-first over scheduling decisions, up to `max_schedules` complete
/// schedules. Returns the first counterexample found, or a report whose
/// `complete` flag says whether the space was exhausted within budget.
pub fn explore_exhaustive<W>(
    mut factory: impl FnMut() -> Model<W>,
    max_schedules: usize,
) -> Result<ExplorationReport, Counterexample> {
    // The DFS odometer: for each decision point of the last run, the
    // branch taken and how many branches were available. To advance, bump
    // the deepest decision that still has an untried branch and replay
    // the prefix through a fresh model.
    let mut prefix: Vec<(usize, usize)> = Vec::new();
    let mut schedules = 0usize;
    let mut steps_total = 0usize;
    loop {
        if schedules >= max_schedules {
            return Ok(ExplorationReport {
                schedules,
                steps: steps_total,
                complete: false,
            });
        }
        let mut decisions: Vec<(usize, usize)> = Vec::new();
        let replay = std::mem::take(&mut prefix);
        let choose = |n: usize| -> usize {
            let i = decisions.len();
            let pick = if i < replay.len() { replay[i].0 } else { 0 };
            decisions.push((pick, n));
            pick
        };
        steps_total += factory().run(choose)?;
        schedules += 1;
        // Backtrack: drop exhausted tail decisions, bump the deepest
        // decision with an untried branch.
        while let Some(&(pick, n)) = decisions.last() {
            if pick + 1 < n {
                break;
            }
            decisions.pop();
        }
        match decisions.last_mut() {
            None => {
                return Ok(ExplorationReport {
                    schedules,
                    steps: steps_total,
                    complete: true,
                });
            }
            Some(last) => last.0 += 1,
        }
        prefix = decisions;
    }
}

/// Runs `iterations` schedules of the model produced by `factory` with
/// seeded-random scheduling choices. Reproducible: the same seed explores
/// the same schedules.
pub fn explore_random<W>(
    mut factory: impl FnMut() -> Model<W>,
    seed: u64,
    iterations: usize,
) -> Result<ExplorationReport, Counterexample> {
    let mut rng = XorShift64::new(seed);
    let mut steps_total = 0usize;
    for _ in 0..iterations {
        steps_total += factory().run(|n| rng.below(n))?;
    }
    Ok(ExplorationReport {
        schedules: iterations,
        steps: steps_total,
        complete: false,
    })
}

/// The crate's only randomness: a tiny deterministic xorshift64, so
/// random exploration is reproducible from its seed alone.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped (xorshift's fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-enough pick in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter twice each; exhaustive
    /// exploration must cover all interleavings of 4 steps (C(4,2) = 6)
    /// and agree on the final count.
    #[test]
    fn exhaustive_covers_all_interleavings() {
        let factory = || {
            let mk = |_name: &'static str| {
                let mut left = 2u32;
                move |w: &mut u32| {
                    *w += 1;
                    left -= 1;
                    if left == 0 {
                        Step::Done
                    } else {
                        Step::Ran
                    }
                }
            };
            Model::new(0u32)
                .thread("a", mk("a"))
                .thread("b", mk("b"))
                .final_check("sum", |w| {
                    if *w == 4 {
                        Ok(())
                    } else {
                        Err(format!("expected 4, got {w}"))
                    }
                })
        };
        let report = explore_exhaustive(factory, 1_000).expect("no counterexample");
        assert!(report.complete);
        assert_eq!(report.schedules, 6);
    }

    /// An invariant that only breaks under one specific interleaving is
    /// found, with the failing schedule reported.
    #[test]
    fn exhaustive_finds_the_single_bad_interleaving() {
        // "writer" sets a flag; "reader" trips iff it runs after the
        // writer's first step but the invariant only fails when both of
        // reader's steps straddle it. Simplest encoding: reader reads in
        // step 1, asserts in step 2 that the value did not change.
        #[derive(Default)]
        struct W {
            value: u32,
            seen: Option<u32>,
            torn: bool,
        }
        let factory = || {
            let mut reader_pc = 0u32;
            let mut writer_done = false;
            Model::new(W::default())
                .thread("writer", move |w: &mut W| {
                    if writer_done {
                        return Step::Done;
                    }
                    w.value += 1;
                    writer_done = true;
                    Step::Done
                })
                .thread("reader", move |w: &mut W| match reader_pc {
                    0 => {
                        w.seen = Some(w.value);
                        reader_pc = 1;
                        Step::Ran
                    }
                    _ => {
                        if w.seen != Some(w.value) {
                            w.torn = true;
                        }
                        Step::Done
                    }
                })
                .invariant("no-torn-read", |w: &W| {
                    if w.torn {
                        Err("value changed between reader steps".into())
                    } else {
                        Ok(())
                    }
                })
        };
        let cex = explore_exhaustive(factory, 1_000).expect_err("must find the race");
        assert!(cex.failure.contains("no-torn-read"), "{cex}");
        // The bad schedule is exactly reader, writer, reader.
        assert_eq!(cex.schedule, vec!["reader", "writer", "reader"]);
    }

    /// Mutual blocking with no progress is reported as deadlock.
    #[test]
    fn deadlock_is_detected() {
        let factory = || {
            Model::new(())
                .thread("p", |_: &mut ()| Step::Blocked)
                .thread("q", |_: &mut ()| Step::Blocked)
        };
        let cex = explore_exhaustive(factory, 100).expect_err("deadlock");
        assert!(cex.failure.contains("deadlock"), "{cex}");
    }

    /// A blocked thread is re-enabled when another thread progresses.
    #[test]
    fn blocked_threads_wake_on_progress() {
        let factory = || {
            let mut produced = false;
            Model::new(0u32)
                .thread("consumer", |w: &mut u32| {
                    if *w == 0 {
                        Step::Blocked
                    } else {
                        *w -= 1;
                        Step::Done
                    }
                })
                .thread("producer", move |w: &mut u32| {
                    if produced {
                        return Step::Done;
                    }
                    *w += 1;
                    produced = true;
                    Step::Done
                })
        };
        let report = explore_exhaustive(factory, 100).expect("no counterexample");
        assert!(report.complete);
    }

    /// A spinner that never completes trips the step budget.
    #[test]
    fn livelock_trips_the_step_budget() {
        let factory = || {
            Model::new(())
                .thread("spinner", |_: &mut ()| Step::Ran)
                .max_steps(50)
        };
        let cex = explore_exhaustive(factory, 10).expect_err("livelock");
        assert!(cex.failure.contains("livelock"), "{cex}");
    }

    /// Random exploration is reproducible: same seed, same outcome and
    /// step trace length.
    #[test]
    fn random_exploration_is_seeded_and_reproducible() {
        let factory = || {
            let mk = || {
                let mut left = 3u32;
                move |w: &mut u32| {
                    *w += 1;
                    left -= 1;
                    if left == 0 {
                        Step::Done
                    } else {
                        Step::Ran
                    }
                }
            };
            Model::new(0u32).thread("a", mk()).thread("b", mk())
        };
        let a = explore_random(factory, 42, 20).expect("clean");
        let b = explore_random(factory, 42, 20).expect("clean");
        assert_eq!(a, b);
        assert_eq!(a.schedules, 20);
    }

    #[test]
    fn counterexample_schedule_replays_to_the_same_failure() {
        // Take the torn-read counterexample and replay its schedule by
        // name through a fresh model: the same failure must reproduce.
        let factory = || {
            let mut reader_pc = 0u32;
            Model::new((0u32, None::<u32>))
                .thread("writer", |w: &mut (u32, Option<u32>)| {
                    w.0 += 1;
                    Step::Done
                })
                .thread(
                    "reader",
                    move |w: &mut (u32, Option<u32>)| match reader_pc {
                        0 => {
                            w.1 = Some(w.0);
                            reader_pc = 1;
                            Step::Ran
                        }
                        _ => Step::Done,
                    },
                )
                .invariant("stable", |w| {
                    if let Some(seen) = w.1 {
                        if seen != w.0 {
                            return Err("changed underfoot".into());
                        }
                    }
                    Ok(())
                })
        };
        let cex = explore_exhaustive(factory, 100).expect_err("race");
        // Replay: drive a fresh model picking threads by recorded name.
        let mut names = cex.schedule.clone().into_iter();
        let replayed = factory()
            .run(move |n| {
                // Map the recorded name back to an enabled index. The test
                // model has deterministic enabled sets, so position works.
                let name = names.next().expect("schedule long enough");
                // Single enabled thread → index 0; otherwise the test
                // model's enabled order is [writer, reader].
                if n > 1 && name == "reader" {
                    1
                } else {
                    0
                }
            })
            .expect_err("replay reproduces");
        assert_eq!(replayed.failure, cex.failure);
    }
}
