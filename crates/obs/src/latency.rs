//! Per-run latency capture: phase timing, histograms keyed by phase, and
//! the [`ObsHub`] that owns both the histograms and the flight recorder.

use crate::hist::LogHistogram;
use crate::trace::{FlightRecorder, TraceEvent, TraceOutcome};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Nanosecond phase timer: `lap()` returns the nanos since the previous
/// lap (or construction) and restarts the clock. Saturates at `u64::MAX`
/// (a ~584-year phase is a clock bug, not a measurement).
#[derive(Debug)]
pub struct PhaseTimer {
    last: Instant,
}

impl PhaseTimer {
    /// Starts the clock.
    pub fn start() -> Self {
        PhaseTimer {
            last: Instant::now(),
        }
    }

    /// Nanoseconds since the previous lap; restarts the clock.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let nanos = now.duration_since(self.last).as_nanos();
        self.last = now;
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

/// All latency histograms of one run, mergeable and serde-able. Field
/// names are the exposition names (lint rule L004 checks each appears in
/// the CLI report).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// End-to-end `handle_update` time (maintain + access) per update.
    pub update_total_nanos: LogHistogram,
    /// Maintain-phase time per update.
    pub update_maintain_nanos: LogHistogram,
    /// Access-phase time per update.
    pub update_access_nanos: LogHistogram,
    /// Durable checkpoint write time per checkpoint.
    pub checkpoint_write_nanos: LogHistogram,
    /// Simulated disk cell-read time per read (from `StorageStats`).
    pub disk_read_nanos: LogHistogram,
}

impl LatencySnapshot {
    /// The histograms with their exposition names, in stable order.
    pub fn named(&self) -> [(&'static str, &LogHistogram); 5] {
        [
            ("update_total_nanos", &self.update_total_nanos),
            ("update_maintain_nanos", &self.update_maintain_nanos),
            ("update_access_nanos", &self.update_access_nanos),
            ("checkpoint_write_nanos", &self.checkpoint_write_nanos),
            ("disk_read_nanos", &self.disk_read_nanos),
        ]
    }

    /// Folds `other` into `self`, histogram by histogram.
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.update_total_nanos.merge(&other.update_total_nanos);
        self.update_maintain_nanos
            .merge(&other.update_maintain_nanos);
        self.update_access_nanos.merge(&other.update_access_nanos);
        self.checkpoint_write_nanos
            .merge(&other.checkpoint_write_nanos);
        self.disk_read_nanos.merge(&other.disk_read_nanos);
    }
}

/// One-line human summary of a histogram: count, mean and tail quantiles.
pub fn summarize(h: &LogHistogram) -> String {
    format!(
        "n={} mean={} p50={} p90={} p99={} p999={} max={}",
        h.count(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max(),
    )
}

/// The per-run observability hub: owns the flight recorder and the
/// run-local latency histograms. Lives inside the supervised worker (or
/// the plain pipeline / CLI run loop) and is cheap enough to feed on
/// every update.
#[derive(Debug)]
pub struct ObsHub {
    /// Ring of recent per-update events, dumped on death.
    pub recorder: FlightRecorder,
    update_total: LogHistogram,
    update_maintain: LogHistogram,
    update_access: LogHistogram,
    checkpoint_write: LogHistogram,
}

impl ObsHub {
    /// A hub whose flight recorder keeps `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ObsHub {
            recorder: FlightRecorder::new(capacity),
            update_total: LogHistogram::new(),
            update_maintain: LogHistogram::new(),
            update_access: LogHistogram::new(),
            checkpoint_write: LogHistogram::new(),
        }
    }

    /// Records one per-update event: always traced; latency histograms are
    /// fed only for applied updates (rejections carry no phase timings).
    pub fn record_update(&mut self, event: TraceEvent) {
        if event.outcome == TraceOutcome::Applied {
            self.update_maintain.record(event.maintain_nanos);
            self.update_access.record(event.access_nanos);
            self.update_total
                .record(event.maintain_nanos.saturating_add(event.access_nanos));
        }
        self.recorder.push(event);
    }

    /// Records a checkpoint write: traced (with the write time in
    /// `maintain_nanos`) and fed into the checkpoint histogram.
    pub fn record_checkpoint(&mut self, seq: u64, nanos: u64) {
        self.checkpoint_write.record(nanos);
        self.recorder.push(TraceEvent {
            seq,
            unit: 0,
            maintain_nanos: nanos,
            access_nanos: 0,
            cells_accessed: 0,
            result_changed: false,
            outcome: TraceOutcome::Checkpoint,
        });
    }

    /// Materializes the run's latency view, joining the run-local update
    /// histograms with the storage layer's disk-read histogram.
    pub fn snapshot(&self, disk_read_nanos: LogHistogram) -> LatencySnapshot {
        LatencySnapshot {
            update_total_nanos: self.update_total.clone(),
            update_maintain_nanos: self.update_maintain.clone(),
            update_access_nanos: self.update_access.clone(),
            checkpoint_write_nanos: self.checkpoint_write.clone(),
            disk_read_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn applied(seq: u64, maintain: u64, access: u64) -> TraceEvent {
        TraceEvent {
            seq,
            unit: 1,
            maintain_nanos: maintain,
            access_nanos: access,
            cells_accessed: 1,
            result_changed: false,
            outcome: TraceOutcome::Applied,
        }
    }

    #[test]
    fn hub_feeds_histograms_only_for_applied() {
        let mut hub = ObsHub::new(8);
        hub.record_update(applied(1, 100, 200));
        hub.record_update(TraceEvent {
            outcome: TraceOutcome::Rejected("stale"),
            ..applied(2, 999, 999)
        });
        let snap = hub.snapshot(LogHistogram::new());
        assert_eq!(snap.update_total_nanos.count(), 1);
        assert_eq!(snap.update_total_nanos.max(), 300);
        assert_eq!(hub.recorder.len(), 2);
    }

    #[test]
    fn checkpoint_records_event_and_histogram() {
        let mut hub = ObsHub::new(8);
        hub.record_checkpoint(5, 1234);
        let snap = hub.snapshot(LogHistogram::new());
        assert_eq!(snap.checkpoint_write_nanos.count(), 1);
        let last = hub.recorder.events().last().expect("one event");
        assert_eq!(last.outcome, TraceOutcome::Checkpoint);
        assert_eq!(last.seq, 5);
    }

    #[test]
    fn phase_timer_laps_are_monotone() {
        let mut t = PhaseTimer::start();
        let a = t.lap();
        let b = t.lap();
        // Laps are non-negative by construction; just ensure they both
        // produced plausible (small) values.
        assert!(a < 1_000_000_000 && b < 1_000_000_000);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let mut a = LatencySnapshot::default();
        a.update_total_nanos.record(10);
        let mut b = LatencySnapshot::default();
        b.update_total_nanos.record(20);
        b.disk_read_nanos.record(5);
        a.merge(&b);
        assert_eq!(a.update_total_nanos.count(), 2);
        assert_eq!(a.disk_read_nanos.count(), 1);
    }

    #[test]
    fn summarize_mentions_quantiles() {
        let mut h = LogHistogram::new();
        h.record(100);
        let s = summarize(&h);
        assert!(s.contains("p50=") && s.contains("p999="));
    }
}
