//! A deliberately tiny `/metrics` HTTP responder on a std `TcpListener`.
//!
//! Scope: serve the current Prometheus exposition text to scrapers during
//! a run. One accept thread, blocking I/O with short timeouts, no TLS, no
//! keep-alive — a scrape endpoint, not a web server. Zero dependencies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared handle for publishing the exposition body to the serving thread.
#[derive(Debug, Clone)]
pub struct MetricsPublisher {
    body: Arc<Mutex<String>>,
}

impl MetricsPublisher {
    /// Replaces the served `/metrics` body.
    pub fn publish(&self, body: String) {
        let mut guard = match self.body.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = body;
    }
}

/// A running metrics endpoint. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving. The initial
    /// body is empty until the first [`MetricsPublisher::publish`].
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let body = Arc::new(Mutex::new(String::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_body = Arc::clone(&body);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ctup-metrics".into())
            .spawn(move || accept_loop(listener, thread_body, thread_stop))?;
        Ok(MetricsServer {
            addr,
            body,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle for publishing new exposition bodies.
    pub fn publisher(&self) -> MetricsPublisher {
        MetricsPublisher {
            body: Arc::clone(&self.body),
        }
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

fn accept_loop(listener: TcpListener, body: Arc<Mutex<String>>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let text = {
            let guard = match body.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.clone()
        };
        // Serve each connection inline: scrapes are rare and tiny, and an
        // inline response keeps the thread budget at exactly one.
        let _ = serve_one(stream, &text);
    }
}

fn serve_one(mut stream: TcpStream, body: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request headers (clients may deliver the
    // request in several segments); closing with unread data queued would
    // RST the connection under the response.
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let response = if path == "/metrics" || path.starts_with("/metrics?") {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let msg = "not found; scrape /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            msg.len(),
            msg
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n");
        s.write_all(request.as_bytes()).expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_published_body_on_metrics_path() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        server
            .publisher()
            .publish("# TYPE x counter\nx 1\n".to_string());
        let resp = get(server.local_addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
        assert!(resp.contains("version=0.0.4"));
        assert!(resp.ends_with("x 1\n"));
        server.shutdown();
    }

    #[test]
    fn other_paths_get_404() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let resp = get(server.local_addr(), "/");
        assert!(resp.starts_with("HTTP/1.1 404"), "got: {resp}");
        server.shutdown();
    }

    #[test]
    fn publish_updates_served_body() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let publisher = server.publisher();
        publisher.publish("a 1\n".to_string());
        assert!(get(server.local_addr(), "/metrics").ends_with("a 1\n"));
        publisher.publish("a 2\n".to_string());
        assert!(get(server.local_addr(), "/metrics").ends_with("a 2\n"));
        server.shutdown();
    }
}
