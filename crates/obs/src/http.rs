//! A deliberately tiny `/metrics` + `/healthz` HTTP responder on a std
//! `TcpListener`.
//!
//! Scope: serve the current Prometheus exposition text and a liveness
//! document to scrapers during a run. Blocking I/O with short timeouts, no
//! TLS, no keep-alive — a scrape endpoint, not a web server. Zero
//! dependencies.
//!
//! Each accepted connection is served on its own short-lived thread with a
//! hard overall deadline, so a stalled or trickling client can never wedge
//! the accept loop and block other scrapers (the failure mode the old
//! serve-inline design had: one peer that connected and sent nothing
//! renewed its 500 ms read timeout forever while `/metrics` went dark).
//! Concurrent handler threads are capped; connections beyond the cap get
//! an immediate best-effort `503` instead of queueing behind a slow peer.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cap on concurrently served connections.
const MAX_INFLIGHT: usize = 32;
/// A whole request (headers) must arrive within this.
const REQUEST_DEADLINE: Duration = Duration::from_secs(1);
/// Granularity of the read loop under the deadline.
const READ_TICK: Duration = Duration::from_millis(100);
/// Bound on writing the response to a slow reader.
const WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// The two independently published documents.
#[derive(Debug)]
struct Bodies {
    metrics: Mutex<String>,
    health: Mutex<String>,
}

fn read_locked(m: &Mutex<String>) -> String {
    match m.lock() {
        Ok(guard) => guard.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

fn write_locked(m: &Mutex<String>, value: String) {
    let mut guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *guard = value;
}

/// Shared handle for publishing the served documents to the responder.
#[derive(Debug, Clone)]
pub struct MetricsPublisher {
    bodies: Arc<Bodies>,
}

impl MetricsPublisher {
    /// Replaces the served `/metrics` body.
    pub fn publish(&self, body: String) {
        write_locked(&self.bodies.metrics, body);
    }

    /// Replaces the served `/healthz` body (a small JSON document carrying
    /// liveness and the degraded flag).
    pub fn publish_health(&self, body: String) {
        write_locked(&self.bodies.health, body);
    }
}

/// A running metrics endpoint. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    bodies: Arc<Bodies>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving. The initial
    /// `/metrics` body is empty until the first
    /// [`MetricsPublisher::publish`]; `/healthz` starts as a healthy
    /// non-degraded document.
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let bodies = Arc::new(Bodies {
            metrics: Mutex::new(String::new()),
            health: Mutex::new("{\"status\":\"ok\",\"degraded\":false}".to_string()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let thread_bodies = Arc::clone(&bodies);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ctup-metrics".into())
            .spawn(move || accept_loop(&listener, &thread_bodies, &thread_stop))?;
        Ok(MetricsServer {
            addr,
            bodies,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle for publishing new exposition bodies.
    pub fn publisher(&self) -> MetricsPublisher {
        MetricsPublisher {
            bodies: Arc::clone(&self.bodies),
        }
    }

    /// Stops the accept thread and joins it. In-flight connection handlers
    /// finish on their own (each is bounded by the request deadline).
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

fn accept_loop(listener: &TcpListener, bodies: &Arc<Bodies>, stop: &Arc<AtomicBool>) {
    let inflight = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if inflight.load(Ordering::SeqCst) >= MAX_INFLIGHT {
            // Over the cap: refuse fast rather than queueing behind the
            // slow peers that filled the slots.
            let _ = respond(
                &stream,
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "busy; retry\n",
            );
            continue;
        }
        inflight.fetch_add(1, Ordering::SeqCst);
        let bodies = Arc::clone(bodies);
        let for_handler = Arc::clone(&inflight);
        let spawned = std::thread::Builder::new()
            .name("ctup-metrics-conn".into())
            .spawn(move || {
                let _ = serve_one(&stream, &bodies);
                for_handler.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Reads one request under the overall deadline and answers it. A peer
/// that stalls or trickles past the deadline gets dropped; only this
/// handler thread waits on it, never the accept loop.
fn serve_one(mut stream: &TcpStream, bodies: &Bodies) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    let complete = loop {
        if Instant::now() > deadline || len >= buf.len() {
            break false;
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => break false,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    };
    if !complete {
        return respond(
            stream,
            "408 Request Timeout",
            "text/plain; charset=utf-8",
            "request did not complete in time\n",
        );
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    if path == "/metrics" || path.starts_with("/metrics?") {
        let body = read_locked(&bodies.metrics);
        respond(
            stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &body,
        )
    } else if path == "/healthz" || path.starts_with("/healthz?") {
        let body = read_locked(&bodies.health);
        respond(stream, "200 OK", "application/json; charset=utf-8", &body)
    } else {
        respond(
            stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; scrape /metrics or /healthz\n",
        )
    }
}

fn respond(
    mut stream: &TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n");
        s.write_all(request.as_bytes()).expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_published_body_on_metrics_path() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        server
            .publisher()
            .publish("# TYPE x counter\nx 1\n".to_string());
        let resp = get(server.local_addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
        assert!(resp.contains("version=0.0.4"));
        assert!(resp.ends_with("x 1\n"));
        server.shutdown();
    }

    #[test]
    fn other_paths_get_404() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let resp = get(server.local_addr(), "/");
        assert!(resp.starts_with("HTTP/1.1 404"), "got: {resp}");
        server.shutdown();
    }

    #[test]
    fn publish_updates_served_body() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let publisher = server.publisher();
        publisher.publish("a 1\n".to_string());
        assert!(get(server.local_addr(), "/metrics").ends_with("a 1\n"));
        publisher.publish("a 2\n".to_string());
        assert!(get(server.local_addr(), "/metrics").ends_with("a 2\n"));
        server.shutdown();
    }

    #[test]
    fn healthz_serves_liveness_and_updates() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let resp = get(server.local_addr(), "/healthz");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
        assert!(resp.contains("application/json"));
        assert!(resp.ends_with("{\"status\":\"ok\",\"degraded\":false}"));
        server
            .publisher()
            .publish_health("{\"status\":\"degraded\",\"degraded\":true}".to_string());
        let resp = get(server.local_addr(), "/healthz");
        assert!(resp.ends_with("{\"status\":\"degraded\",\"degraded\":true}"));
        server.shutdown();
    }

    /// The regression the per-connection redesign exists for: a client
    /// that connects and then sends nothing must not block other scrapes.
    #[test]
    fn stalled_client_does_not_block_scrapes() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        server.publisher().publish("x 1\n".to_string());
        // Open a connection and stall it (no bytes sent).
        let stalled = TcpStream::connect(server.local_addr()).expect("connect");
        // Open a second and trickle one byte; it stays incomplete.
        let mut trickle = TcpStream::connect(server.local_addr()).expect("connect");
        trickle.write_all(b"G").expect("trickle byte");
        // A concurrent well-behaved scrape must be answered promptly.
        let started = Instant::now();
        let resp = get(server.local_addr(), "/metrics");
        assert!(resp.ends_with("x 1\n"), "got: {resp}");
        assert!(
            started.elapsed() < REQUEST_DEADLINE,
            "scrape was blocked behind a stalled client: {:?}",
            started.elapsed()
        );
        // The stalled clients are eventually answered with a 408 (or the
        // connection is closed), not left hanging forever.
        drop(stalled);
        drop(trickle);
        server.shutdown();
    }

    #[test]
    fn stalled_client_gets_request_timeout() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let mut stalled = TcpStream::connect(server.local_addr()).expect("connect");
        stalled
            .set_read_timeout(Some(REQUEST_DEADLINE * 3))
            .expect("timeout");
        let mut out = String::new();
        stalled.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 408"), "got: {out}");
        server.shutdown();
    }
}
