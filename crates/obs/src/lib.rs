//! # ctup-obs — observability for the CTUP pipeline
//!
//! Zero-heavy-dependency building blocks threaded through core, storage
//! and the CLI:
//!
//! * [`hist`] — log-bucketed (HDR-style) latency histograms: mergeable,
//!   serde-able, with an exact-round-trip text codec and a lock-free
//!   atomic variant for shared-reference call sites.
//! * [`trace`] — per-update [`trace::TraceEvent`]s and the fixed-capacity
//!   [`trace::FlightRecorder`] ring the supervisor dumps as JSON Lines on
//!   worker death.
//! * [`span`] — the causal span layer: 64-bit trace ids threaded from the
//!   client socket to the top-k publish, deterministic per-stage span ids,
//!   and the lock-free bounded [`span::SpanSink`] rings merged on snapshot.
//! * [`latency`] — [`latency::PhaseTimer`] for maintain/access phase
//!   timing, the [`latency::ObsHub`] owning a run's recorder + histograms,
//!   and the [`latency::LatencySnapshot`] view reports are built from.
//! * [`json`] — the minimal JSON writer the dump and report formats share
//!   (the workspace carries no JSON dependency).
//! * [`http`] — a tiny std-`TcpListener` responder serving the Prometheus
//!   exposition text at `/metrics` during a run.
//!
//! The crate is panic-free library code (lint L001 applies) and depends
//! only on `serde` for derives.

pub mod hist;
pub mod http;
pub mod json;
pub mod latency;
pub mod span;
pub mod trace;

pub use hist::{AtomicHistogram, HistDecodeError, LogHistogram};
pub use http::{MetricsPublisher, MetricsServer};
pub use latency::{summarize, LatencySnapshot, ObsHub, PhaseTimer};
pub use span::{
    mint_trace, now_nanos, parent_span_id, sample_trace, span_id, Span, SpanCounters, SpanSink,
    SpanSnapshot, Stage,
};
pub use trace::{FlightRecorder, TraceEvent, TraceOutcome};
