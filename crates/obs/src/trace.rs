//! Structured per-update tracing and the fixed-capacity flight recorder.
//!
//! Every update the supervised worker handles emits one [`TraceEvent`];
//! the [`FlightRecorder`] keeps the last `capacity` of them in a ring.
//! When the pipeline dies (worker gave up, or a simulated kill), the
//! supervisor dumps the ring as JSON Lines next to the checkpoint slots,
//! so a post-mortem can see exactly what the worker was doing when it
//! went down — without any runtime logging cost while healthy.

use crate::json::ObjectWriter;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

/// What happened to the update an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The update was applied by the algorithm.
    Applied,
    /// The ingest gate rejected it (label names the `RejectReason`).
    Rejected(&'static str),
    /// The worker panicked while applying it.
    Panicked,
    /// The storage layer gave up (exhausted retries / detected corruption).
    StorageError,
    /// A periodic checkpoint was written after this update.
    Checkpoint,
    /// The simulated process death fired at this update.
    Killed,
    /// The supervisor exhausted its restart budget at this update.
    GaveUp,
}

impl TraceOutcome {
    /// Stable lowercase label used in dumps and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            TraceOutcome::Applied => "applied",
            TraceOutcome::Rejected(_) => "rejected",
            TraceOutcome::Panicked => "panicked",
            TraceOutcome::StorageError => "storage_error",
            TraceOutcome::Checkpoint => "checkpoint",
            TraceOutcome::Killed => "killed",
            TraceOutcome::GaveUp => "gave_up",
        }
    }

    /// Extra detail for [`TraceOutcome::Rejected`], empty otherwise.
    pub fn detail(&self) -> &'static str {
        match self {
            TraceOutcome::Rejected(why) => why,
            _ => "",
        }
    }
}

/// One compact record of what a single update did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Effective update sequence number (monotone within a run).
    pub seq: u64,
    /// Unit the update belongs to (0 for non-update events).
    pub unit: u32,
    /// Nanoseconds spent in the maintain phase.
    pub maintain_nanos: u64,
    /// Nanoseconds spent in the access phase.
    pub access_nanos: u64,
    /// Cells read while applying the update.
    pub cells_accessed: u64,
    /// Whether the reported top-k changed.
    pub result_changed: bool,
    /// Terminal outcome of the update.
    pub outcome: TraceOutcome,
}

impl TraceEvent {
    /// One JSON object (no trailing newline) — the dump line format.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_u64("seq", self.seq)
            .field_u64("unit", u64::from(self.unit))
            .field_u64("maintain_nanos", self.maintain_nanos)
            .field_u64("access_nanos", self.access_nanos)
            .field_u64("cells_accessed", self.cells_accessed)
            .field_bool("result_changed", self.result_changed)
            .field_str("outcome", self.outcome.label());
        if !self.outcome.detail().is_empty() {
            w.field_str("detail", self.outcome.detail());
        }
        w.finish()
    }
}

/// Fixed-capacity ring of the most recent [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The whole ring as JSON Lines (one event per line, oldest first,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the ring to `path` as JSON Lines, creating or truncating the
    /// file. Write-then-sync so the dump survives the process dying right
    /// after (the dump is taken precisely because the process is dying).
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, outcome: TraceOutcome) -> TraceEvent {
        TraceEvent {
            seq,
            unit: 3,
            maintain_nanos: 10,
            access_nanos: 20,
            cells_accessed: 2,
            result_changed: false,
            outcome,
        }
    }

    #[test]
    fn ring_keeps_last_capacity_events() {
        let mut r = FlightRecorder::new(4);
        for s in 0..10 {
            r.push(ev(s, TraceOutcome::Applied));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let mut r = FlightRecorder::new(8);
        r.push(ev(1, TraceOutcome::Applied));
        r.push(ev(2, TraceOutcome::Rejected("stale")));
        let dump = r.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":1,"));
        assert!(lines[1].contains("\"outcome\":\"rejected\""));
        assert!(lines[1].contains("\"detail\":\"stale\""));
    }

    #[test]
    fn dump_to_writes_file() {
        let dir = std::env::temp_dir().join("ctup-obs-trace-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("fr.jsonl");
        let mut r = FlightRecorder::new(2);
        r.push(ev(7, TraceOutcome::Killed));
        r.dump_to(&path).expect("dump");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"outcome\":\"killed\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        r.push(ev(1, TraceOutcome::Applied));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
    }
}
