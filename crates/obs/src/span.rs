//! Causal span layer: 64-bit trace ids threaded end-to-end through the
//! report pipeline, with lock-free bounded per-thread span rings merged
//! on snapshot.
//!
//! Design constraints (same as the rest of `ctup-obs`):
//!
//! - **Zero dependencies.** Ids are minted with a splitmix-style mixer,
//!   spans are dumped as hand-rolled JSONL and parsed back with a tiny
//!   scanner — no serde on the hot path, no tracing crates.
//! - **Deterministic span ids.** A span id is a pure function of
//!   `(trace, stage, k)`, so the wire protocol only ever carries the
//!   trace id: every process that observes the same trace derives the
//!   same span ids, and a replayed/deduplicated report maps onto the
//!   *same* spans instead of forking the tree.
//! - **Bounded, wait-free recording.** [`SpanSink`] is a fixed set of
//!   seqlock rings; a writer claims a slot with one `fetch_add` and two
//!   version flips. Overwrites are counted, never blocked on.
//!
//! Timestamps are nanoseconds since a process-wide monotonic anchor
//! ([`now_nanos`]). Spans recorded by different processes therefore do
//! not share a timeline; end-to-end analysis (`ctup trace`,
//! `cargo xtask spancheck`) is meant to run on dumps from a
//! single-process loopback run (`ctup serve --updates N --span-dump`).

use crate::json::ObjectWriter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of independent rings in a [`SpanSink`]. Threads are assigned
/// rings round-robin; with at most this many recording threads every
/// ring has a single writer.
const RINGS: usize = 32;

/// Process-wide monotonic clock anchor shared by every [`SpanSink`].
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide monotonic anchor. The first call
/// in a process pins the anchor; all later calls (from any thread) are
/// measured against it, so span stamps from different threads are
/// directly comparable.
pub fn now_nanos() -> u64 {
    u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
pub fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints the trace id for report `seq` under session seed `seed`.
/// Never returns 0 (0 means "untraced" everywhere).
pub fn mint_trace(seed: u64, seq: u64) -> u64 {
    let t = mix64(seed ^ mix64(seq));
    if t == 0 {
        1
    } else {
        t
    }
}

/// Head-based 1-in-`every` sampling: returns a fresh trace id when
/// report `seq` is sampled, 0 otherwise. `every == 0` disables
/// sampling; `every == 1` traces everything. The decision is a pure
/// function of `seq`, so a replayed report makes the same choice.
// `u64::is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.75.
#[allow(clippy::manual_is_multiple_of)]
pub fn sample_trace(seed: u64, seq: u64, every: u64) -> u64 {
    if every == 0 {
        return 0;
    }
    if every == 1 || seq % every == 0 {
        mint_trace(seed, seq)
    } else {
        0
    }
}

/// Pipeline stage a span measures. Labels are the canonical wire/dump
/// names; `ctup trace` and spancheck key on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Client-side: frame pushed onto the socket and flushed.
    ClientSend,
    /// Server session layer: decode, classify, dedup.
    SessionAdmit,
    /// Time spent queued in the admission queue before the pump took it.
    QueueWait,
    /// Engine hand-off through gate admit and journal append.
    EngineApply,
    /// One shard's illumination/maintenance work (aux = shard index).
    ShardPhase,
    /// Cross-shard merge of per-shard results.
    Merge,
    /// Top-k snapshot publication to subscribers.
    SnapshotPublish,
    /// Durable WAL append (and replication ship) for this report.
    WalAppend,
    /// Periodic durable checkpoint riding on this report's apply.
    Checkpoint,
    /// Report shed at the door or drain (always sampled).
    Shed,
    /// Standby replaying this report from a replicated WAL frame.
    StandbyApply,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 11] = [
        Stage::ClientSend,
        Stage::SessionAdmit,
        Stage::QueueWait,
        Stage::EngineApply,
        Stage::ShardPhase,
        Stage::Merge,
        Stage::SnapshotPublish,
        Stage::WalAppend,
        Stage::Checkpoint,
        Stage::Shed,
        Stage::StandbyApply,
    ];

    /// The canonical causal chain a fully-traced report produces, in
    /// order. `ctup trace` and the CI tracing job assert these appear
    /// contiguously for at least one trace.
    pub const CANONICAL_CHAIN: [Stage; 7] = [
        Stage::ClientSend,
        Stage::SessionAdmit,
        Stage::QueueWait,
        Stage::EngineApply,
        Stage::ShardPhase,
        Stage::Merge,
        Stage::SnapshotPublish,
    ];

    /// Stable label used in span dumps and reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::ClientSend => "client-send",
            Stage::SessionAdmit => "session-admit",
            Stage::QueueWait => "queue-wait",
            Stage::EngineApply => "engine-apply",
            Stage::ShardPhase => "shard-phase",
            Stage::Merge => "merge",
            Stage::SnapshotPublish => "snapshot-publish",
            Stage::WalAppend => "wal-append",
            Stage::Checkpoint => "checkpoint",
            Stage::Shed => "shed",
            Stage::StandbyApply => "standby-apply",
        }
    }

    /// Inverse of [`Stage::label`].
    pub fn from_label(s: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|st| st.label() == s)
    }

    /// Stable numeric code folded into span ids.
    fn code(self) -> u64 {
        match self {
            Stage::ClientSend => 1,
            Stage::SessionAdmit => 2,
            Stage::QueueWait => 3,
            Stage::EngineApply => 4,
            Stage::ShardPhase => 5,
            Stage::Merge => 6,
            Stage::SnapshotPublish => 7,
            Stage::WalAppend => 8,
            Stage::Checkpoint => 9,
            Stage::Shed => 10,
            Stage::StandbyApply => 11,
        }
    }

    /// The parent stage in the canonical causal chain, if any.
    /// `ClientSend` is the root. A stage recorded for a trace whose
    /// parent stage was never observed locally (e.g. a v1 client that
    /// cannot send `client-send`) should record parent 0 instead — see
    /// [`parent_span_id`].
    pub fn parent_stage(self) -> Option<Stage> {
        match self {
            Stage::ClientSend => None,
            Stage::SessionAdmit => Some(Stage::ClientSend),
            Stage::QueueWait => Some(Stage::SessionAdmit),
            Stage::EngineApply => Some(Stage::QueueWait),
            Stage::ShardPhase | Stage::Merge | Stage::WalAppend | Stage::Checkpoint => {
                Some(Stage::EngineApply)
            }
            Stage::SnapshotPublish => Some(Stage::Merge),
            Stage::Shed => Some(Stage::SessionAdmit),
            Stage::StandbyApply => Some(Stage::WalAppend),
        }
    }
}

/// Deterministic span id for `(trace, stage, k)`. `k` disambiguates
/// fan-out within one stage (shard index for `ShardPhase`, 0
/// otherwise). Never returns 0 for a nonzero trace.
pub fn span_id(trace: u64, stage: Stage, k: u32) -> u64 {
    let s = mix64(trace ^ mix64((stage.code() << 32) | u64::from(k)));
    if s == 0 {
        1
    } else {
        s
    }
}

/// The canonical parent span id for `stage` within `trace` (parent
/// instances always use `k = 0`). Returns 0 for the root stage.
pub fn parent_span_id(trace: u64, stage: Stage) -> u64 {
    match stage.parent_stage() {
        Some(p) => span_id(trace, p, 0),
        None => 0,
    }
}

/// One recorded span: a closed `[start, end]` interval of one stage of
/// one trace. Timestamps are [`now_nanos`] stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to (never 0 for a recorded span).
    pub trace: u64,
    /// This span's id (deterministic; see [`span_id`]).
    pub span: u64,
    /// Parent span id, 0 for a root.
    pub parent: u64,
    /// Pipeline stage measured.
    pub stage: Stage,
    /// Start stamp, nanos since the process anchor.
    pub start: u64,
    /// End stamp, nanos since the process anchor.
    pub end: u64,
    /// Stage-specific disambiguator (shard index for `ShardPhase`).
    pub aux: u32,
}

impl Span {
    /// Builds the canonical span for `(trace, stage, k)` with the
    /// canonical parent. `rooted` false forces parent 0 (used when the
    /// parent stage is known not to exist, e.g. server-minted traces
    /// that have no `client-send`).
    pub fn stage_span(
        trace: u64,
        stage: Stage,
        k: u32,
        start: u64,
        end: u64,
        rooted: bool,
    ) -> Span {
        Span {
            trace,
            span: span_id(trace, stage, k),
            parent: if rooted {
                parent_span_id(trace, stage)
            } else {
                0
            },
            stage,
            start,
            end,
            aux: k,
        }
    }

    /// Span duration in nanos (0 if the stamps are inverted).
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Renders the span as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_u64("trace", self.trace)
            .field_u64("span", self.span)
            .field_u64("parent", self.parent)
            .field_str("stage", self.stage.label())
            .field_u64("start", self.start)
            .field_u64("end", self.end)
            .field_u64("aux", u64::from(self.aux));
        w.finish()
    }

    /// Parses one JSONL line produced by [`Span::to_jsonl`]. Tolerates
    /// key reordering and unknown extra keys; rejects missing keys,
    /// unknown stages and malformed numbers.
    pub fn parse_jsonl(line: &str) -> Result<Span, String> {
        let fields = parse_flat_line(line)?;
        let num = |key: &str| -> Result<u64, String> {
            for (k, v) in &fields {
                if k == key {
                    return v
                        .parse::<u64>()
                        .map_err(|_| format!("span line: bad number for {key:?}: {v:?}"));
                }
            }
            Err(format!("span line: missing key {key:?}"))
        };
        let stage_label = fields
            .iter()
            .find(|(k, _)| k == "stage")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| "span line: missing key \"stage\"".to_string())?;
        let stage = Stage::from_label(&stage_label)
            .ok_or_else(|| format!("span line: unknown stage {stage_label:?}"))?;
        let aux64 = num("aux")?;
        Ok(Span {
            trace: num("trace")?,
            span: num("span")?,
            parent: num("parent")?,
            stage,
            start: num("start")?,
            end: num("end")?,
            aux: u32::try_from(aux64)
                .map_err(|_| format!("span line: aux out of range: {aux64}"))?,
        })
    }
}

/// Minimal flat-JSON-object scanner for span lines: returns `(key,
/// value)` pairs where string values are unquoted (no escape handling
/// beyond `\"` — span lines only ever contain stage labels) and other
/// values are raw token text.
fn parse_flat_line(line: &str) -> Result<Vec<(String, String)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| format!("span line: not an object: {s:?}"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("span line: expected key at {rest:?}"))?;
        let key_end = after_quote
            .find('"')
            .ok_or_else(|| "span line: unterminated key".to_string())?;
        let key = after_quote[..key_end].to_string();
        let after_key = after_quote[key_end + 1..].trim_start();
        let after_colon = after_key
            .strip_prefix(':')
            .ok_or_else(|| format!("span line: expected ':' after {key:?}"))?
            .trim_start();
        let (value, tail) = if let Some(vs) = after_colon.strip_prefix('"') {
            let vend = vs
                .find('"')
                .ok_or_else(|| "span line: unterminated string value".to_string())?;
            (vs[..vend].to_string(), vs[vend + 1..].trim_start())
        } else {
            let vend = after_colon.find(',').unwrap_or(after_colon.len());
            (
                after_colon[..vend].trim().to_string(),
                after_colon[vend..].trim_start(),
            )
        };
        out.push((key, value));
        rest = match tail.strip_prefix(',') {
            Some(t) => t.trim_start(),
            None if tail.is_empty() => tail,
            None => return Err(format!("span line: expected ',' at {tail:?}")),
        };
    }
    Ok(out)
}

/// Span/trace counters exposed by a sink snapshot. Field names are the
/// exposition names; lint rule L004 checks each appears in every report
/// renderer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Spans overwritten in a ring before a snapshot could read them.
    pub spans_dropped: u64,
    /// Trace ids minted (head-sampled or forced) by this process.
    pub traces_sampled: u64,
    /// Exemplar trace ids currently attached to histogram buckets.
    pub exemplars: u64,
}

/// Merged view of every ring of a [`SpanSink`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// All readable spans, sorted by start stamp.
    pub spans: Vec<Span>,
    /// Spans overwritten before this snapshot could read them.
    pub spans_dropped: u64,
    /// Total spans ever recorded into the sink.
    pub spans_recorded: u64,
    /// Trace ids minted via [`SpanSink::note_trace_sampled`].
    pub traces_sampled: u64,
}

const SLOT_EMPTY: u64 = 0;

/// One seqlock slot. `version` is even when stable, odd mid-write;
/// `SLOT_EMPTY` (0) means never written.
#[derive(Debug)]
struct Slot {
    version: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    /// `stage code << 32 | aux`.
    stage_aux: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(SLOT_EMPTY),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            stage_aux: AtomicU64::new(0),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct Ring {
    head: AtomicU64,
    slots: Vec<Slot>,
}

/// Lock-free bounded span store: [`RINGS`] seqlock rings, each with
/// `capacity / RINGS` slots (at least 1). Threads record into a
/// thread-assigned ring with one `fetch_add` plus two version flips;
/// when a ring wraps, the oldest spans are overwritten and counted in
/// `spans_dropped`. Readers ([`SpanSink::snapshot`]) never block
/// writers: torn slots are retried a few times, then skipped.
///
/// With more than [`RINGS`] recording threads two threads can share a
/// ring; the seqlock version check still protects readers from torn
/// reads, and a doubly-claimed slot (only possible when the ring is
/// already wrapping, i.e. already dropping) at worst loses one span.
#[derive(Debug)]
pub struct SpanSink {
    rings: Vec<Ring>,
    next_ring: AtomicU64,
    recorded: AtomicU64,
    sampled: AtomicU64,
}

thread_local! {
    /// Cached ring index for this thread (assigned on first record).
    static MY_RING: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

impl SpanSink {
    /// A sink holding roughly `capacity` spans across all rings.
    pub fn new(capacity: usize) -> SpanSink {
        let per_ring = (capacity / RINGS).max(1);
        let rings = (0..RINGS)
            .map(|_| Ring {
                head: AtomicU64::new(0),
                slots: (0..per_ring).map(|_| Slot::new()).collect(),
            })
            .collect();
        SpanSink {
            rings,
            next_ring: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
        }
    }

    /// Total span capacity across rings.
    pub fn capacity(&self) -> usize {
        self.rings.iter().map(|r| r.slots.len()).sum()
    }

    fn ring_for_thread(&self) -> usize {
        MY_RING.with(|cell| match cell.get() {
            Some(i) => i,
            None => {
                let i =
                    usize::try_from(self.next_ring.fetch_add(1, Ordering::AcqRel) % (RINGS as u64))
                        .unwrap_or(0);
                cell.set(Some(i));
                i
            }
        })
    }

    /// Records one span. Wait-free for the writer; ignores spans with
    /// trace 0 (untraced).
    pub fn record(&self, s: Span) {
        if s.trace == 0 {
            return;
        }
        let ring = match self.rings.get(self.ring_for_thread()) {
            Some(r) => r,
            None => return,
        };
        let cap = ring.slots.len() as u64;
        let idx = ring.head.fetch_add(1, Ordering::AcqRel) % cap;
        let slot = match ring.slots.get(usize::try_from(idx).unwrap_or(0)) {
            Some(s) => s,
            None => return,
        };
        let v0 = slot.version.load(Ordering::Acquire);
        // Mark odd (in-progress), publish fields, then bump to the next
        // even version so readers can detect a torn read.
        slot.version.store(v0 | 1, Ordering::Release);
        slot.trace.store(s.trace, Ordering::Release);
        slot.span.store(s.span, Ordering::Release);
        slot.parent.store(s.parent, Ordering::Release);
        slot.stage_aux
            .store((s.stage.code() << 32) | u64::from(s.aux), Ordering::Release);
        slot.start.store(s.start, Ordering::Release);
        slot.end.store(s.end, Ordering::Release);
        slot.version
            .store((v0 | 1).wrapping_add(1), Ordering::Release);
        self.recorded.fetch_add(1, Ordering::AcqRel);
    }

    /// Convenience: build the canonical span for `(trace, stage, k)`
    /// and record it. See [`Span::stage_span`].
    pub fn record_stage(
        &self,
        trace: u64,
        stage: Stage,
        k: u32,
        start: u64,
        end: u64,
        rooted: bool,
    ) {
        self.record(Span::stage_span(trace, stage, k, start, end, rooted));
    }

    /// Notes that this process minted (sampled) a trace id.
    pub fn note_trace_sampled(&self) {
        self.sampled.fetch_add(1, Ordering::AcqRel);
    }

    /// Spans overwritten before any snapshot could read them, without
    /// copying the rings (cheap enough for a watchdog tick).
    pub fn dropped(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| {
                let cap = r.slots.len() as u64;
                r.head.load(Ordering::Acquire).saturating_sub(cap)
            })
            .sum()
    }

    /// Trace ids minted via [`SpanSink::note_trace_sampled`].
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Acquire)
    }

    /// Merges every ring into a sorted snapshot. Never blocks writers.
    pub fn snapshot(&self) -> SpanSnapshot {
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for ring in &self.rings {
            let cap = ring.slots.len() as u64;
            let head = ring.head.load(Ordering::Acquire);
            dropped += head.saturating_sub(cap);
            for slot in &ring.slots {
                if let Some(span) = read_slot(slot) {
                    spans.push(span);
                }
            }
        }
        spans.sort_by_key(|s| (s.start, s.span));
        SpanSnapshot {
            spans,
            spans_dropped: dropped,
            spans_recorded: self.recorded.load(Ordering::Acquire),
            traces_sampled: self.sampled.load(Ordering::Acquire),
        }
    }

    /// Renders the current snapshot as JSONL (one span per line).
    pub fn dump_jsonl(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for s in &snap.spans {
            out.push_str(&s.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// Seqlock read of one slot: retry on odd/changed version, give up
/// (skip the slot) after a few attempts rather than block.
fn read_slot(slot: &Slot) -> Option<Span> {
    for _ in 0..4 {
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 == SLOT_EMPTY || v1 & 1 == 1 {
            if v1 == SLOT_EMPTY {
                return None;
            }
            std::hint::spin_loop();
            continue;
        }
        let trace = slot.trace.load(Ordering::Acquire);
        let span = slot.span.load(Ordering::Acquire);
        let parent = slot.parent.load(Ordering::Acquire);
        let stage_aux = slot.stage_aux.load(Ordering::Acquire);
        let start = slot.start.load(Ordering::Acquire);
        let end = slot.end.load(Ordering::Acquire);
        let v2 = slot.version.load(Ordering::Acquire);
        if v1 != v2 {
            std::hint::spin_loop();
            continue;
        }
        let stage = stage_from_code(stage_aux >> 32)?;
        let aux = u32::try_from(stage_aux & 0xffff_ffff).unwrap_or(0);
        return Some(Span {
            trace,
            span,
            parent,
            stage,
            start,
            end,
            aux,
        });
    }
    None
}

fn stage_from_code(code: u64) -> Option<Stage> {
    Stage::ALL.iter().copied().find(|s| s.code() == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        let a = mint_trace(42, 7);
        let b = mint_trace(42, 7);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(mint_trace(42, 8), a);
        assert_ne!(mint_trace(43, 7), a);
    }

    #[test]
    fn sampling_is_one_in_n_and_replay_stable() {
        assert_eq!(sample_trace(1, 5, 0), 0);
        let hits: Vec<u64> = (0..100).map(|seq| sample_trace(9, seq, 10)).collect();
        assert_eq!(hits.iter().filter(|t| **t != 0).count(), 10);
        // Same seq, same decision and same id.
        assert_eq!(sample_trace(9, 40, 10), hits[40]);
        // every == 1 traces everything.
        assert!((0..20).all(|seq| sample_trace(3, seq, 1) != 0));
    }

    #[test]
    fn span_ids_are_deterministic_per_stage_and_k() {
        let t = mint_trace(1, 1);
        assert_eq!(
            span_id(t, Stage::EngineApply, 0),
            span_id(t, Stage::EngineApply, 0)
        );
        assert_ne!(
            span_id(t, Stage::EngineApply, 0),
            span_id(t, Stage::Merge, 0)
        );
        assert_ne!(
            span_id(t, Stage::ShardPhase, 0),
            span_id(t, Stage::ShardPhase, 1)
        );
        assert_ne!(span_id(t, Stage::EngineApply, 0), 0);
    }

    #[test]
    fn canonical_chain_parents_link_up() {
        let t = mint_trace(5, 5);
        for pair in Stage::CANONICAL_CHAIN.windows(2) {
            let (parent, child) = (pair[0], pair[1]);
            // Merge's parent is EngineApply, not ShardPhase — the chain
            // is contiguous in time, but fan-out stages share a parent.
            let expect = child.parent_stage().map(|p| span_id(t, p, 0)).unwrap_or(0);
            assert_eq!(parent_span_id(t, child), expect);
            let _ = parent;
        }
        assert_eq!(parent_span_id(t, Stage::ClientSend), 0);
        assert_eq!(
            parent_span_id(t, Stage::SnapshotPublish),
            span_id(t, Stage::Merge, 0)
        );
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_field() {
        let s = Span::stage_span(mint_trace(2, 3), Stage::ShardPhase, 3, 100, 250, true);
        let line = s.to_jsonl();
        let back = Span::parse_jsonl(&line).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn jsonl_parse_rejects_malformed_lines() {
        assert!(Span::parse_jsonl("not json").is_err());
        assert!(Span::parse_jsonl("{}").is_err());
        assert!(
            Span::parse_jsonl("{\"trace\":1,\"span\":2,\"parent\":0,\"stage\":\"nope\",\"start\":1,\"end\":2,\"aux\":0}")
                .is_err()
        );
    }

    #[test]
    fn sink_records_and_snapshots_sorted() {
        let sink = SpanSink::new(64);
        let t = mint_trace(1, 1);
        sink.record_stage(t, Stage::SessionAdmit, 0, 50, 60, true);
        sink.record_stage(t, Stage::ClientSend, 0, 10, 40, true);
        let snap = sink.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].stage, Stage::ClientSend);
        assert_eq!(snap.spans_recorded, 2);
        assert_eq!(snap.spans_dropped, 0);
    }

    #[test]
    fn untraced_spans_are_ignored() {
        let sink = SpanSink::new(64);
        sink.record_stage(0, Stage::EngineApply, 0, 1, 2, true);
        assert_eq!(sink.snapshot().spans.len(), 0);
        assert_eq!(sink.snapshot().spans_recorded, 0);
    }

    #[test]
    fn ring_overflow_counts_drops() {
        // One thread -> one ring of capacity max(64/32, 1) = 2.
        let sink = SpanSink::new(64);
        let t = mint_trace(1, 1);
        for i in 0..10u64 {
            sink.record_stage(t, Stage::EngineApply, 0, i, i + 1, true);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.spans_recorded, 10);
        assert_eq!(snap.spans_dropped, 8);
        assert_eq!(snap.spans.len(), 2);
        // The survivors are the newest writes.
        assert!(snap.spans.iter().all(|s| s.start >= 8));
    }

    #[test]
    fn concurrent_writers_never_corrupt_readers() {
        let sink = Arc::new(SpanSink::new(1024));
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let t = mint_trace(w, i);
                    sink.record_stage(t, Stage::EngineApply, 0, i, i + 1, true);
                }
            }));
        }
        for _ in 0..20 {
            for s in sink.snapshot().spans {
                // Every readable span must be internally consistent.
                assert_eq!(s.span, span_id(s.trace, s.stage, s.aux));
                assert_eq!(s.end, s.start + 1);
            }
        }
        for h in handles {
            h.join().expect("writer");
        }
        let snap = sink.snapshot();
        assert_eq!(snap.spans_recorded, 8 * 500);
        for s in snap.spans {
            assert_eq!(s.span, span_id(s.trace, s.stage, s.aux));
        }
    }

    #[test]
    fn dump_jsonl_parses_back() {
        let sink = SpanSink::new(64);
        let t = mint_trace(4, 4);
        sink.record_stage(t, Stage::ClientSend, 0, 1, 5, true);
        sink.record_stage(t, Stage::SessionAdmit, 0, 6, 9, true);
        let dump = sink.dump_jsonl();
        let parsed: Vec<Span> = dump
            .lines()
            .map(|l| Span::parse_jsonl(l).expect("parse"))
            .collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].stage, Stage::ClientSend);
    }

    #[test]
    fn now_nanos_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
