//! Log-bucketed latency histograms (HDR-style), hand-rolled so the hot
//! path stays allocation-free and the crate stays dependency-free.
//!
//! # Bucketing math
//!
//! Values below [`SUB_BUCKETS`] are recorded exactly, one bucket per value.
//! A value `v >= 16` with bit length `exp + 1` (`exp = 63 - v.leading_zeros()`,
//! so `exp >= 4`) lands in
//!
//! ```text
//! index = 16 + (exp - 4) * 16 + ((v >> (exp - 4)) & 15)
//! ```
//!
//! i.e. each power-of-two range `[2^exp, 2^(exp+1))` is split into 16
//! linear sub-buckets, bounding the relative quantile error at
//! `1/16 = 6.25%`. `exp` ranges over `4..=63`, giving
//! `16 + 60 * 16 = 976` buckets total — 7.8 KiB of `u64` counts, cheap
//! enough to embed one histogram per tracked phase.
//!
//! # Memory ordering
//!
//! This module is on the lint L008 counters allowlist: every atomic here
//! is a monotone count (`fetch_add`) or a monotone bound (`fetch_min` /
//! `fetch_max`), read only to render advisory snapshots. `Relaxed` is
//! sufficient because no other memory is published through these cells —
//! a reader that misses the latest increment renders a slightly stale
//! histogram, never a torn or inconsistent one — and per-cell
//! modification order still guarantees each counter is non-decreasing.
//!
//! The exact minimum and maximum are tracked alongside the buckets, so
//! `quantile(0.0)` / `quantile(1.0)` are exact and interior quantiles are
//! clamped into `[min, max]`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of exact low-value buckets, and sub-buckets per power of two.
pub const SUB_BUCKETS: u64 = 16;
/// Total bucket count (see module docs for the derivation).
pub const NUM_BUCKETS: usize = 976;

/// Bucket index for `v`. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= 4
    let sub = (v >> (exp - 4)) & 15;
    (16 + (exp - 4) * 16 + sub) as usize
}

/// Smallest value mapping to bucket `idx` (inverse of [`bucket_index`]).
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let exp = (idx as u64 - 16) / 16 + 4;
    let sub = (idx as u64 - 16) % 16;
    (16 + sub) << (exp - 4)
}

/// Largest value mapping to bucket `idx`.
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_low(idx + 1) - 1
}

/// A mergeable, serde-able log-bucketed histogram of `u64` samples
/// (nanoseconds, in this codebase).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`. Exact: merging is bucket-wise addition.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped into the exact
    /// `[min, max]` range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i, *c))
    }

    /// Compact text encoding for checkpoint/report files:
    /// `v1 <count> <sum> <min> <max> <idx>:<n> <idx>:<n> …` (sparse, exact
    /// round-trip via [`LogHistogram::decode`]).
    pub fn encode(&self) -> String {
        let mut out = format!("v1 {} {} {} {}", self.count, self.sum, self.min, self.max);
        for (idx, c) in self.nonzero_buckets() {
            out.push(' ');
            out.push_str(&idx.to_string());
            out.push(':');
            out.push_str(&c.to_string());
        }
        out
    }

    /// Parses the [`LogHistogram::encode`] format.
    pub fn decode(s: &str) -> Result<LogHistogram, HistDecodeError> {
        let mut parts = s.split_ascii_whitespace();
        if parts.next() != Some("v1") {
            return Err(HistDecodeError::BadVersion);
        }
        let mut header = [0u64; 4];
        for slot in header.iter_mut() {
            let tok = parts.next().ok_or(HistDecodeError::Truncated)?;
            *slot = tok.parse().map_err(|_| HistDecodeError::BadNumber)?;
        }
        let mut h = LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: header[0],
            sum: header[1],
            min: header[2],
            max: header[3],
        };
        let mut total = 0u64;
        for pair in parts {
            let (idx, c) = pair.split_once(':').ok_or(HistDecodeError::BadPair)?;
            let idx: usize = idx.parse().map_err(|_| HistDecodeError::BadNumber)?;
            let c: u64 = c.parse().map_err(|_| HistDecodeError::BadNumber)?;
            if idx >= NUM_BUCKETS {
                return Err(HistDecodeError::BucketOutOfRange);
            }
            h.counts[idx] = h.counts[idx]
                .checked_add(c)
                .ok_or(HistDecodeError::BadNumber)?;
            total = total.checked_add(c).ok_or(HistDecodeError::BadNumber)?;
        }
        if total != h.count {
            return Err(HistDecodeError::CountMismatch);
        }
        Ok(h)
    }
}

/// Why a histogram text encoding failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistDecodeError {
    /// Missing or unknown leading version tag.
    BadVersion,
    /// Header ended before count/sum/min/max were read.
    Truncated,
    /// A numeric field failed to parse or overflowed.
    BadNumber,
    /// A bucket entry was not `idx:count`.
    BadPair,
    /// A bucket index exceeded [`NUM_BUCKETS`].
    BucketOutOfRange,
    /// Bucket counts do not add up to the header count.
    CountMismatch,
}

impl std::fmt::Display for HistDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            HistDecodeError::BadVersion => "missing or unknown histogram version tag",
            HistDecodeError::Truncated => "histogram header truncated",
            HistDecodeError::BadNumber => "unparseable or overflowing number",
            HistDecodeError::BadPair => "bucket entry is not `idx:count`",
            HistDecodeError::BucketOutOfRange => "bucket index out of range",
            HistDecodeError::CountMismatch => "bucket counts disagree with header count",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HistDecodeError {}

/// Lock-free histogram for shared-reference call sites (storage stats).
/// Relaxed ordering everywhere: counters tolerate reordering, and the
/// snapshot is advisory, never a synchronization point.
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        let mut counts = Vec::with_capacity(NUM_BUCKETS);
        counts.resize_with(NUM_BUCKETS, || AtomicU64::new(0));
        AtomicHistogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample through a shared reference.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Resets all buckets and the summary fields to the empty state.
    /// Advisory like `snapshot`: concurrent recorders may interleave.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Materializes the current contents as a plain [`LogHistogram`].
    /// Not atomic across buckets; concurrent recorders may straddle the
    /// scan, which is fine for reporting.
    pub fn snapshot(&self) -> LogHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        LogHistogram {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for v in 0..16usize {
            assert_eq!(bucket_index(v as u64), v);
            assert_eq!(bucket_low(v), v as u64);
            assert_eq!(bucket_high(v), v as u64);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_low(16), 16);
        assert_eq!(bucket_low(32), 32);
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn index_is_monotone_over_boundaries() {
        let mut prev = 0;
        for exp in 4..63u32 {
            for v in [(1u64 << exp) - 1, 1u64 << exp, (1u64 << exp) + 1] {
                let idx = bucket_index(v);
                assert!(idx >= prev, "index not monotone at {v}");
                assert!(bucket_low(idx) <= v && v <= bucket_high(idx));
                prev = idx;
            }
        }
    }

    #[test]
    fn quantiles_bounded_and_exact_at_ends() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300, 4000, 50_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!(h.quantile(1.0), 50_000);
        let p50 = h.quantile(0.5);
        assert!((100..=50_000).contains(&p50));
        // rank ceil(0.5*5)=3 → third sample (300), within 6.25%.
        assert!((300..=300 + 300 / 16 + 1).contains(&p50), "p50={p50}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        a.record(1000);
        b.record(20);
        b.record(99);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 4);
        assert_eq!(m.min(), 10);
        assert_eq!(m.max(), 1000);
        assert_eq!(m.sum(), a.sum() + b.sum());
    }

    #[test]
    fn codec_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 15, 16, 17, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let enc = h.encode();
        let dec = LogHistogram::decode(&enc).expect("round trip");
        assert_eq!(dec, h);
    }

    #[test]
    fn codec_rejects_malformed() {
        assert_eq!(
            LogHistogram::decode("v2 0 0 0 0"),
            Err(HistDecodeError::BadVersion)
        );
        assert_eq!(
            LogHistogram::decode("v1 1 0"),
            Err(HistDecodeError::Truncated)
        );
        assert_eq!(
            LogHistogram::decode("v1 1 0 0 0 9999:1"),
            Err(HistDecodeError::BucketOutOfRange)
        );
        assert_eq!(
            LogHistogram::decode("v1 2 0 0 0 3:1"),
            Err(HistDecodeError::CountMismatch)
        );
        assert_eq!(
            LogHistogram::decode("v1 1 0 0 0 3-1"),
            Err(HistDecodeError::BadPair)
        );
    }

    #[test]
    fn atomic_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = LogHistogram::new();
        for v in [5u64, 500, 50_000, 5_000_000] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
    }
}
