//! Minimal hand-rolled JSON writer. The workspace deliberately carries no
//! JSON dependency; the observability surface only ever *emits* JSON
//! (flight-recorder dumps, report output, bench snapshots), so a writer
//! with escaping is all that is needed.

/// Appends `s` to `out` as a JSON string literal (with quotes), escaping
/// per RFC 8259.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object: tracks whether a comma is due.
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Opens an object (`{`).
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Writes `"key": <unsigned>`.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Writes `"key": <bool>`.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes `"key": "escaped string"`.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        push_str_escaped(&mut self.buf, v);
        self
    }

    /// Writes `"key": <already-serialized JSON>`. The caller guarantees
    /// `raw` is valid JSON.
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_writer_produces_valid_json() {
        let mut w = ObjectWriter::new();
        w.field_u64("n", 7)
            .field_bool("ok", true)
            .field_str("s", "x\"y")
            .field_raw("inner", "{\"a\":1}");
        assert_eq!(
            w.finish(),
            "{\"n\":7,\"ok\":true,\"s\":\"x\\\"y\",\"inner\":{\"a\":1}}"
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }
}
