//! Property tests for the log-bucketed histogram: bucket math at power-of-
//! two boundaries, exact text-codec round-trips, and merge quantiles
//! bounding the inputs.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_obs::hist::{bucket_high, bucket_index, bucket_low, LogHistogram, NUM_BUCKETS};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 8 } else { 256 },
        ..ProptestConfig::default()
    })]

    /// Every value lands in a bucket whose [low, high] range contains it.
    #[test]
    fn value_lands_in_its_bucket(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        prop_assert!(bucket_low(idx) <= v);
        prop_assert!(v <= bucket_high(idx));
    }

    /// Containment holds at the bucket boundaries themselves: for every
    /// power of two, the values just below, at, and just above it map to
    /// buckets that contain them, and the index never decreases.
    #[test]
    fn boundaries_land_in_their_bucket(exp in 0u32..64) {
        let pow = 1u64 << exp;
        let candidates = [pow.wrapping_sub(1), pow, pow.saturating_add(1)];
        let mut prev = 0usize;
        for v in candidates {
            let idx = bucket_index(v);
            prop_assert!(bucket_low(idx) <= v && v <= bucket_high(idx),
                "v={v} not in bucket {idx} [{}, {}]", bucket_low(idx), bucket_high(idx));
            if v >= candidates[0] {
                prop_assert!(idx >= prev, "index decreased at v={v}");
                prev = idx;
            }
        }
    }

    /// The index function is monotone: a <= b implies index(a) <= index(b).
    #[test]
    fn index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// The text codec round-trips exactly: decode(encode(h)) == h,
    /// including count/sum/min/max and every bucket.
    #[test]
    fn codec_round_trips_exactly(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let h = hist_of(&values);
        let decoded = LogHistogram::decode(&h.encode()).expect("well-formed encoding");
        prop_assert_eq!(decoded, h);
    }

    /// Merging is exact bucket-wise addition: merging two histograms is
    /// the same as recording the concatenation of their samples.
    #[test]
    fn merge_equals_recording_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let mut both = xs.clone();
        both.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&both));
    }

    /// Merged quantiles bound the inputs: at bucket granularity, the
    /// quantile of merge(a, b) lies between the quantiles of a and b, and
    /// at the extremes it is exactly the joint min/max.
    #[test]
    fn merged_quantiles_bound_inputs(
        xs in proptest::collection::vec(any::<u64>(), 1..100),
        ys in proptest::collection::vec(any::<u64>(), 1..100),
        q in 0.0f64..=1.0,
    ) {
        let a = hist_of(&xs);
        let b = hist_of(&ys);
        let mut m = a.clone();
        m.merge(&b);

        let (qa, qb, qm) = (a.quantile(q), b.quantile(q), m.quantile(q));
        let lo = bucket_index(qa).min(bucket_index(qb));
        let hi = bucket_index(qa).max(bucket_index(qb));
        let bm = bucket_index(qm);
        prop_assert!(lo <= bm && bm <= hi,
            "merged quantile bucket {bm} outside input range [{lo}, {hi}] (q={q})");

        prop_assert_eq!(m.quantile(0.0), a.min().min(b.min()));
        prop_assert_eq!(m.quantile(1.0), a.max().max(b.max()));
        prop_assert!(m.quantile(q) >= m.min() && m.quantile(q) <= m.max());
    }
}
