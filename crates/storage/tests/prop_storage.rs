//! Property-based tests of the storage substrate: the page codec and the
//! text snapshot format must round-trip arbitrary records, both store
//! implementations must agree cell-by-cell, and — now that page frames are
//! checksummed — any byte-level corruption of a frame must be *detected*,
//! never decoded into silently wrong records.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_spatial::{Grid, Point, Rect};
use ctup_storage::{
    decode_page, encode_pages, snapshot, CellLocalStore, PagedDiskStore, PlaceId, PlaceRecord,
    PlaceStore,
};
use proptest::prelude::*;

fn record(id: u32) -> impl Strategy<Value = PlaceRecord> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        0u32..10,
        prop::option::of((0.0f64..0.05, 0.0f64..0.05)),
    )
        .prop_map(move |(x, y, rp, extent)| {
            let pos = Point::new(x, y);
            match extent {
                None => PlaceRecord::point(PlaceId(id), pos, rp),
                Some((hw, hh)) => {
                    let lo = Point::new((x - hw).max(0.0), (y - hh).max(0.0));
                    let hi = Point::new((x + hw).min(1.0), (y + hh).min(1.0));
                    PlaceRecord::extended(PlaceId(id), pos, rp, Rect::new(lo, hi))
                }
            }
        })
}

fn records() -> impl Strategy<Value = Vec<PlaceRecord>> {
    prop::collection::vec(any::<u32>(), 0..150).prop_flat_map(|ids| {
        let strategies: Vec<_> = ids
            .into_iter()
            .enumerate()
            .map(|(i, _)| record(i as u32))
            .collect();
        strategies
    })
}

/// A corruption: flip `mask` (nonzero) into the byte at relative offset
/// `pos` (scaled into the frame length at application time).
fn corruptions() -> impl Strategy<Value = Vec<(prop::sample::Index, u8)>> {
    prop::collection::vec((any::<prop::sample::Index>(), 1u8..=255), 0..=3)
}

proptest! {
    // Miri runs the same properties with a token case count: enough to
    // exercise every code path under the interpreter without taking hours.
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 128 },
        ..ProptestConfig::default()
    })]

    #[test]
    fn paged_store_roundtrips_arbitrary_records(places in records(), g in 1u32..10) {
        let grid = Grid::unit_square(g);
        let mem = CellLocalStore::build(grid.clone(), places.clone());
        let disk = PagedDiskStore::build(grid.clone(), places.clone(), 0);
        prop_assert_eq!(mem.num_places(), places.len());
        prop_assert_eq!(disk.num_places(), places.len());
        let mut seen = 0;
        for cell in grid.cells() {
            let a = mem.read_cell(cell).expect("mem reads cannot fail").into_owned();
            let b = disk.read_cell(cell).expect("clean disk read").into_owned();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(
                mem.cell_extent_margin(cell),
                disk.cell_extent_margin(cell)
            );
            seen += a.len();
        }
        prop_assert_eq!(seen, places.len());
    }

    #[test]
    fn page_codec_clean_roundtrip(places in records()) {
        // Encode into frames, decode every frame back: exact round-trip.
        let pages = encode_pages(&places);
        let mut restored = Vec::new();
        for (idx, page) in pages.iter().enumerate() {
            restored.extend(decode_page(page, idx as u32).expect("clean frame"));
        }
        prop_assert_eq!(restored, places);
    }

    #[test]
    fn page_codec_detects_any_corruption(
        places in records(),
        damage in corruptions(),
    ) {
        // Corrupt 0–3 random bytes of one frame with nonzero XOR masks.
        // Zero corruptions must decode cleanly; any actual corruption must
        // be detected — decode may NEVER return wrong records silently.
        prop_assume!(!places.is_empty());
        let pages = encode_pages(&places);
        let frame = &pages[0];
        let clean = decode_page(frame, 0).expect("clean frame");
        let mut bytes = frame.to_vec();
        let mut changed = false;
        for (pos, mask) in &damage {
            let at = pos.index(bytes.len());
            bytes[at] ^= mask;
            changed = true;
        }
        // XOR is self-inverse: two hits on the same byte with the same mask
        // cancel out, so recheck against the original bytes.
        if bytes == frame[..] {
            changed = false;
        }
        match decode_page(&bytes, 0) {
            Ok(records) => {
                prop_assert!(!changed, "corrupted frame decoded");
                prop_assert_eq!(records, clean);
            }
            Err(_) => prop_assert!(changed, "clean frame rejected"),
        }
    }

    #[test]
    fn page_codec_detects_any_truncation(places in records()) {
        // A torn write persists a strict prefix; every prefix must be
        // rejected as corrupt.
        prop_assume!(!places.is_empty());
        let pages = encode_pages(&places);
        let frame = &pages[0];
        for keep in 0..frame.len() {
            prop_assert!(decode_page(&frame[..keep], 0).is_err(), "prefix {keep}");
        }
    }

    #[test]
    fn snapshot_text_format_roundtrips(places in records()) {
        // The text format stores f64 coordinates via Display; round-trip
        // must be exact because Rust prints the shortest representation
        // that parses back to the same value.
        let mut buf = Vec::new();
        snapshot::write_places(&mut buf, &places).unwrap();
        let restored = snapshot::read_places(buf.as_slice()).unwrap();
        prop_assert_eq!(restored, places);
    }

    #[test]
    fn every_place_is_stored_in_the_cell_of_its_position(
        places in records(),
        g in 1u32..10,
    ) {
        let grid = Grid::unit_square(g);
        let store = CellLocalStore::build(grid.clone(), places);
        for cell in grid.cells() {
            for place in store.read_cell(cell).expect("mem read").iter() {
                prop_assert_eq!(grid.cell_of(place.pos), cell);
            }
        }
    }
}
