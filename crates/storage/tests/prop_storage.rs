//! Property-based tests of the storage substrate: the page codec and the
//! text snapshot format must round-trip arbitrary records, and both store
//! implementations must agree cell-by-cell.

use ctup_spatial::{Grid, Point, Rect};
use ctup_storage::{snapshot, CellLocalStore, PagedDiskStore, PlaceId, PlaceRecord, PlaceStore};
use proptest::prelude::*;

fn record(id: u32) -> impl Strategy<Value = PlaceRecord> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        0u32..10,
        prop::option::of((0.0f64..0.05, 0.0f64..0.05)),
    )
        .prop_map(move |(x, y, rp, extent)| {
            let pos = Point::new(x, y);
            match extent {
                None => PlaceRecord::point(PlaceId(id), pos, rp),
                Some((hw, hh)) => {
                    let lo = Point::new((x - hw).max(0.0), (y - hh).max(0.0));
                    let hi = Point::new((x + hw).min(1.0), (y + hh).min(1.0));
                    PlaceRecord::extended(PlaceId(id), pos, rp, Rect::new(lo, hi))
                }
            }
        })
}

fn records() -> impl Strategy<Value = Vec<PlaceRecord>> {
    prop::collection::vec(any::<u32>(), 0..150).prop_flat_map(|ids| {
        let strategies: Vec<_> = ids
            .into_iter()
            .enumerate()
            .map(|(i, _)| record(i as u32))
            .collect();
        strategies
    })
}

proptest! {
    // Miri runs the same properties with a token case count: enough to
    // exercise every code path under the interpreter without taking hours.
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 128 },
        ..ProptestConfig::default()
    })]

    #[test]
    fn paged_store_roundtrips_arbitrary_records(places in records(), g in 1u32..10) {
        let grid = Grid::unit_square(g);
        let mem = CellLocalStore::build(grid.clone(), places.clone());
        let disk = PagedDiskStore::build(grid.clone(), places.clone(), 0);
        prop_assert_eq!(mem.num_places(), places.len());
        prop_assert_eq!(disk.num_places(), places.len());
        let mut seen = 0;
        for cell in grid.cells() {
            let a = mem.read_cell(cell).into_owned();
            let b = disk.read_cell(cell).into_owned();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(
                mem.cell_extent_margin(cell),
                disk.cell_extent_margin(cell)
            );
            seen += a.len();
        }
        prop_assert_eq!(seen, places.len());
    }

    #[test]
    fn snapshot_text_format_roundtrips(places in records()) {
        // The text format stores f64 coordinates via Display; round-trip
        // must be exact because Rust prints the shortest representation
        // that parses back to the same value.
        let mut buf = Vec::new();
        snapshot::write_places(&mut buf, &places).unwrap();
        let restored = snapshot::read_places(buf.as_slice()).unwrap();
        prop_assert_eq!(restored, places);
    }

    #[test]
    fn every_place_is_stored_in_the_cell_of_its_position(
        places in records(),
        g in 1u32..10,
    ) {
        let grid = Grid::unit_square(g);
        let store = CellLocalStore::build(grid.clone(), places);
        for cell in grid.cells() {
            for place in store.read_cell(cell).iter() {
                prop_assert_eq!(grid.cell_of(place.pos), cell);
            }
        }
    }
}
