//! A bounded LRU cache over any [`PlaceStore`].
//!
//! The CTUP schemes re-read hot cells — the access loop keeps returning to
//! the cells with the smallest lower bounds — and on the paged store each
//! such read pays the full simulated-disk latency again. [`CachedStore`]
//! keeps recently read cells resident, bounded by a page budget (weights
//! come from [`PlaceStore::cell_pages`]), and serves repeats without
//! touching the lower level. Hits, misses and evictions are counted in the
//! wrapped store's [`StorageStats`]; hits do **not** count as
//! `cell_reads`/`pages_read`/`io_nanos`, so a cached run visibly reads
//! fewer bytes from the (simulated) disk.
//!
//! [`CachedStore::prefetch`] accepts a batch-scoped working-set hint: it
//! refreshes the recency of resident hinted cells (so the batch's own
//! admissions cannot evict them first) and re-reads missing hinted cells
//! into *spare* budget only when they appear on a bounded **ghost list**
//! of recently evicted entries — proven-hot cells whose re-warm replaces
//! a near-certain demand miss, rather than speculative reads of every
//! touched cell.
//!
//! The cache is coherent by construction for the repo's read-only lower
//! level; for stores whose records can change, [`CachedStore::invalidate_cell`]
//! drops the stale copy (write-invalidation) and
//! [`CachedStore::invalidate_all`] empties the cache (e.g. after restoring
//! a checkpoint over rewritten pages).

use crate::error::StorageError;
use crate::place::PlaceRecord;
use crate::stats::StorageStats;
use crate::store::PlaceStore;
use ctup_spatial::{CellId, Grid};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// How many hint passes an eviction stays re-warmable for. A victim of
/// the current or previous batch was resident-hot moments ago, so a hint
/// naming it again predicts a near-certain demand miss; anything older is
/// cold and re-reading it would be speculative disk traffic.
const GHOST_WINDOW: u64 = 1;

/// One resident cell: its decoded records, page weight, and the recency
/// tick under which it is indexed.
struct Entry {
    records: Vec<PlaceRecord>,
    pages: u64,
    tick: u64,
    /// Set when a hint pass touched this entry — re-warmed it from disk
    /// or refreshed it while resident — and no demand read has arrived
    /// since; the next demand hit counts as a prefetch hit and clears
    /// the flag.
    prefetched: bool,
}

/// Mutable cache state behind one mutex: the resident entries keyed by
/// cell index, a recency index (oldest tick first, popped for eviction),
/// and the running page total.
#[derive(Default)]
struct State {
    entries: HashMap<usize, Entry>,
    recency: BTreeMap<u64, usize>,
    used_pages: u64,
    next_tick: u64,
    /// Membership of the ghost list — cells recently pushed out by
    /// capacity pressure, keyed to the hint generation of their latest
    /// eviction. A prefetch only re-admits ghost-listed cells evicted
    /// within [`GHOST_WINDOW`] hint passes: they were resident-hot a
    /// batch ago, so the re-warm replaces a near-certain demand miss
    /// instead of adding speculative disk traffic.
    ghost: HashMap<usize, u64>,
    /// Eviction order of the ghost list (oldest first, generations are
    /// nondecreasing), trimmed as generations expire; entries whose
    /// generation no longer matches `ghost` are stale re-ghosts and are
    /// discarded when popped.
    ghost_queue: VecDeque<(u64, usize)>,
    /// Bumped at the start of every hint pass ([`CachedStore::prefetch`]);
    /// evictions are stamped with it so the ghost window is measured in
    /// batches, not wall time.
    hint_gen: u64,
    /// Bumped by every invalidation. The miss path reads the lower level
    /// *outside* the lock (so concurrent misses are not serialized behind
    /// the simulated disk); it captures this generation first and refuses
    /// to insert if an invalidation ran in between — otherwise a write
    /// racing the miss would leave the pre-write records resident, and a
    /// later read would see stale data after the write was acknowledged.
    invalidation_gen: u64,
}

impl State {
    /// Refreshes the recency of a resident entry and returns its records
    /// plus whether this is the first demand read of a prefetched entry.
    fn touch(&mut self, cell_idx: usize) -> Option<(Vec<PlaceRecord>, bool)> {
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.entries.get_mut(&cell_idx)?;
        self.recency.remove(&entry.tick);
        entry.tick = tick;
        self.recency.insert(tick, cell_idx);
        let first_after_prefetch = entry.prefetched;
        entry.prefetched = false;
        Some((entry.records.clone(), first_after_prefetch))
    }

    fn remove(&mut self, cell_idx: usize) {
        if let Some(entry) = self.entries.remove(&cell_idx) {
            self.recency.remove(&entry.tick);
            self.used_pages = self.used_pages.saturating_sub(entry.pages);
        }
    }

    /// Re-ticks the recency of a resident entry without serving its
    /// records and marks it hinted; returns whether the cell was
    /// resident. The prefetch hint path uses this to shield cells the
    /// next batch will read from mid-batch eviction.
    fn refresh(&mut self, cell_idx: usize) -> bool {
        let tick = self.next_tick;
        self.next_tick += 1;
        let Some(entry) = self.entries.get_mut(&cell_idx) else {
            return false;
        };
        self.recency.remove(&entry.tick);
        entry.tick = tick;
        self.recency.insert(tick, cell_idx);
        entry.prefetched = true;
        true
    }

    /// True when `cell_idx` was evicted recently enough for a hint to
    /// re-warm it.
    fn ghost_eligible(&self, cell_idx: usize) -> bool {
        self.ghost
            .get(&cell_idx)
            .is_some_and(|&gen| gen + GHOST_WINDOW >= self.hint_gen)
    }

    /// Remembers a capacity eviction on the ghost list under the current
    /// hint generation, and drops entries whose window expired.
    fn note_evicted(&mut self, cell_idx: usize) {
        let gen = self.hint_gen;
        self.ghost.insert(cell_idx, gen);
        self.ghost_queue.push_back((gen, cell_idx));
        while let Some(&(g, idx)) = self.ghost_queue.front() {
            if g + GHOST_WINDOW >= gen {
                break;
            }
            self.ghost_queue.pop_front();
            if self.ghost.get(&idx) == Some(&g) {
                self.ghost.remove(&idx);
            }
        }
    }

    /// Evicts least-recently-used entries until `used_pages <= capacity`.
    /// Victims are remembered on the ghost list. Returns how many entries
    /// were evicted.
    fn evict_to(&mut self, capacity: u64) -> u64 {
        let mut evicted = 0;
        while self.used_pages > capacity {
            let Some((&tick, &cell_idx)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&tick);
            if let Some(entry) = self.entries.remove(&cell_idx) {
                self.used_pages = self.used_pages.saturating_sub(entry.pages);
            }
            self.note_evicted(cell_idx);
            evicted += 1;
        }
        evicted
    }
}

/// A bounded LRU cell-read cache wrapping another [`PlaceStore`].
///
/// Capacity is expressed in pages; a capacity of zero disables the cache
/// entirely (every read passes straight through, and no cache counters
/// move). The wrapper shares the inner store's [`StorageStats`], so
/// existing reporting picks up cached runs without rewiring.
pub struct CachedStore {
    inner: Arc<dyn PlaceStore>,
    capacity_pages: u64,
    state: Mutex<State>,
}

impl std::fmt::Debug for CachedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedStore")
            .field("capacity_pages", &self.capacity_pages)
            .finish_non_exhaustive()
    }
}

impl CachedStore {
    /// Wraps `inner` with a cache holding at most `capacity_pages` pages of
    /// decoded cells. Zero disables caching.
    pub fn new(inner: Arc<dyn PlaceStore>, capacity_pages: u64) -> Self {
        CachedStore {
            inner,
            capacity_pages,
            state: Mutex::new(State::default()),
        }
    }

    /// The configured capacity in pages (zero means disabled).
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        self.lock_state().used_pages
    }

    /// Drops the cached copy of `cell`, if any — the write-invalidation
    /// hook: call after the lower-level records of `cell` change.
    pub fn invalidate_cell(&self, cell: CellId) {
        let mut state = self.lock_state();
        state.invalidation_gen += 1;
        state.remove(cell.index());
    }

    /// Empties the cache (e.g. after a bulk rewrite of the lower level).
    pub fn invalidate_all(&self) {
        let mut state = self.lock_state();
        state.invalidation_gen += 1;
        state.entries.clear();
        state.recency.clear();
        state.used_pages = 0;
    }

    /// A batch-scoped working-set hint: the caller names the cells the
    /// next batch of demand reads may touch. Resident hinted cells get
    /// their LRU recency refreshed — zero I/O — so mid-batch admissions
    /// do not evict a cell the batch is about to read. Hinted cells that
    /// are *missing* are re-read and admitted only when they sit on the
    /// ghost list of entries evicted within the last [`GHOST_WINDOW`]
    /// hint passes: cells that were resident-hot a batch ago, where the
    /// re-warm replaces a near-certain demand miss. Every other missing
    /// hint is **not** read — the engine demand-reads only the touched
    /// cells whose lower bounds actually fall to the top-k threshold, so
    /// speculatively reading every hint would inflate disk traffic well
    /// past the demand stream it is meant to hide.
    ///
    /// Re-warm reads happen from the lower level *outside* the lock and
    /// are admitted under a **single** lock acquisition, so a batch
    /// warm-up does not serialize demand readers behind the simulated
    /// disk. Best effort: read errors skip the cell (the demand read will
    /// surface them), and a racing invalidation drops the whole
    /// admission, exactly like the demand-miss path.
    ///
    /// The first demand hit on each hinted entry (re-warmed or refreshed)
    /// is counted in `cache_prefetch_hits` — how much of the hit stream
    /// the hint pass covered. Re-warm reads themselves are *not* counted
    /// as cache misses (they are not demand reads), so the hit ratio
    /// keeps measuring what the engine actually asked for.
    ///
    /// A hint is weaker evidence than a demand read, so re-warms only
    /// fill **spare** budget (freed by invalidation, or never used) and
    /// never evict a demanded resident — otherwise each re-warm would
    /// mint the next batch's ghosts and the hint pass would pump the
    /// cache in circles.
    pub fn prefetch(&self, cells: &[CellId]) {
        if self.capacity_pages == 0 || cells.is_empty() {
            return;
        }
        let (mut missing, spare, gen_at_scan) = {
            let mut state = self.lock_state();
            state.hint_gen += 1;
            let mut missing: Vec<CellId> = Vec::new();
            for &c in cells {
                if !state.refresh(c.index()) && state.ghost_eligible(c.index()) {
                    missing.push(c);
                }
            }
            let spare = self.capacity_pages.saturating_sub(state.used_pages);
            (missing, spare, state.invalidation_gen)
        };
        if spare == 0 {
            return;
        }
        missing.sort_unstable();
        missing.dedup();
        let mut budget = spare;
        let mut loaded: Vec<(CellId, Vec<PlaceRecord>, u64)> = Vec::with_capacity(missing.len());
        for cell in missing {
            let pages = self.inner.cell_pages(cell);
            if pages > budget {
                continue;
            }
            if let Ok(records) = self.inner.read_cell(cell) {
                budget -= pages;
                loaded.push((cell, records.into_owned(), pages));
            }
        }
        if loaded.is_empty() {
            return;
        }
        let mut state = self.lock_state();
        if state.invalidation_gen != gen_at_scan {
            // A write raced the unlocked reads: the records may predate
            // it, so admit nothing rather than resurrect stale data.
            return;
        }
        for (cell, records, pages) in loaded {
            if state.entries.contains_key(&cell.index()) {
                continue; // a demand read admitted it first
            }
            if state.used_pages + pages > self.capacity_pages {
                continue; // a concurrent demand miss claimed the spare room
            }
            state.ghost.remove(&cell.index());
            let tick = state.next_tick;
            state.next_tick += 1;
            state.recency.insert(tick, cell.index());
            state.entries.insert(
                cell.index(),
                Entry {
                    records,
                    pages,
                    tick,
                    prefetched: true,
                },
            );
            state.used_pages += pages;
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        // A poisoned cache mutex only means another thread panicked between
        // pure map operations; the state is still structurally sound, so
        // recover it rather than propagate the panic.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl PlaceStore for CachedStore {
    fn grid(&self) -> &Grid {
        self.inner.grid()
    }

    fn num_places(&self) -> usize {
        self.inner.num_places()
    }

    fn layout(&self) -> ctup_spatial::CellLayout {
        self.inner.layout()
    }

    fn prefetch(&self, cells: &[CellId]) {
        CachedStore::prefetch(self, cells);
    }

    fn wants_prefetch(&self) -> bool {
        self.capacity_pages > 0
    }

    fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
        if self.capacity_pages == 0 {
            return self.inner.read_cell(cell);
        }
        let stats = self.inner.stats();
        let gen_at_miss;
        {
            let mut state = self.lock_state();
            if let Some((records, first_after_prefetch)) = state.touch(cell.index()) {
                stats.record_cache_hit();
                if first_after_prefetch {
                    stats.record_cache_prefetch_hit();
                }
                return Ok(Cow::Owned(records));
            }
            gen_at_miss = state.invalidation_gen;
        }
        // Miss: read outside the lock so concurrent readers of other cells
        // are not serialized behind the (simulated) disk latency.
        stats.record_cache_miss();
        let records = self.inner.read_cell(cell)?.into_owned();
        let pages = self.inner.cell_pages(cell);
        if pages <= self.capacity_pages {
            let mut state = self.lock_state();
            if state.invalidation_gen != gen_at_miss {
                // An invalidation raced this unlocked read: the records may
                // predate the write that triggered it, so serve them to this
                // caller (it started before the write) but do not cache them.
                return Ok(Cow::Owned(records));
            }
            state.remove(cell.index());
            state.ghost.remove(&cell.index());
            let tick = state.next_tick;
            state.next_tick += 1;
            state.recency.insert(tick, cell.index());
            state.entries.insert(
                cell.index(),
                Entry {
                    records: records.clone(),
                    pages,
                    tick,
                    prefetched: false,
                },
            );
            state.used_pages += pages;
            let evicted = state.evict_to(self.capacity_pages);
            drop(state);
            for _ in 0..evicted {
                stats.record_cache_eviction();
            }
        }
        Ok(Cow::Owned(records))
    }

    fn cell_extent_margin(&self, cell: CellId) -> f64 {
        self.inner.cell_extent_margin(cell)
    }

    fn cell_pages(&self, cell: CellId) -> u64 {
        self.inner.cell_pages(cell)
    }

    fn stats(&self) -> &StorageStats {
        self.inner.stats()
    }

    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
        self.inner.for_each_place(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::CellLocalStore;
    use crate::place::PlaceId;
    use ctup_spatial::Point;

    fn store_with_grid(n: u32) -> Arc<dyn PlaceStore> {
        let grid = Grid::unit_square(n);
        let step = 1.0 / f64::from(n);
        let mut places = Vec::new();
        let mut id = 0;
        for gx in 0..n {
            for gy in 0..n {
                let x = (f64::from(gx) + 0.5) * step;
                let y = (f64::from(gy) + 0.5) * step;
                places.push(PlaceRecord::point(PlaceId(id), Point::new(x, y), 1));
                id += 1;
            }
        }
        Arc::new(CellLocalStore::build(grid, places))
    }

    fn cell(store: &dyn PlaceStore, x: u32, y: u32) -> CellId {
        store.grid().cell_at(x, y)
    }

    #[test]
    fn repeat_reads_hit_and_skip_lower_level() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 4);
        let c = cell(&cached, 0, 0);
        let first = cached.read_cell(c).expect("read").into_owned();
        let again = cached.read_cell(c).expect("read").into_owned();
        assert_eq!(first, again);
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 1);
        // Only the miss touched the lower level.
        assert_eq!(snap.cell_reads, 1);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 0);
        let c = cell(&cached, 1, 1);
        cached.read_cell(c).expect("read");
        cached.read_cell(c).expect("read");
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(snap.cell_reads, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let inner = store_with_grid(2);
        // Every cell weighs one page; room for two.
        let cached = CachedStore::new(inner, 2);
        let a = cell(&cached, 0, 0);
        let b = cell(&cached, 1, 0);
        let c = cell(&cached, 0, 1);
        cached.read_cell(a).expect("read"); // resident: a
        cached.read_cell(b).expect("read"); // resident: a b
        cached.read_cell(a).expect("read"); // hit, a now most recent
        cached.read_cell(c).expect("read"); // evicts b (LRU); resident: a c
        cached.read_cell(a).expect("read"); // still a hit
        cached.read_cell(b).expect("read"); // miss again; evicts c (LRU)
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 4);
        assert_eq!(snap.cache_evictions, 2);
        assert_eq!(cached.resident_pages(), 2);
    }

    #[test]
    fn invalidation_forces_reread() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 4);
        let a = cell(&cached, 0, 0);
        let b = cell(&cached, 1, 0);
        cached.read_cell(a).expect("read");
        cached.read_cell(b).expect("read");
        cached.invalidate_cell(a);
        assert_eq!(cached.resident_pages(), 1);
        cached.read_cell(a).expect("read"); // miss after invalidation
        cached.read_cell(b).expect("read"); // untouched entry still hits
        cached.invalidate_all();
        assert_eq!(cached.resident_pages(), 0);
        cached.read_cell(b).expect("read"); // miss after full flush
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cache_misses, 4);
        assert_eq!(snap.cache_hits, 1);
    }

    #[test]
    fn invalidation_racing_a_miss_is_not_overwritten_by_the_stale_read() {
        use std::sync::Weak;
        // An inner store that fires a hook in the middle of `read_cell` —
        // exactly the window where the cache has released its lock — and
        // uses it to run write-invalidation against the wrapping cache.
        struct HookStore {
            inner: Arc<dyn PlaceStore>,
            target: Mutex<Option<Weak<CachedStore>>>,
        }
        impl PlaceStore for HookStore {
            fn grid(&self) -> &Grid {
                self.inner.grid()
            }
            fn num_places(&self) -> usize {
                self.inner.num_places()
            }
            fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
                let target = self.target.lock().expect("hook lock");
                if let Some(cached) = target.as_ref().and_then(Weak::upgrade) {
                    // The lower level changed while this read was in flight.
                    cached.invalidate_cell(cell);
                }
                self.inner.read_cell(cell)
            }
            fn cell_extent_margin(&self, cell: CellId) -> f64 {
                self.inner.cell_extent_margin(cell)
            }
            fn cell_pages(&self, cell: CellId) -> u64 {
                self.inner.cell_pages(cell)
            }
            fn stats(&self) -> &StorageStats {
                self.inner.stats()
            }
            fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
                self.inner.for_each_place(f)
            }
        }

        let hook = Arc::new(HookStore {
            inner: store_with_grid(2),
            target: Mutex::new(None),
        });
        let cached = Arc::new(CachedStore::new(hook.clone(), 4));
        *hook.target.lock().expect("hook lock") = Some(Arc::downgrade(&cached));

        let c = cell(cached.as_ref(), 0, 0);
        cached.read_cell(c).expect("read");
        // The records read before the invalidation must not be resident:
        // caching them would serve pre-write data after the write.
        assert_eq!(cached.resident_pages(), 0);
        cached.read_cell(c).expect("read");
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_hits, 0);
    }

    #[test]
    fn prefetch_rewarms_recent_evictions_and_counts_first_demand_hits() {
        let inner = store_with_grid(2);
        // Every cell weighs one page; room for two.
        let cached = CachedStore::new(inner, 2);
        let a = cell(&cached, 0, 0);
        let b = cell(&cached, 1, 0);
        let c = cell(&cached, 0, 1);
        let d = cell(&cached, 1, 1);
        assert!(cached.wants_prefetch());
        cached.read_cell(a).expect("read"); // resident: a
        cached.read_cell(b).expect("read"); // resident: a b
        cached.read_cell(c).expect("read"); // evicts a; a -> ghost
        cached.invalidate_cell(b); // frees one page of spare budget
        cached.prefetch(&[a, c, a]); // c refreshed; a re-warmed (duplicates coalesce)
        let snap = cached.stats().snapshot();
        // One re-warm read of `a`; not counted as a demand miss.
        assert_eq!(snap.cell_reads, 4);
        assert_eq!(snap.cache_misses, 3);
        assert_eq!(snap.cache_hits, 0);

        cached.read_cell(a).expect("read");
        cached.read_cell(a).expect("read");
        cached.read_cell(c).expect("read");
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cell_reads, 4, "demand reads served from cache");
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 3);
        // One prefetch hit per hinted entry (the re-warmed `a` and the
        // refreshed `c`), not one per demand hit.
        assert_eq!(snap.cache_prefetch_hits, 2);

        // A cold hinted cell — never resident, never evicted — is not read.
        cached.prefetch(&[d]);
        assert_eq!(cached.stats().snapshot().cell_reads, 4);
    }

    #[test]
    fn prefetch_does_not_read_cold_cells() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 4);
        cached.prefetch(&[cell(&cached, 0, 0), cell(&cached, 1, 0)]);
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cell_reads, 0);
        assert_eq!(cached.resident_pages(), 0);
    }

    #[test]
    fn prefetch_hint_protects_imminent_reads_from_eviction() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 2);
        let a = cell(&cached, 0, 0);
        let b = cell(&cached, 1, 0);
        let c = cell(&cached, 0, 1);
        cached.read_cell(a).expect("read"); // resident: a b — a is the
        cached.read_cell(b).expect("read"); // nominal LRU victim
        cached.prefetch(&[a]); // hint: the batch will read a
        cached.read_cell(c).expect("read"); // evicts b, not the hinted a
        cached.read_cell(a).expect("read"); // still a hit
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 3);
        // The hit landed on a hinted (refreshed) entry: the hint pass
        // covered it, so it counts as a prefetch hit.
        assert_eq!(snap.cache_prefetch_hits, 1);
    }

    #[test]
    fn prefetch_with_zero_capacity_is_a_noop() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 0);
        assert!(!cached.wants_prefetch());
        cached.prefetch(&[cell(&cached, 0, 0)]);
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cell_reads, 0);
        assert_eq!(cached.resident_pages(), 0);
    }

    #[test]
    fn prefetch_respects_the_page_budget() {
        let inner = store_with_grid(2);
        let cached = CachedStore::new(inner, 2);
        let cells: Vec<CellId> = (0..2)
            .flat_map(|x| (0..2).map(move |y| (x, y)))
            .map(|(x, y)| cell(&cached, x, y))
            .collect();
        // Walk all four cells through the two-page cache: the first two
        // land on the ghost list.
        for &c in &cells {
            cached.read_cell(c).expect("read");
        }
        assert_eq!(cached.stats().snapshot().cache_evictions, 2);
        // Both ghosts are hinted, but there is no spare budget: a hint
        // must not displace the demanded residents, so nothing is read.
        cached.prefetch(&cells);
        assert_eq!(cached.resident_pages(), 2);
        let snap = cached.stats().snapshot();
        assert_eq!(snap.cell_reads, 4, "no re-warm reads without spare room");
        assert_eq!(snap.cache_evictions, 2);
    }

    #[test]
    fn prefetch_racing_an_invalidation_admits_nothing() {
        use std::sync::Weak;
        struct HookStore {
            inner: Arc<dyn PlaceStore>,
            target: Mutex<Option<Weak<CachedStore>>>,
        }
        impl PlaceStore for HookStore {
            fn grid(&self) -> &Grid {
                self.inner.grid()
            }
            fn num_places(&self) -> usize {
                self.inner.num_places()
            }
            fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
                let target = self.target.lock().expect("hook lock");
                if let Some(cached) = target.as_ref().and_then(Weak::upgrade) {
                    cached.invalidate_cell(cell);
                }
                self.inner.read_cell(cell)
            }
            fn cell_extent_margin(&self, cell: CellId) -> f64 {
                self.inner.cell_extent_margin(cell)
            }
            fn cell_pages(&self, cell: CellId) -> u64 {
                self.inner.cell_pages(cell)
            }
            fn stats(&self) -> &StorageStats {
                self.inner.stats()
            }
            fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
                self.inner.for_each_place(f)
            }
        }

        let hook = Arc::new(HookStore {
            inner: store_with_grid(2),
            target: Mutex::new(None),
        });
        // One page of budget: reading a then b evicts a onto the ghost
        // list, then invalidating b frees spare room, making a eligible
        // for a prefetch re-warm. The hook stays disarmed until then.
        let cached = Arc::new(CachedStore::new(hook.clone(), 1));
        let a = cell(cached.as_ref(), 0, 0);
        let b = cell(cached.as_ref(), 1, 0);
        cached.read_cell(a).expect("read");
        cached.read_cell(b).expect("read");
        cached.invalidate_cell(b);
        assert_eq!(cached.resident_pages(), 0);
        *hook.target.lock().expect("hook lock") = Some(Arc::downgrade(&cached));
        cached.prefetch(&[a]);
        // The invalidation fired mid-prefetch: nothing may be admitted.
        assert_eq!(cached.resident_pages(), 0);
        assert_eq!(cached.stats().snapshot().cache_prefetch_hits, 0);
        // And the ghost read really happened, so the race window was real.
        assert_eq!(cached.stats().snapshot().cell_reads, 3);
    }

    #[test]
    fn oversized_cells_pass_through_uncached() {
        struct Fat(Arc<dyn PlaceStore>);
        impl PlaceStore for Fat {
            fn grid(&self) -> &Grid {
                self.0.grid()
            }
            fn num_places(&self) -> usize {
                self.0.num_places()
            }
            fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
                self.0.read_cell(cell)
            }
            fn cell_extent_margin(&self, cell: CellId) -> f64 {
                self.0.cell_extent_margin(cell)
            }
            fn cell_pages(&self, _cell: CellId) -> u64 {
                10
            }
            fn stats(&self) -> &StorageStats {
                self.0.stats()
            }
            fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
                self.0.for_each_place(f)
            }
        }
        let cached = CachedStore::new(Arc::new(Fat(store_with_grid(2))), 5);
        let c = cached.grid().cell_at(0, 0);
        cached.read_cell(c).expect("read");
        cached.read_cell(c).expect("read");
        let snap = cached.stats().snapshot();
        // Both reads are misses: a 10-page cell never fits a 5-page budget.
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_evictions, 0);
        assert_eq!(cached.resident_pages(), 0);
    }
}
