//! Two-level storage substrate for the CTUP reproduction.
//!
//! The paper separates the infrequently-updated *lower level* (all places,
//! partitioned by grid cell; conceptually on disk) from the continuously
//! changing *higher level* (units, cell metadata, a small fraction of
//! places; in memory). This crate provides the lower level behind the
//! [`PlaceStore`] trait with full access accounting:
//!
//! * [`CellLocalStore`] — memory-resident, for the "places fit in memory"
//!   regime (the paper's experimental setting);
//! * [`PagedDiskStore`] — page-oriented with a binary codec and optional
//!   simulated per-page latency, for the on-disk regime;
//! * [`snapshot`] — a tiny text format to persist generated data sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diskstore;
pub mod memstore;
pub mod place;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use diskstore::{PagedDiskStore, PAGE_SIZE};
pub use memstore::CellLocalStore;
pub use place::{PlaceId, PlaceRecord};
pub use stats::{StorageStats, StorageStatsSnapshot};
pub use store::PlaceStore;
