//! Two-level storage substrate for the CTUP reproduction.
//!
//! The paper separates the infrequently-updated *lower level* (all places,
//! partitioned by grid cell; conceptually on disk) from the continuously
//! changing *higher level* (units, cell metadata, a small fraction of
//! places; in memory). This crate provides the lower level behind the
//! [`PlaceStore`] trait with full access accounting:
//!
//! * [`CellLocalStore`] — memory-resident, for the "places fit in memory"
//!   regime (the paper's experimental setting);
//! * [`PagedDiskStore`] — page-oriented with a checksummed binary codec
//!   and optional simulated per-page latency, for the on-disk regime;
//! * [`FaultDisk`] — a seeded fault injector over the paged store
//!   (transient read errors, torn writes, bit flips, latency spikes) with
//!   a retry-with-backoff [`RetryPolicy`];
//! * [`CachedStore`] — a bounded LRU cell-read cache over any store, with
//!   hit/miss/eviction accounting and write-invalidation hooks;
//! * [`snapshot`] — a tiny text format to persist generated data sets.
//!
//! Reads are fallible: page frames carry a CRC32, so torn writes and bit
//! rot surface as typed [`StorageError`]s instead of silently wrong
//! records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checksum;
pub mod diskstore;
pub mod error;
pub mod fault;
pub mod memstore;
pub mod place;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use cache::CachedStore;
pub use checksum::crc32;
pub use diskstore::{decode_page, encode_pages, PagedDiskStore, FRAME_HEADER, PAGE_SIZE};
pub use error::{CorruptKind, RecordError, StorageError};
pub use fault::{DiskFaultPlan, FaultDisk, RetryPolicy};
pub use memstore::CellLocalStore;
pub use place::{PlaceId, PlaceRecord};
pub use stats::{StorageStats, StorageStatsSnapshot};
pub use store::PlaceStore;
