//! Place records — the protected objects stored at the lower level.

use ctup_spatial::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of a place, dense in `0..|P|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaceId(pub u32);

impl PlaceId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A place that needs protection: a bank, residential building, mall, …
///
/// The paper models places as points; the "places with extent" future-work
/// extension is supported through the optional `extent` rectangle (which
/// must contain `pos`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceRecord {
    /// Identifier, unique within a data set.
    pub id: PlaceId,
    /// Representative location (for extended places, a point inside the
    /// extent, typically its center).
    pub pos: Point,
    /// Required protection `RP(p)`: how many units must be protecting the
    /// place for it to be considered safe.
    pub rp: u32,
    /// Spatial extent for the extended-places model; `None` for point
    /// places.
    pub extent: Option<Rect>,
}

impl PlaceRecord {
    /// A point place.
    pub fn point(id: PlaceId, pos: Point, rp: u32) -> Self {
        PlaceRecord {
            id,
            pos,
            rp,
            extent: None,
        }
    }

    /// An extended place covering `extent`.
    ///
    /// # Panics
    /// Panics in debug builds if the extent does not contain `pos`.
    pub fn extended(id: PlaceId, pos: Point, rp: u32, extent: Rect) -> Self {
        debug_assert!(extent.contains_point(pos), "extent must contain pos");
        PlaceRecord {
            id,
            pos,
            rp,
            extent: Some(extent),
        }
    }

    /// Distance from `pos` to the farthest corner of the extent, zero for
    /// point places. The whole extent lies within this radius of `pos`, so
    /// cell metadata can aggregate it to keep the Full-containment
    /// classification sound for extended places.
    pub fn extent_margin(&self) -> f64 {
        match &self.extent {
            None => 0.0,
            Some(r) => r.max_dist2(self.pos).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_place_has_zero_margin() {
        let p = PlaceRecord::point(PlaceId(3), Point::new(0.5, 0.5), 2);
        assert_eq!(p.extent_margin(), 0.0);
        assert_eq!(p.id.index(), 3);
    }

    #[test]
    fn extended_place_margin_reaches_far_corner() {
        let r = Rect::from_coords(0.0, 0.0, 0.2, 0.1);
        // Centered: margin is the half-diagonal.
        let p = PlaceRecord::extended(PlaceId(0), Point::new(0.1, 0.05), 1, r);
        let half_diag = (0.1f64 * 0.1 + 0.05 * 0.05).sqrt();
        assert!((p.extent_margin() - half_diag).abs() < 1e-12);
        // Off-center position: margin grows to the farthest corner.
        let q = PlaceRecord::extended(PlaceId(1), Point::new(0.0, 0.0), 1, r);
        let diag = (0.2f64 * 0.2 + 0.1 * 0.1).sqrt();
        assert!((q.extent_margin() - diag).abs() < 1e-12);
    }
}
