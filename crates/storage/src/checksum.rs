//! CRC32 (IEEE 802.3) checksums for page frames and durable snapshots.
//!
//! Hand-rolled so the storage crate stays dependency-light; the table is
//! built at compile time. CRC32 detects every single-bit error and every
//! burst error up to 32 bits — exactly the corruption classes a torn page
//! write or a flipped cell produces.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (IEEE polynomial, reflected, init/xorout `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in data {
        c = CRC32_TABLE[((c ^ byte as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        let mut buf = data.to_vec();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), clean, "flip at {byte}:{bit} undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"0123456789abcdef";
        let clean = crc32(data);
        for keep in 0..data.len() {
            assert_ne!(
                crc32(&data[..keep]),
                clean,
                "truncation to {keep} undetected"
            );
        }
    }
}
