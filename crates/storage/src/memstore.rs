//! Memory-resident lower level.
//!
//! When the place set fits in memory, the paper still keeps the two-level
//! split: one piece of memory "simulates disk" and is only consulted when a
//! cell must be accessed. [`CellLocalStore`] is that piece.

use crate::error::StorageError;
use crate::place::PlaceRecord;
use crate::stats::StorageStats;
use crate::store::{partition_by_cell, PlaceStore};
use ctup_spatial::{CellId, Grid};
use std::borrow::Cow;

/// A cell-partitioned, memory-resident place store.
#[derive(Debug)]
pub struct CellLocalStore {
    grid: Grid,
    cells: Vec<Vec<PlaceRecord>>,
    margins: Vec<f64>,
    num_places: usize,
    stats: StorageStats,
}

impl CellLocalStore {
    /// Builds the store by partitioning `places` over `grid`.
    pub fn build(grid: Grid, places: Vec<PlaceRecord>) -> Self {
        let num_places = places.len();
        let (cells, margins) = partition_by_cell(&grid, places);
        CellLocalStore {
            grid,
            cells,
            margins,
            num_places,
            stats: StorageStats::new(),
        }
    }

    /// Number of places in `cell` without counting an access.
    pub fn cell_len(&self, cell: CellId) -> usize {
        self.cells[cell.index()].len()
    }
}

impl PlaceStore for CellLocalStore {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn num_places(&self) -> usize {
        self.num_places
    }

    fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
        let records = &self.cells[cell.index()];
        self.stats.record_cell_read(records.len() as u64, 1, 0);
        Ok(Cow::Borrowed(records.as_slice()))
    }

    fn cell_extent_margin(&self, cell: CellId) -> f64 {
        self.margins[cell.index()]
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }

    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
        for cell in &self.cells {
            for place in cell {
                f(place);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlaceId;
    use ctup_spatial::Point;

    fn store() -> CellLocalStore {
        let places = (0..100)
            .map(|i| {
                let x = (i % 10) as f64 / 10.0 + 0.05;
                let y = (i / 10) as f64 / 10.0 + 0.05;
                PlaceRecord::point(PlaceId(i), Point::new(x, y), 1 + i % 3)
            })
            .collect();
        CellLocalStore::build(Grid::unit_square(10), places)
    }

    #[test]
    fn build_partitions_one_place_per_cell() {
        let s = store();
        assert_eq!(s.num_places(), 100);
        for cell in s.grid().cells().collect::<Vec<_>>() {
            assert_eq!(s.cell_len(cell), 1);
        }
    }

    #[test]
    fn read_cell_counts_accesses() {
        let s = store();
        let c = s.grid().cell_of(Point::new(0.55, 0.55));
        let records = s.read_cell(c).expect("read").into_owned();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].pos, Point::new(0.55, 0.55));
        let snap = s.stats().snapshot();
        assert_eq!(snap.cell_reads, 1);
        assert_eq!(snap.records_read, 1);
        assert_eq!(snap.pages_read, 1);
    }

    #[test]
    fn for_each_place_does_not_count() {
        let s = store();
        let mut n = 0;
        s.for_each_place(&mut |_| n += 1).expect("scan");
        assert_eq!(n, 100);
        assert_eq!(s.stats().snapshot().cell_reads, 0);
    }

    #[test]
    fn empty_cells_read_as_empty() {
        let s = CellLocalStore::build(Grid::unit_square(4), vec![]);
        for cell in s.grid().cells().collect::<Vec<_>>() {
            assert!(s.read_cell(cell).expect("read").is_empty());
        }
        assert_eq!(s.stats().snapshot().cell_reads, 16);
    }
}
