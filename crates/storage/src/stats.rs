//! I/O accounting for the lower storage level.
//!
//! The CTUP schemes are judged by how rarely they touch the lower level, so
//! every store counts its accesses — and, since the disk may now fail, how
//! often reads had to be retried, abandoned, or rejected as corrupt.
//! Counters use atomics because reads go through `&self`.
//!
//! This module is on the lint L008 counters allowlist: every atomic is a
//! monotone `fetch_add` counter whose value is only ever rendered in
//! reports or compared across a whole run at quiescence, so `Relaxed`
//! suffices — no other memory is published through these cells.

use ctup_obs::{AtomicHistogram, LogHistogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters owned by a store. Reads are `&self`, hence atomics.
#[derive(Debug, Default)]
pub struct StorageStats {
    cell_reads: AtomicU64,
    records_read: AtomicU64,
    pages_read: AtomicU64,
    io_nanos: AtomicU64,
    read_retries: AtomicU64,
    read_giveups: AtomicU64,
    corrupt_pages: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_prefetch_hits: AtomicU64,
    read_latency: AtomicHistogram,
}

impl StorageStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one lower-level cell access delivering `records` records
    /// from `pages` pages with `io_nanos` of (simulated) I/O time.
    pub fn record_cell_read(&self, records: u64, pages: u64, io_nanos: u64) {
        self.cell_reads.fetch_add(1, Ordering::Relaxed);
        self.records_read.fetch_add(records, Ordering::Relaxed);
        self.pages_read.fetch_add(pages, Ordering::Relaxed);
        self.io_nanos.fetch_add(io_nanos, Ordering::Relaxed);
        self.read_latency.record(io_nanos);
    }

    /// Distribution of per-cell-read (simulated) I/O time — the histogram
    /// behind the `io_nanos` sum. Lives outside [`StorageStatsSnapshot`]
    /// (which stays a flat `Copy` struct) and is reported through the
    /// unified observability snapshot instead.
    pub fn read_latency(&self) -> LogHistogram {
        self.read_latency.snapshot()
    }

    /// Records one retried read attempt (the previous attempt failed and
    /// the retry policy allowed another).
    pub fn record_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one read abandoned after exhausting the retry budget.
    pub fn record_giveup(&self) {
        self.read_giveups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one page rejected by frame validation (torn write, bit rot).
    pub fn record_corrupt_page(&self) {
        self.corrupt_pages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cell read served from the cell-read cache (no lower-level
    /// I/O performed, so `cell_reads` et al. are untouched).
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cell read that missed the cache and went to the lower
    /// level.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cached cell evicted to stay within the page budget.
    pub fn record_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cache hit served by an entry a prefetch pass admitted
    /// (counted once per prefetched entry — the first demand read that
    /// would otherwise have paid the lower-level cost).
    pub fn record_cache_prefetch_hit(&self) {
        self.cache_prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Current values as a plain snapshot.
    pub fn snapshot(&self) -> StorageStatsSnapshot {
        StorageStatsSnapshot {
            cell_reads: self.cell_reads.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            io_nanos: self.io_nanos.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            read_giveups: self.read_giveups.load(Ordering::Relaxed),
            corrupt_pages: self.corrupt_pages.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_prefetch_hits: self.cache_prefetch_hits.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.cell_reads.store(0, Ordering::Relaxed);
        self.records_read.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
        self.io_nanos.store(0, Ordering::Relaxed);
        self.read_retries.store(0, Ordering::Relaxed);
        self.read_giveups.store(0, Ordering::Relaxed);
        self.corrupt_pages.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.cache_prefetch_hits.store(0, Ordering::Relaxed);
        self.read_latency.reset();
    }
}

/// A point-in-time copy of [`StorageStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStatsSnapshot {
    /// Number of lower-level cell accesses.
    pub cell_reads: u64,
    /// Total place records delivered by those accesses.
    pub records_read: u64,
    /// Total pages fetched (equals `cell_reads` for unpaged stores).
    pub pages_read: u64,
    /// Total simulated I/O time in nanoseconds.
    pub io_nanos: u64,
    /// Read attempts repeated after a transient failure.
    pub read_retries: u64,
    /// Reads abandoned after the whole retry budget failed.
    pub read_giveups: u64,
    /// Pages rejected by checksum/frame validation.
    pub corrupt_pages: u64,
    /// Cell reads served from the cell-read cache (no lower-level I/O).
    pub cache_hits: u64,
    /// Cell reads that missed the cache and paid the lower-level cost.
    pub cache_misses: u64,
    /// Cached cells evicted to stay within the cache's page budget.
    pub cache_evictions: u64,
    /// Cache hits served by entries a prefetch pass admitted (first demand
    /// read per prefetched entry).
    pub cache_prefetch_hits: u64,
}

impl StorageStatsSnapshot {
    /// Component-wise difference since `earlier`; saturates at zero.
    pub fn since(&self, earlier: &StorageStatsSnapshot) -> StorageStatsSnapshot {
        StorageStatsSnapshot {
            cell_reads: self.cell_reads.saturating_sub(earlier.cell_reads),
            records_read: self.records_read.saturating_sub(earlier.records_read),
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            io_nanos: self.io_nanos.saturating_sub(earlier.io_nanos),
            read_retries: self.read_retries.saturating_sub(earlier.read_retries),
            read_giveups: self.read_giveups.saturating_sub(earlier.read_giveups),
            corrupt_pages: self.corrupt_pages.saturating_sub(earlier.corrupt_pages),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            cache_prefetch_hits: self
                .cache_prefetch_hits
                .saturating_sub(earlier.cache_prefetch_hits),
        }
    }

    /// Fraction of cache-consulting reads that hit, or zero when the cache
    /// was never consulted (disabled or no reads yet).
    pub fn cache_hit_ratio(&self) -> f64 {
        let consulted = self.cache_hits + self.cache_misses;
        if consulted == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / consulted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = StorageStats::new();
        s.record_cell_read(10, 2, 100);
        s.record_cell_read(5, 1, 50);
        s.record_retry();
        s.record_retry();
        s.record_giveup();
        s.record_corrupt_page();
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_cache_miss();
        s.record_cache_eviction();
        s.record_cache_prefetch_hit();
        let snap = s.snapshot();
        assert_eq!(snap.cell_reads, 2);
        assert_eq!(snap.records_read, 15);
        assert_eq!(snap.pages_read, 3);
        assert_eq!(snap.io_nanos, 150);
        assert_eq!(snap.read_retries, 2);
        assert_eq!(snap.read_giveups, 1);
        assert_eq!(snap.corrupt_pages, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_evictions, 1);
        assert_eq!(snap.cache_prefetch_hits, 1);
        s.reset();
        assert_eq!(s.snapshot(), StorageStatsSnapshot::default());
    }

    #[test]
    fn read_latency_histogram_tracks_io_nanos() {
        let s = StorageStats::new();
        s.record_cell_read(10, 2, 100);
        s.record_cell_read(5, 1, 900);
        let h = s.read_latency();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 900);
        assert_eq!(h.sum(), s.snapshot().io_nanos);
        s.reset();
        assert!(s.read_latency().is_empty());
    }

    #[test]
    fn since_computes_deltas() {
        let s = StorageStats::new();
        s.record_cell_read(10, 2, 100);
        s.record_retry();
        let a = s.snapshot();
        s.record_cell_read(1, 1, 1);
        s.record_giveup();
        s.record_cache_hit();
        s.record_cache_eviction();
        s.record_cache_prefetch_hit();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.cell_reads, 1);
        assert_eq!(d.records_read, 1);
        assert_eq!(d.read_retries, 0);
        assert_eq!(d.read_giveups, 1);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.cache_evictions, 1);
        assert_eq!(d.cache_prefetch_hits, 1);
        // Saturation instead of wrap on inverted order.
        assert_eq!(a.since(&b).cell_reads, 0);
    }

    #[test]
    fn cache_hit_ratio_handles_zero_and_mixed() {
        assert!(StorageStatsSnapshot::default().cache_hit_ratio().abs() < 1e-12);
        let snap = StorageStatsSnapshot {
            cache_hits: 3,
            cache_misses: 1,
            ..StorageStatsSnapshot::default()
        };
        assert!((snap.cache_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
