//! I/O accounting for the lower storage level.
//!
//! The CTUP schemes are judged by how rarely they touch the lower level, so
//! every store counts its accesses. Counters use atomics because reads go
//! through `&self`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters owned by a store. Reads are `&self`, hence atomics.
#[derive(Debug, Default)]
pub struct StorageStats {
    cell_reads: AtomicU64,
    records_read: AtomicU64,
    pages_read: AtomicU64,
    io_nanos: AtomicU64,
}

impl StorageStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one lower-level cell access delivering `records` records
    /// from `pages` pages with `io_nanos` of (simulated) I/O time.
    pub fn record_cell_read(&self, records: u64, pages: u64, io_nanos: u64) {
        self.cell_reads.fetch_add(1, Ordering::Relaxed);
        self.records_read.fetch_add(records, Ordering::Relaxed);
        self.pages_read.fetch_add(pages, Ordering::Relaxed);
        self.io_nanos.fetch_add(io_nanos, Ordering::Relaxed);
    }

    /// Current values as a plain snapshot.
    pub fn snapshot(&self) -> StorageStatsSnapshot {
        StorageStatsSnapshot {
            cell_reads: self.cell_reads.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            io_nanos: self.io_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.cell_reads.store(0, Ordering::Relaxed);
        self.records_read.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
        self.io_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`StorageStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageStatsSnapshot {
    /// Number of lower-level cell accesses.
    pub cell_reads: u64,
    /// Total place records delivered by those accesses.
    pub records_read: u64,
    /// Total pages fetched (equals `cell_reads` for unpaged stores).
    pub pages_read: u64,
    /// Total simulated I/O time in nanoseconds.
    pub io_nanos: u64,
}

impl StorageStatsSnapshot {
    /// Component-wise difference since `earlier`; saturates at zero.
    pub fn since(&self, earlier: &StorageStatsSnapshot) -> StorageStatsSnapshot {
        StorageStatsSnapshot {
            cell_reads: self.cell_reads.saturating_sub(earlier.cell_reads),
            records_read: self.records_read.saturating_sub(earlier.records_read),
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            io_nanos: self.io_nanos.saturating_sub(earlier.io_nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = StorageStats::new();
        s.record_cell_read(10, 2, 100);
        s.record_cell_read(5, 1, 50);
        let snap = s.snapshot();
        assert_eq!(snap.cell_reads, 2);
        assert_eq!(snap.records_read, 15);
        assert_eq!(snap.pages_read, 3);
        assert_eq!(snap.io_nanos, 150);
        s.reset();
        assert_eq!(s.snapshot(), StorageStatsSnapshot::default());
    }

    #[test]
    fn since_computes_deltas() {
        let s = StorageStats::new();
        s.record_cell_read(10, 2, 100);
        let a = s.snapshot();
        s.record_cell_read(1, 1, 1);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.cell_reads, 1);
        assert_eq!(d.records_read, 1);
        // Saturation instead of wrap on inverted order.
        assert_eq!(a.since(&b).cell_reads, 0);
    }
}
