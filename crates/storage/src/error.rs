//! Typed failures of the lower storage level.
//!
//! A real disk can fail transiently (a read times out) or persistently
//! (a page was torn mid-write, a bit rotted). The store surfaces both as
//! [`StorageError`] instead of panicking or silently serving damaged
//! records, so the layers above can retry, fail over, or give up with a
//! precise diagnosis.

use std::fmt;

/// Why a single record failed to decode from a page payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The payload ended in the middle of a record.
    Truncated,
    /// The record tag byte is neither the point nor the extended tag.
    UnknownTag(u8),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "payload truncated mid-record"),
            RecordError::UnknownTag(tag) => write!(f, "unknown record tag {tag}"),
        }
    }
}

/// How a page frame failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The frame is shorter than its fixed header — a torn write that cut
    /// into the header itself.
    TruncatedFrame,
    /// The header's payload length disagrees with the bytes present — the
    /// signature of a torn (partial) page write.
    LengthMismatch,
    /// The payload bytes do not match the stored CRC32 — bit rot or an
    /// in-place overwrite.
    ChecksumMismatch,
    /// The checksum held but the payload still failed record decoding;
    /// only reachable if the frame was written corrupt.
    BadRecord(RecordError),
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::TruncatedFrame => write!(f, "frame shorter than its header"),
            CorruptKind::LengthMismatch => write!(f, "payload length mismatch (torn write)"),
            CorruptKind::ChecksumMismatch => write!(f, "checksum mismatch (bit rot)"),
            CorruptKind::BadRecord(e) => write!(f, "record decode failed: {e}"),
        }
    }
}

/// A lower-level read failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// A transient I/O error that persisted through the whole retry
    /// budget (`attempts` reads were tried in total).
    Io {
        /// The page whose read failed last.
        page: u32,
        /// Total read attempts made before giving up.
        attempts: u32,
    },
    /// A page failed frame validation; retrying cannot help because the
    /// damage is on the medium.
    CorruptPage {
        /// The damaged page.
        page: u32,
        /// What exactly failed.
        kind: CorruptKind,
    },
}

impl StorageError {
    /// Whether retrying the read may succeed (transient faults only).
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Io { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { page, attempts } => {
                write!(f, "I/O error reading page {page} ({attempts} attempts)")
            }
            StorageError::CorruptPage { page, kind } => {
                write!(f, "corrupt page {page}: {kind}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = StorageError::Io {
            page: 7,
            attempts: 4,
        };
        assert!(e.to_string().contains("page 7"));
        assert!(e.is_transient());
        let e = StorageError::CorruptPage {
            page: 3,
            kind: CorruptKind::ChecksumMismatch,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(!e.is_transient());
        let e = StorageError::CorruptPage {
            page: 3,
            kind: CorruptKind::BadRecord(RecordError::UnknownTag(9)),
        };
        assert!(e.to_string().contains("tag 9"));
    }
}
