//! Paged, simulated-disk lower level.
//!
//! The paper's figure-9 discussion notes that with places actually on disk
//! the cell-access cost would dominate. [`PagedDiskStore`] makes that
//! regime measurable: each cell's records are serialized into fixed-size
//! checksummed page frames at build time, and every read validates and
//! decodes the frames and (optionally) burns a configurable per-page
//! latency, counted in [`StorageStats`].
//!
//! Every page is a self-validating frame:
//!
//! ```text
//! [payload_len: u16 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! A torn (partial) write shows up as a length mismatch, a flipped bit as
//! a checksum mismatch; both surface as typed [`StorageError`]s instead of
//! silently wrong records.

use crate::checksum::crc32;
use crate::error::{CorruptKind, RecordError, StorageError};
use crate::place::{PlaceId, PlaceRecord};
use crate::stats::StorageStats;
use crate::store::{partition_by_cell, PlaceStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ctup_spatial::{CellId, CellLayout, Grid, Point, Rect};
use std::borrow::Cow;
use std::time::Instant;

/// Fixed page size in bytes, frame header included.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of the page frame header: payload length (u16) + CRC32 (u32).
pub const FRAME_HEADER: usize = 6;

const TAG_POINT: u8 = 0;
const TAG_EXTENDED: u8 = 1;

/// Worst-case encoded record size (extended record).
const MAX_RECORD: usize = 57;

/// Encodes one record onto a buffer (25 or 57 bytes).
fn encode_record(buf: &mut BytesMut, record: &PlaceRecord) {
    buf.put_u32_le(record.id.0);
    buf.put_f64_le(record.pos.x);
    buf.put_f64_le(record.pos.y);
    buf.put_u32_le(record.rp);
    match &record.extent {
        None => buf.put_u8(TAG_POINT),
        Some(r) => {
            buf.put_u8(TAG_EXTENDED);
            buf.put_f64_le(r.lo.x);
            buf.put_f64_le(r.lo.y);
            buf.put_f64_le(r.hi.x);
            buf.put_f64_le(r.hi.y);
        }
    }
}

/// Decodes one record from a buffer. Never panics: truncated payloads and
/// unknown tags come back as typed errors.
fn decode_record(buf: &mut impl Buf) -> Result<PlaceRecord, RecordError> {
    // Fixed prefix: id + pos + rp + tag = 25 bytes.
    if buf.remaining() < 25 {
        return Err(RecordError::Truncated);
    }
    let id = PlaceId(buf.get_u32_le());
    let pos = Point::new(buf.get_f64_le(), buf.get_f64_le());
    let rp = buf.get_u32_le();
    let extent = match buf.get_u8() {
        TAG_POINT => None,
        TAG_EXTENDED => {
            if buf.remaining() < 32 {
                return Err(RecordError::Truncated);
            }
            let lo = Point::new(buf.get_f64_le(), buf.get_f64_le());
            let hi = Point::new(buf.get_f64_le(), buf.get_f64_le());
            Some(Rect::new(lo, hi))
        }
        tag => return Err(RecordError::UnknownTag(tag)),
    };
    Ok(PlaceRecord {
        id,
        pos,
        rp,
        extent,
    })
}

/// Wraps a record payload into a checksummed page frame.
fn encode_frame(payload: &[u8]) -> Bytes {
    debug_assert!(payload.len() <= PAGE_SIZE - FRAME_HEADER);
    let mut frame = BytesMut::with_capacity(FRAME_HEADER + payload.len());
    frame.put_u16_le(payload.len() as u16);
    frame.put_u32_le(crc32(payload));
    frame.put_slice(payload);
    frame.freeze()
}

/// Packs `records` into checksummed page frames exactly as
/// [`PagedDiskStore::build`] does for one cell. Public so tests and tools
/// can exercise the page codec without building a whole store.
pub fn encode_pages(records: &[PlaceRecord]) -> Vec<Bytes> {
    let mut pages = Vec::new();
    let mut buf = BytesMut::with_capacity(PAGE_SIZE);
    for record in records {
        if FRAME_HEADER + buf.len() + MAX_RECORD > PAGE_SIZE {
            pages.push(encode_frame(&buf.split()));
            buf.reserve(PAGE_SIZE);
        }
        encode_record(&mut buf, record);
    }
    if !buf.is_empty() {
        pages.push(encode_frame(&buf));
    }
    pages
}

/// Validates one page frame and decodes its records — the exact read-path
/// validation [`PagedDiskStore`] applies, exposed for tests and tools.
pub fn decode_page(frame: &[u8], page: u32) -> Result<Vec<PlaceRecord>, StorageError> {
    let mut records = Vec::new();
    decode_frame(frame, page, &mut records)?;
    Ok(records)
}

/// Validates one page frame and appends its records to `out`.
pub(crate) fn decode_frame(
    frame: &[u8],
    page: u32,
    out: &mut Vec<PlaceRecord>,
) -> Result<(), StorageError> {
    let corrupt = |kind| StorageError::CorruptPage { page, kind };
    if frame.len() < FRAME_HEADER {
        return Err(corrupt(CorruptKind::TruncatedFrame));
    }
    let mut header = &frame[..FRAME_HEADER];
    let len = header.get_u16_le() as usize;
    let crc = header.get_u32_le();
    let payload = &frame[FRAME_HEADER..];
    if payload.len() != len {
        return Err(corrupt(CorruptKind::LengthMismatch));
    }
    if crc32(payload) != crc {
        return Err(corrupt(CorruptKind::ChecksumMismatch));
    }
    let mut buf = payload;
    while buf.has_remaining() {
        out.push(decode_record(&mut buf).map_err(|e| corrupt(CorruptKind::BadRecord(e)))?);
    }
    Ok(())
}

/// Where a cell's records live: a page range plus the record count.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CellLocation {
    pub(crate) first_page: u32,
    pub(crate) num_pages: u32,
    pub(crate) num_records: u32,
}

/// A place store whose lower level is a simulated page-oriented disk.
#[derive(Debug)]
pub struct PagedDiskStore {
    grid: Grid,
    layout: CellLayout,
    pages: Vec<Bytes>,
    directory: Vec<CellLocation>,
    margins: Vec<f64>,
    num_places: usize,
    page_latency_nanos: u64,
    stats: StorageStats,
}

impl PagedDiskStore {
    /// Builds the store with the historical row-major page order; see
    /// [`PagedDiskStore::build_with_layout`].
    pub fn build(grid: Grid, places: Vec<PlaceRecord>, page_latency_nanos: u64) -> Self {
        Self::build_with_layout(grid, places, page_latency_nanos, CellLayout::RowMajor)
    }

    /// Builds the store, packing each cell's records into whole checksummed
    /// page frames. Cells are laid out on the simulated disk in `layout`
    /// order, so under [`CellLayout::ZOrder`] spatially adjacent cells land
    /// on adjacent pages and one protecting circle's reads cluster.
    /// `page_latency_nanos` is busy-waited per page on every read (0
    /// disables the simulated latency).
    pub fn build_with_layout(
        grid: Grid,
        places: Vec<PlaceRecord>,
        page_latency_nanos: u64,
        layout: CellLayout,
    ) -> Self {
        let num_places = places.len();
        let (cells, margins) = partition_by_cell(&grid, places);
        let mut pages = Vec::new();
        let mut directory = vec![
            CellLocation {
                first_page: 0,
                num_pages: 0,
                num_records: 0,
            };
            cells.len()
        ];
        for cell in layout.order(&grid) {
            let records = &cells[cell.index()];
            let first_page = pages.len() as u32;
            // Records never span pages: a new page starts when the next
            // record (worst case 57 bytes) may not fit in the frame.
            pages.extend(encode_pages(records));
            directory[cell.index()] = CellLocation {
                first_page,
                num_pages: pages.len() as u32 - first_page,
                num_records: records.len() as u32,
            };
        }
        PagedDiskStore {
            grid,
            layout,
            pages,
            directory,
            margins,
            num_places,
            page_latency_nanos,
            stats: StorageStats::new(),
        }
    }

    /// Total number of pages on the simulated disk.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    pub(crate) fn location(&self, cell: CellId) -> CellLocation {
        self.directory[cell.index()]
    }

    pub(crate) fn page(&self, idx: u32) -> &[u8] {
        &self.pages[idx as usize]
    }

    /// The cell whose frame range contains `page`, if any.
    pub(crate) fn cell_of_page(&self, page: u32) -> Option<CellId> {
        self.directory
            .iter()
            .position(|loc| (loc.first_page..loc.first_page + loc.num_pages).contains(&page))
            .map(|idx| CellId(idx as u32))
    }

    /// Rewrites one page in place, bypassing the frame codec — the hook the
    /// fault-injecting wrapper uses to model torn writes and bit rot.
    pub(crate) fn mutate_page(&mut self, idx: usize, f: impl FnOnce(&mut Vec<u8>)) {
        let mut bytes = self.pages[idx].to_vec();
        f(&mut bytes);
        self.pages[idx] = Bytes::from(bytes);
    }

    pub(crate) fn simulate_latency(&self, pages: u64) -> u64 {
        if self.page_latency_nanos == 0 {
            return 0;
        }
        let budget = self.page_latency_nanos * pages;
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < budget {
            std::hint::spin_loop();
        }
        budget
    }
}

impl PlaceStore for PagedDiskStore {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn num_places(&self) -> usize {
        self.num_places
    }

    fn layout(&self) -> CellLayout {
        self.layout
    }

    fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
        let loc = self.directory[cell.index()];
        let io_nanos = self.simulate_latency(loc.num_pages as u64);
        let mut records = Vec::with_capacity(loc.num_records as usize);
        for page_idx in loc.first_page..loc.first_page + loc.num_pages {
            if let Err(e) = decode_frame(&self.pages[page_idx as usize], page_idx, &mut records) {
                self.stats.record_corrupt_page();
                return Err(e);
            }
        }
        debug_assert_eq!(records.len(), loc.num_records as usize);
        self.stats
            .record_cell_read(loc.num_records as u64, loc.num_pages as u64, io_nanos);
        Ok(Cow::Owned(records))
    }

    fn cell_extent_margin(&self, cell: CellId) -> f64 {
        self.margins[cell.index()]
    }

    fn cell_pages(&self, cell: CellId) -> u64 {
        u64::from(self.directory[cell.index()].num_pages).max(1)
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }

    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
        let mut records = Vec::new();
        for (idx, page) in self.pages.iter().enumerate() {
            records.clear();
            decode_frame(page, idx as u32, &mut records)?;
            for record in &records {
                f(record);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_places(n: u32) -> Vec<PlaceRecord> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64 / 37.0;
                let y = (i % 23) as f64 / 23.0;
                if i % 5 == 0 {
                    PlaceRecord::extended(
                        PlaceId(i),
                        Point::new(x, y),
                        i % 7,
                        Rect::point(Point::new(x, y)).inflate(0.001),
                    )
                } else {
                    PlaceRecord::point(PlaceId(i), Point::new(x, y), i % 7)
                }
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        for record in sample_places(10) {
            let mut buf = BytesMut::new();
            encode_record(&mut buf, &record);
            let mut read = &buf[..];
            assert_eq!(decode_record(&mut read).expect("decode"), record);
            assert!(!read.has_remaining());
        }
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &sample_places(1)[0]);
        for keep in 0..buf.len() {
            let mut read = &buf[..keep];
            assert_eq!(
                decode_record(&mut read),
                Err(RecordError::Truncated),
                "prefix of {keep} bytes"
            );
        }
        let mut bad = buf.to_vec();
        bad[24] = 7; // the tag byte of a point record
        let mut read = &bad[..];
        assert_eq!(decode_record(&mut read), Err(RecordError::UnknownTag(7)));
    }

    #[test]
    fn frame_roundtrip_and_detection() {
        let mut payload = BytesMut::new();
        for record in sample_places(20) {
            encode_record(&mut payload, &record);
        }
        let frame = encode_frame(&payload);
        let mut out = Vec::new();
        decode_frame(&frame, 0, &mut out).expect("clean frame");
        assert_eq!(out.len(), 20);

        // Torn write: any strict prefix is a typed corruption, never a panic.
        for keep in 0..frame.len() {
            let mut out = Vec::new();
            let err = decode_frame(&frame[..keep], 3, &mut out).expect_err("torn frame");
            assert!(matches!(err, StorageError::CorruptPage { page: 3, .. }));
        }

        // Bit flip anywhere: detected.
        let mut bytes = frame.to_vec();
        for byte in 0..bytes.len() {
            bytes[byte] ^= 0x10;
            let mut out = Vec::new();
            assert!(
                decode_frame(&bytes, 0, &mut out).is_err(),
                "flip at byte {byte} undetected"
            );
            bytes[byte] ^= 0x10;
        }
    }

    #[test]
    fn read_cell_roundtrips_every_cell() {
        let grid = Grid::unit_square(6);
        let places = sample_places(500);
        let mem = crate::memstore::CellLocalStore::build(grid.clone(), places.clone());
        let disk = PagedDiskStore::build(grid.clone(), places, 0);
        for cell in grid.cells() {
            let a = mem.read_cell(cell).expect("mem read").into_owned();
            let b = disk.read_cell(cell).expect("disk read").into_owned();
            assert_eq!(a, b, "cell {cell:?}");
            assert_eq!(
                mem.cell_extent_margin(cell),
                disk.cell_extent_margin(cell),
                "margin of {cell:?}"
            );
        }
        assert_eq!(disk.num_places(), 500);
    }

    #[test]
    fn multi_page_cells() {
        // All 500 places in one cell: > PAGE_SIZE of data, several pages.
        let grid = Grid::unit_square(1);
        let disk = PagedDiskStore::build(grid, sample_places(500), 0);
        assert!(disk.num_pages() >= 3, "got {} pages", disk.num_pages());
        let records = disk.read_cell(CellId(0)).expect("read").into_owned();
        assert_eq!(records.len(), 500);
        let snap = disk.stats().snapshot();
        assert_eq!(snap.cell_reads, 1);
        assert_eq!(snap.pages_read as usize, disk.num_pages());
        assert_eq!(snap.corrupt_pages, 0);
    }

    #[test]
    fn mutated_page_is_detected_not_served() {
        let grid = Grid::unit_square(1);
        let mut disk = PagedDiskStore::build(grid, sample_places(300), 0);
        disk.mutate_page(0, |bytes| bytes[FRAME_HEADER + 2] ^= 0x01);
        let err = disk.read_cell(CellId(0)).expect_err("corruption detected");
        assert!(matches!(
            err,
            StorageError::CorruptPage {
                page: 0,
                kind: CorruptKind::ChecksumMismatch,
            }
        ));
        assert_eq!(disk.stats().snapshot().corrupt_pages, 1);
        assert_eq!(disk.stats().snapshot().cell_reads, 0);
        assert_eq!(disk.cell_of_page(0), Some(CellId(0)));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "busy-waits on the wall clock, which Miri does not advance usefully"
    )]
    fn simulated_latency_is_counted() {
        let grid = Grid::unit_square(1);
        let disk = PagedDiskStore::build(grid, sample_places(50), 1_000);
        let start = Instant::now();
        disk.read_cell(CellId(0)).expect("read");
        let elapsed = start.elapsed().as_nanos() as u64;
        let snap = disk.stats().snapshot();
        assert!(snap.io_nanos >= 1_000);
        assert!(elapsed >= snap.io_nanos);
    }

    #[test]
    fn zorder_layout_serves_identical_records() {
        let grid = Grid::unit_square(6);
        let places = sample_places(500);
        let row = PagedDiskStore::build(grid.clone(), places.clone(), 0);
        let z = PagedDiskStore::build_with_layout(grid.clone(), places, 0, CellLayout::ZOrder);
        assert_eq!(row.layout(), CellLayout::RowMajor);
        assert_eq!(z.layout(), CellLayout::ZOrder);
        assert_eq!(row.num_pages(), z.num_pages());
        for cell in grid.cells() {
            assert_eq!(
                row.read_cell(cell).expect("row read").into_owned(),
                z.read_cell(cell).expect("z read").into_owned(),
                "cell {cell:?}"
            );
            assert_eq!(
                row.cell_extent_margin(cell),
                z.cell_extent_margin(cell),
                "margin of {cell:?}"
            );
        }
    }

    #[test]
    fn zorder_layout_packs_pages_in_morton_order() {
        let grid = Grid::unit_square(6);
        let z = PagedDiskStore::build_with_layout(
            grid.clone(),
            sample_places(500),
            0,
            CellLayout::ZOrder,
        );
        // Walking cells in Z-order must walk the disk front to back: each
        // cell's range starts exactly where the previous one ended.
        let mut next_page = 0u32;
        for cell in CellLayout::ZOrder.order(&grid) {
            let loc = z.location(cell);
            assert_eq!(loc.first_page, next_page, "cell {cell:?}");
            next_page += loc.num_pages;
        }
        assert_eq!(next_page as usize, z.num_pages());
    }

    #[test]
    fn for_each_place_sees_everything_without_accounting() {
        let disk = PagedDiskStore::build(Grid::unit_square(3), sample_places(123), 0);
        let mut n = 0;
        disk.for_each_place(&mut |_| n += 1).expect("scan");
        assert_eq!(n, 123);
        assert_eq!(disk.stats().snapshot().cell_reads, 0);
    }
}
