//! Paged, simulated-disk lower level.
//!
//! The paper's figure-9 discussion notes that with places actually on disk
//! the cell-access cost would dominate. [`PagedDiskStore`] makes that
//! regime measurable: each cell's records are serialized into fixed-size
//! pages at build time, and every read decodes the pages and (optionally)
//! burns a configurable per-page latency, counted in [`StorageStats`].

use crate::place::{PlaceId, PlaceRecord};
use crate::stats::StorageStats;
use crate::store::{partition_by_cell, PlaceStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ctup_spatial::{CellId, Grid, Point, Rect};
use std::borrow::Cow;
use std::time::Instant;

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 4096;

const TAG_POINT: u8 = 0;
const TAG_EXTENDED: u8 = 1;

/// Encodes one record onto a buffer (25 or 57 bytes).
fn encode_record(buf: &mut BytesMut, record: &PlaceRecord) {
    buf.put_u32_le(record.id.0);
    buf.put_f64_le(record.pos.x);
    buf.put_f64_le(record.pos.y);
    buf.put_u32_le(record.rp);
    match &record.extent {
        None => buf.put_u8(TAG_POINT),
        Some(r) => {
            buf.put_u8(TAG_EXTENDED);
            buf.put_f64_le(r.lo.x);
            buf.put_f64_le(r.lo.y);
            buf.put_f64_le(r.hi.x);
            buf.put_f64_le(r.hi.y);
        }
    }
}

/// Decodes one record from a buffer.
fn decode_record(buf: &mut impl Buf) -> PlaceRecord {
    let id = PlaceId(buf.get_u32_le());
    let pos = Point::new(buf.get_f64_le(), buf.get_f64_le());
    let rp = buf.get_u32_le();
    let extent = match buf.get_u8() {
        TAG_POINT => None,
        TAG_EXTENDED => {
            let lo = Point::new(buf.get_f64_le(), buf.get_f64_le());
            let hi = Point::new(buf.get_f64_le(), buf.get_f64_le());
            Some(Rect::new(lo, hi))
        }
        // ctup-lint: allow(L001, a corrupt page is unrecoverable store damage — failing fast beats silently serving wrong records to the monitor)
        tag => panic!("corrupt page: unknown record tag {tag}"),
    };
    PlaceRecord {
        id,
        pos,
        rp,
        extent,
    }
}

/// Where a cell's records live: a page range plus the record count.
#[derive(Debug, Clone, Copy)]
struct CellLocation {
    first_page: u32,
    num_pages: u32,
    num_records: u32,
}

/// A place store whose lower level is a simulated page-oriented disk.
#[derive(Debug)]
pub struct PagedDiskStore {
    grid: Grid,
    pages: Vec<Bytes>,
    directory: Vec<CellLocation>,
    margins: Vec<f64>,
    num_places: usize,
    page_latency_nanos: u64,
    stats: StorageStats,
}

impl PagedDiskStore {
    /// Builds the store, packing each cell's records into whole pages.
    /// `page_latency_nanos` is busy-waited per page on every read
    /// (0 disables the simulated latency).
    pub fn build(grid: Grid, places: Vec<PlaceRecord>, page_latency_nanos: u64) -> Self {
        let num_places = places.len();
        let (cells, margins) = partition_by_cell(&grid, places);
        let mut pages = Vec::new();
        let mut directory = Vec::with_capacity(cells.len());
        for records in &cells {
            let first_page = pages.len() as u32;
            let mut buf = BytesMut::with_capacity(PAGE_SIZE);
            for record in records {
                // Records never span pages: start a new page when the next
                // record (worst case 57 bytes) may not fit.
                if buf.len() + 57 > PAGE_SIZE {
                    pages.push(buf.split().freeze());
                    buf.reserve(PAGE_SIZE);
                }
                encode_record(&mut buf, record);
            }
            if !buf.is_empty() {
                pages.push(buf.freeze());
            }
            directory.push(CellLocation {
                first_page,
                num_pages: pages.len() as u32 - first_page,
                num_records: records.len() as u32,
            });
        }
        PagedDiskStore {
            grid,
            pages,
            directory,
            margins,
            num_places,
            page_latency_nanos,
            stats: StorageStats::new(),
        }
    }

    /// Total number of pages on the simulated disk.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn simulate_latency(&self, pages: u64) -> u64 {
        if self.page_latency_nanos == 0 {
            return 0;
        }
        let budget = self.page_latency_nanos * pages;
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < budget {
            std::hint::spin_loop();
        }
        budget
    }
}

impl PlaceStore for PagedDiskStore {
    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn num_places(&self) -> usize {
        self.num_places
    }

    fn read_cell(&self, cell: CellId) -> Cow<'_, [PlaceRecord]> {
        let loc = self.directory[cell.index()];
        let io_nanos = self.simulate_latency(loc.num_pages as u64);
        let mut records = Vec::with_capacity(loc.num_records as usize);
        for page_idx in loc.first_page..loc.first_page + loc.num_pages {
            let mut page = &self.pages[page_idx as usize][..];
            while page.has_remaining() {
                records.push(decode_record(&mut page));
            }
        }
        debug_assert_eq!(records.len(), loc.num_records as usize);
        self.stats
            .record_cell_read(loc.num_records as u64, loc.num_pages as u64, io_nanos);
        Cow::Owned(records)
    }

    fn cell_extent_margin(&self, cell: CellId) -> f64 {
        self.margins[cell.index()]
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }

    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) {
        for page in &self.pages {
            let mut buf = &page[..];
            while buf.has_remaining() {
                f(&decode_record(&mut buf));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_places(n: u32) -> Vec<PlaceRecord> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64 / 37.0;
                let y = (i % 23) as f64 / 23.0;
                if i % 5 == 0 {
                    PlaceRecord::extended(
                        PlaceId(i),
                        Point::new(x, y),
                        i % 7,
                        Rect::point(Point::new(x, y)).inflate(0.001),
                    )
                } else {
                    PlaceRecord::point(PlaceId(i), Point::new(x, y), i % 7)
                }
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        for record in sample_places(10) {
            let mut buf = BytesMut::new();
            encode_record(&mut buf, &record);
            let mut read = &buf[..];
            assert_eq!(decode_record(&mut read), record);
            assert!(!read.has_remaining());
        }
    }

    #[test]
    fn read_cell_roundtrips_every_cell() {
        let grid = Grid::unit_square(6);
        let places = sample_places(500);
        let mem = crate::memstore::CellLocalStore::build(grid.clone(), places.clone());
        let disk = PagedDiskStore::build(grid.clone(), places, 0);
        for cell in grid.cells() {
            let a = mem.read_cell(cell).into_owned();
            let b = disk.read_cell(cell).into_owned();
            assert_eq!(a, b, "cell {cell:?}");
            assert_eq!(
                mem.cell_extent_margin(cell),
                disk.cell_extent_margin(cell),
                "margin of {cell:?}"
            );
        }
        assert_eq!(disk.num_places(), 500);
    }

    #[test]
    fn multi_page_cells() {
        // All 500 places in one cell: > PAGE_SIZE of data, several pages.
        let grid = Grid::unit_square(1);
        let disk = PagedDiskStore::build(grid, sample_places(500), 0);
        assert!(disk.num_pages() >= 3, "got {} pages", disk.num_pages());
        let records = disk.read_cell(CellId(0)).into_owned();
        assert_eq!(records.len(), 500);
        let snap = disk.stats().snapshot();
        assert_eq!(snap.cell_reads, 1);
        assert_eq!(snap.pages_read as usize, disk.num_pages());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "busy-waits on the wall clock, which Miri does not advance usefully"
    )]
    fn simulated_latency_is_counted() {
        let grid = Grid::unit_square(1);
        let disk = PagedDiskStore::build(grid, sample_places(50), 1_000);
        let start = Instant::now();
        disk.read_cell(CellId(0));
        let elapsed = start.elapsed().as_nanos() as u64;
        let snap = disk.stats().snapshot();
        assert!(snap.io_nanos >= 1_000);
        assert!(elapsed >= snap.io_nanos);
    }

    #[test]
    fn for_each_place_sees_everything_without_accounting() {
        let disk = PagedDiskStore::build(Grid::unit_square(3), sample_places(123), 0);
        let mut n = 0;
        disk.for_each_place(&mut |_| n += 1);
        assert_eq!(n, 123);
        assert_eq!(disk.stats().snapshot().cell_reads, 0);
    }
}
