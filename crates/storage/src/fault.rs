//! Seeded, deterministic disk-fault injection.
//!
//! [`FaultDisk`] wraps a [`PagedDiskStore`] and makes it lie the way real
//! disks do: reads fail transiently, pages are torn by partial writes,
//! bits rot, and latency spikes. Every fault is driven by one seed so a
//! chaos scenario replays exactly. Because the paged store's frames are
//! CRC32-checksummed, persistent damage is *detected* — a corrupt page
//! yields a typed [`StorageError`], never silently wrong records — while
//! transient faults are absorbed by a configurable
//! retry-with-exponential-backoff [`RetryPolicy`].
//!
//! Fault taxonomy:
//!
//! | fault            | when injected | effect on a read                    |
//! |------------------|---------------|-------------------------------------|
//! | transient error  | per attempt   | `Io` error; a retry may succeed     |
//! | torn page write  | at build      | frame length mismatch, every read   |
//! | bit flip         | at build      | checksum mismatch, every read       |
//! | latency spike    | per read      | extra simulated I/O nanoseconds     |

use crate::diskstore::{decode_frame, PagedDiskStore};
use crate::error::StorageError;
use crate::place::PlaceRecord;
use crate::stats::StorageStats;
use crate::store::PlaceStore;
use ctup_spatial::{CellId, Grid};
use parking_lot::Mutex;
use std::borrow::Cow;

/// SplitMix64 — a tiny, high-quality seeded generator. Hand-rolled so the
/// storage crate's fault layer needs no runtime dependency and behaves
/// identically on every platform.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform in `0..n` (`n > 0`).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n.max(1)
    }
}

/// A seeded description of how the simulated disk misbehaves. All faults
/// default to off; `0.0` / `0` disables the corresponding class.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFaultPlan {
    /// RNG seed; two disks built from the same plan over the same places
    /// are damaged identically and fail reads identically.
    pub seed: u64,
    /// Probability that reading one page transiently fails (rolled per
    /// attempt, so retries can succeed).
    pub read_error_prob: f64,
    /// Number of pages torn at build time (truncated to a partial write).
    pub torn_writes: u32,
    /// Number of single-bit flips applied to pages at build time.
    pub bit_flips: u32,
    /// Probability a page read takes a latency spike.
    pub latency_spike_prob: f64,
    /// Extra simulated nanoseconds charged per latency spike.
    pub latency_spike_nanos: u64,
}

impl Default for DiskFaultPlan {
    fn default() -> Self {
        DiskFaultPlan {
            seed: 0,
            read_error_prob: 0.0,
            torn_writes: 0,
            bit_flips: 0,
            latency_spike_prob: 0.0,
            latency_spike_nanos: 50_000,
        }
    }
}

impl DiskFaultPlan {
    /// Whether the plan injects any fault at all.
    pub fn is_active(&self) -> bool {
        self.read_error_prob > 0.0
            || self.torn_writes > 0
            || self.bit_flips > 0
            || self.latency_spike_prob > 0.0
    }
}

/// Retry-with-exponential-backoff policy for transient read failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failed read (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff charged before the first retry, in simulated nanoseconds.
    pub base_backoff_nanos: u64,
    /// Upper bound on a single backoff step.
    pub max_backoff_nanos: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_nanos: 2_000,
            max_backoff_nanos: 1_000_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): `base * 2^retry`,
    /// capped at `max_backoff_nanos`.
    pub fn backoff_nanos(&self, retry: u32) -> u64 {
        let factor = 2u64.saturating_pow(retry);
        self.base_backoff_nanos
            .saturating_mul(factor)
            .min(self.max_backoff_nanos)
    }
}

/// A paged store behind a seeded fault injector.
///
/// Build-time faults (torn writes, bit flips) damage the pages themselves;
/// run-time faults (transient errors, latency spikes) are rolled per read
/// attempt. Counters land in the shared [`StorageStats`]: successful reads
/// in the usual access counters, failures in `read_retries`,
/// `read_giveups` and `corrupt_pages`.
#[derive(Debug)]
pub struct FaultDisk {
    inner: PagedDiskStore,
    plan: DiskFaultPlan,
    retry: RetryPolicy,
    rng: Mutex<SplitMix64>,
    corrupted_pages: Vec<u32>,
}

impl FaultDisk {
    /// Builds the underlying paged store with the row-major layout; see
    /// [`FaultDisk::build_with_layout`].
    pub fn build(
        grid: Grid,
        places: Vec<PlaceRecord>,
        page_latency_nanos: u64,
        plan: DiskFaultPlan,
        retry: RetryPolicy,
    ) -> Self {
        Self::build_with_layout(
            grid,
            places,
            page_latency_nanos,
            plan,
            retry,
            ctup_spatial::CellLayout::RowMajor,
        )
    }

    /// Builds the underlying paged store in `layout` page order and applies
    /// the plan's build-time damage (torn writes first, then bit flips; a
    /// page may suffer both). The damage is rolled over *physical* page
    /// indices, so the same plan corrupts different cells under different
    /// layouts — chaos suites pin both when comparing runs.
    pub fn build_with_layout(
        grid: Grid,
        places: Vec<PlaceRecord>,
        page_latency_nanos: u64,
        plan: DiskFaultPlan,
        retry: RetryPolicy,
        layout: ctup_spatial::CellLayout,
    ) -> Self {
        let mut inner = PagedDiskStore::build_with_layout(grid, places, page_latency_nanos, layout);
        let mut rng = SplitMix64::new(plan.seed);
        let mut corrupted_pages = Vec::new();
        let num_pages = inner.num_pages() as u64;
        if num_pages > 0 {
            for _ in 0..plan.torn_writes {
                let idx = rng.below(num_pages);
                let keep_frac = rng.next_f64();
                inner.mutate_page(idx as usize, |bytes| {
                    // A partial write persists some strict prefix.
                    let keep = ((bytes.len() as f64) * keep_frac) as usize;
                    bytes.truncate(keep.min(bytes.len().saturating_sub(1)));
                });
                corrupted_pages.push(idx as u32);
            }
            for _ in 0..plan.bit_flips {
                let idx = rng.below(num_pages);
                let byte_pick = rng.next_u64();
                let bit = (rng.next_u64() % 8) as u8;
                inner.mutate_page(idx as usize, |bytes| {
                    if !bytes.is_empty() {
                        let byte = (byte_pick % bytes.len() as u64) as usize;
                        bytes[byte] ^= 1 << bit;
                    }
                });
                corrupted_pages.push(idx as u32);
            }
        }
        corrupted_pages.sort_unstable();
        corrupted_pages.dedup();
        FaultDisk {
            inner,
            plan,
            retry,
            rng: Mutex::new(rng),
            corrupted_pages,
        }
    }

    /// The pages damaged at build time, ascending.
    pub fn corrupted_pages(&self) -> &[u32] {
        &self.corrupted_pages
    }

    /// The cells whose page ranges contain build-time damage — reads of
    /// these cells will fail with `CorruptPage` until repaired.
    pub fn corrupted_cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self
            .corrupted_pages
            .iter()
            .filter_map(|&page| self.inner.cell_of_page(page))
            .collect();
        cells.sort_unstable_by_key(|c| c.0);
        cells.dedup();
        cells
    }

    /// The fault plan this disk was built with.
    pub fn plan(&self) -> &DiskFaultPlan {
        &self.plan
    }

    /// The retry policy applied to transient failures.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// One read attempt over the cell's pages: rolls the transient faults,
    /// then validates and decodes every frame.
    fn try_read_cell(&self, cell: CellId) -> Result<(Vec<PlaceRecord>, u64), StorageError> {
        let loc = self.inner.location(cell);
        let mut spike_nanos = 0u64;
        {
            let mut rng = self.rng.lock();
            for page in loc.first_page..loc.first_page + loc.num_pages {
                if rng.chance(self.plan.read_error_prob) {
                    return Err(StorageError::Io { page, attempts: 1 });
                }
                if rng.chance(self.plan.latency_spike_prob) {
                    spike_nanos += self.plan.latency_spike_nanos;
                }
            }
        }
        let mut records = Vec::with_capacity(loc.num_records as usize);
        for page in loc.first_page..loc.first_page + loc.num_pages {
            decode_frame(self.inner.page(page), page, &mut records)?;
        }
        Ok((records, spike_nanos))
    }
}

impl PlaceStore for FaultDisk {
    fn grid(&self) -> &Grid {
        self.inner.grid()
    }

    fn num_places(&self) -> usize {
        self.inner.num_places()
    }

    fn layout(&self) -> ctup_spatial::CellLayout {
        self.inner.layout()
    }

    fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError> {
        let loc = self.inner.location(cell);
        let stats = self.inner.stats();
        let mut backoff_nanos = 0u64;
        let mut attempts = 0u32;
        loop {
            match self.try_read_cell(cell) {
                Ok((records, spike_nanos)) => {
                    let io_nanos = self.inner.simulate_latency(loc.num_pages as u64)
                        + spike_nanos
                        + backoff_nanos;
                    stats.record_cell_read(loc.num_records as u64, loc.num_pages as u64, io_nanos);
                    return Ok(Cow::Owned(records));
                }
                Err(e) => {
                    if let StorageError::CorruptPage { .. } = e {
                        stats.record_corrupt_page();
                    }
                    attempts += 1;
                    if attempts > self.retry.max_retries {
                        stats.record_giveup();
                        return Err(match e {
                            StorageError::Io { page, .. } => StorageError::Io { page, attempts },
                            corrupt => corrupt,
                        });
                    }
                    // Backoff is simulated, not slept: it is charged to the
                    // I/O time of the eventually successful read.
                    backoff_nanos += self.retry.backoff_nanos(attempts - 1);
                    stats.record_retry();
                }
            }
        }
    }

    fn cell_extent_margin(&self, cell: CellId) -> f64 {
        self.inner.cell_extent_margin(cell)
    }

    fn cell_pages(&self, cell: CellId) -> u64 {
        self.inner.cell_pages(cell)
    }

    fn stats(&self) -> &StorageStats {
        self.inner.stats()
    }

    /// Bulk initialization scan: build-time damage is still detected, but
    /// transient faults are not injected (a bulk load would stream, not
    /// seek, and the chaos scenarios target the per-cell read path).
    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError> {
        self.inner.for_each_place(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CorruptKind;
    use crate::place::PlaceId;
    use ctup_spatial::Point;

    fn sample_places(n: u32) -> Vec<PlaceRecord> {
        (0..n)
            .map(|i| {
                let x = (i % 31) as f64 / 31.0;
                let y = (i % 17) as f64 / 17.0;
                PlaceRecord::point(PlaceId(i), Point::new(x, y), 1 + i % 5)
            })
            .collect()
    }

    fn quiet_disk(plan: DiskFaultPlan, retry: RetryPolicy) -> FaultDisk {
        FaultDisk::build(Grid::unit_square(4), sample_places(400), 0, plan, retry)
    }

    #[test]
    fn no_faults_behaves_like_the_paged_store() {
        let disk = quiet_disk(DiskFaultPlan::default(), RetryPolicy::default());
        assert!(!disk.plan().is_active());
        assert!(disk.corrupted_pages().is_empty());
        let mem = crate::memstore::CellLocalStore::build(Grid::unit_square(4), sample_places(400));
        for cell in disk.grid().cells().collect::<Vec<_>>() {
            let a = disk.read_cell(cell).expect("fault-free read").into_owned();
            let b = mem.read_cell(cell).expect("mem read").into_owned();
            assert_eq!(a, b, "cell {cell:?}");
        }
        let snap = disk.stats().snapshot();
        assert_eq!(snap.read_retries, 0);
        assert_eq!(snap.read_giveups, 0);
        assert_eq!(snap.corrupt_pages, 0);
    }

    #[test]
    fn same_seed_same_damage() {
        let plan = DiskFaultPlan {
            seed: 77,
            torn_writes: 3,
            bit_flips: 3,
            ..DiskFaultPlan::default()
        };
        let a = quiet_disk(plan.clone(), RetryPolicy::default());
        let b = quiet_disk(plan.clone(), RetryPolicy::default());
        assert_eq!(a.corrupted_pages(), b.corrupted_pages());
        assert!(!a.corrupted_pages().is_empty());
        let c = quiet_disk(DiskFaultPlan { seed: 78, ..plan }, RetryPolicy::default());
        assert_ne!(a.corrupted_pages(), c.corrupted_pages());
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let plan = DiskFaultPlan {
            seed: 5,
            read_error_prob: 0.3,
            ..DiskFaultPlan::default()
        };
        let disk = quiet_disk(plan, RetryPolicy::default());
        let mut failures = 0u64;
        for _ in 0..20 {
            for cell in disk.grid().cells().collect::<Vec<_>>() {
                if disk.read_cell(cell).is_err() {
                    failures += 1;
                }
            }
        }
        let snap = disk.stats().snapshot();
        assert!(snap.read_retries > 0, "no retries at 30% fault rate");
        // With a 3-retry budget a run of 4 consecutive failures is rare but
        // possible at 30%; whatever failed must be accounted as a giveup.
        assert_eq!(snap.read_giveups, failures);
        assert_eq!(snap.corrupt_pages, 0);
        assert!(snap.io_nanos > 0, "backoff must be charged to I/O time");
    }

    #[test]
    fn always_failing_reads_give_up_with_attempt_count() {
        let plan = DiskFaultPlan {
            seed: 9,
            read_error_prob: 1.0,
            ..DiskFaultPlan::default()
        };
        let retry = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let disk = quiet_disk(plan, retry);
        let cell = disk.grid().cells().next().expect("a cell");
        let err = disk.read_cell(cell).expect_err("must give up");
        assert_eq!(
            err,
            StorageError::Io {
                page: disk.inner.location(cell).first_page,
                attempts: 3,
            }
        );
        let snap = disk.stats().snapshot();
        assert_eq!(snap.read_retries, 2);
        assert_eq!(snap.read_giveups, 1);
        assert_eq!(snap.cell_reads, 0);
    }

    #[test]
    fn torn_writes_and_bit_flips_are_always_detected() {
        let plan = DiskFaultPlan {
            seed: 1234,
            torn_writes: 4,
            bit_flips: 4,
            ..DiskFaultPlan::default()
        };
        let disk = quiet_disk(plan, RetryPolicy::default());
        let damaged = disk.corrupted_cells();
        assert!(!damaged.is_empty());
        for cell in disk.grid().cells().collect::<Vec<_>>() {
            match disk.read_cell(cell) {
                Ok(records) => {
                    // Zero silent wrong reads: a cell that decodes must not
                    // overlap the damaged set.
                    assert!(
                        !damaged.contains(&cell),
                        "damaged cell {cell:?} served records"
                    );
                    for r in records.iter() {
                        assert_eq!(disk.grid().cell_of(r.pos), cell);
                    }
                }
                Err(e) => {
                    assert!(matches!(e, StorageError::CorruptPage { .. }), "{e}");
                    assert!(damaged.contains(&cell), "clean cell {cell:?} failed: {e}");
                }
            }
        }
        let snap = disk.stats().snapshot();
        assert!(snap.corrupt_pages > 0);
        assert!(snap.read_giveups > 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let retry = RetryPolicy {
            max_retries: 10,
            base_backoff_nanos: 1_000,
            max_backoff_nanos: 16_000,
        };
        assert_eq!(retry.backoff_nanos(0), 1_000);
        assert_eq!(retry.backoff_nanos(1), 2_000);
        assert_eq!(retry.backoff_nanos(3), 8_000);
        assert_eq!(retry.backoff_nanos(5), 16_000);
        assert_eq!(retry.backoff_nanos(63), 16_000);
    }

    #[test]
    fn latency_spikes_are_charged() {
        let plan = DiskFaultPlan {
            seed: 3,
            latency_spike_prob: 1.0,
            latency_spike_nanos: 1_000,
            ..DiskFaultPlan::default()
        };
        let disk = quiet_disk(plan, RetryPolicy::default());
        let cell = disk.grid().cells().next().expect("a cell");
        disk.read_cell(cell).expect("read");
        assert!(disk.stats().snapshot().io_nanos >= 1_000);
    }

    #[test]
    fn corrupt_kind_is_precise() {
        // A torn page must be reported as torn, a flipped page as checksum.
        let torn = quiet_disk(
            DiskFaultPlan {
                seed: 42,
                torn_writes: 1,
                ..DiskFaultPlan::default()
            },
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        );
        let cell = torn.corrupted_cells()[0];
        let err = torn.read_cell(cell).expect_err("torn");
        assert!(matches!(
            err,
            StorageError::CorruptPage {
                kind: CorruptKind::LengthMismatch | CorruptKind::TruncatedFrame,
                ..
            }
        ));
    }
}
