//! Plain-text snapshots of place data sets.
//!
//! A deliberately tiny line-oriented format (one record per line) so that
//! examples can persist and reload generated workloads without pulling in a
//! serialization framework:
//!
//! ```text
//! #ctup-places v1
//! <id> <x> <y> <rp> [<lo.x> <lo.y> <hi.x> <hi.y>]
//! ```

use crate::place::{PlaceId, PlaceRecord};
use ctup_spatial::{Point, Rect};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Header line identifying the format version.
const HEADER: &str = "#ctup-places v1";

/// Errors raised while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Writes `places` to `w` in the snapshot format.
pub fn write_places<W: Write>(mut w: W, places: &[PlaceRecord]) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for p in places {
        match &p.extent {
            None => writeln!(w, "{} {} {} {}", p.id.0, p.pos.x, p.pos.y, p.rp)?,
            Some(r) => writeln!(
                w,
                "{} {} {} {} {} {} {} {}",
                p.id.0, p.pos.x, p.pos.y, p.rp, r.lo.x, r.lo.y, r.hi.x, r.hi.y
            )?,
        }
    }
    Ok(())
}

fn parse_err(line: usize, message: impl Into<String>) -> SnapshotError {
    SnapshotError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads places from `r`, validating the header and every record.
pub fn read_places<R: BufRead>(r: R) -> Result<Vec<PlaceRecord>, SnapshotError> {
    let mut places = Vec::new();
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| parse_err(1, "empty file"))??;
    if header.trim() != HEADER {
        return Err(parse_err(
            1,
            format!("bad header {header:?}, expected {HEADER:?}"),
        ));
    }
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_ascii_whitespace().collect();
        if fields.len() != 4 && fields.len() != 8 {
            return Err(parse_err(
                line_no,
                format!("expected 4 or 8 fields, got {}", fields.len()),
            ));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|e| parse_err(line_no, format!("bad id: {e}")))?;
        // rp is parsed as the integer it is — going through f64 would need a
        // float-exactness check to reject fractional values.
        let rp: u32 = fields[3]
            .parse()
            .map_err(|e| parse_err(line_no, format!("rp must be a non-negative integer: {e}")))?;
        let mut nums = [0.0f64; 7];
        for (i, field) in fields[1..].iter().enumerate() {
            if i == 2 {
                continue; // rp, parsed above
            }
            nums[i] = field
                .parse()
                .map_err(|e| parse_err(line_no, format!("bad number {field:?}: {e}")))?;
        }
        let pos = Point::new(nums[0], nums[1]);
        let extent = if fields.len() == 8 {
            let lo = Point::new(nums[3], nums[4]);
            let hi = Point::new(nums[5], nums[6]);
            if lo.x > hi.x || lo.y > hi.y {
                return Err(parse_err(line_no, "extent corners out of order"));
            }
            let rect = Rect::new(lo, hi);
            if !rect.contains_point(pos) {
                return Err(parse_err(line_no, "extent does not contain position"));
            }
            Some(rect)
        } else {
            None
        };
        places.push(PlaceRecord {
            id: PlaceId(id),
            pos,
            rp,
            extent,
        });
    }
    Ok(places)
}

/// Saves `places` to a file.
pub fn save_places(path: &Path, places: &[PlaceRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_places(&mut w, places)?;
    w.flush()
}

/// Loads places from a file.
pub fn load_places(path: &Path) -> Result<Vec<PlaceRecord>, SnapshotError> {
    read_places(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PlaceRecord> {
        vec![
            PlaceRecord::point(PlaceId(0), Point::new(0.25, 0.75), 3),
            PlaceRecord::extended(
                PlaceId(1),
                Point::new(0.5, 0.5),
                6,
                Rect::from_coords(0.45, 0.45, 0.55, 0.55),
            ),
            PlaceRecord::point(PlaceId(2), Point::new(0.0, 1.0), 0),
        ]
    }

    #[test]
    fn roundtrip() {
        let places = sample();
        let mut buf = Vec::new();
        write_places(&mut buf, &places).unwrap();
        let read = read_places(buf.as_slice()).unwrap();
        assert_eq!(read, places);
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let text = format!("{HEADER}\n\n# a comment\n5 0.1 0.2 4\n");
        let read = read_places(text.as_bytes()).unwrap();
        assert_eq!(
            read,
            vec![PlaceRecord::point(PlaceId(5), Point::new(0.1, 0.2), 4)]
        );
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_places("#wrong\n".as_bytes()).unwrap_err();
        assert!(matches!(err, SnapshotError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_malformed_records() {
        let cases = [
            "1 0.5",                       // wrong field count
            "x 0.5 0.5 1",                 // bad id
            "1 0.5 zz 1",                  // bad number
            "1 0.5 0.5 -2",                // negative rp
            "1 0.5 0.5 1.5",               // fractional rp
            "1 0.5 0.5 1 0.9 0.9 0.1 0.1", // inverted extent
            "1 0.5 0.5 1 0.6 0.6 0.9 0.9", // extent misses pos
        ];
        for case in cases {
            let text = format!("{HEADER}\n{case}\n");
            let err = read_places(text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Parse { line: 2, .. }),
                "case {case:?} gave {err}"
            );
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "touches the real filesystem; the in-memory roundtrip above covers the codec"
    )]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ctup-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("places.txt");
        let places = sample();
        save_places(&path, &places).unwrap();
        assert_eq!(load_places(&path).unwrap(), places);
        std::fs::remove_file(&path).unwrap();
    }
}
