//! The `PlaceStore` abstraction — the lower level of the paper's two-level
//! storage model.
//!
//! The lower level stores *all* places, partitioned by grid cell, and is
//! only touched when a CTUP scheme has to "illuminate" or "access" a cell.
//! Whether it is backed by memory or a (simulated) disk, every access is
//! accounted through [`StorageStats`].

use crate::error::StorageError;
use crate::place::PlaceRecord;
use crate::stats::StorageStats;
use ctup_spatial::{CellId, CellLayout, Grid};
use std::borrow::Cow;

/// Read-only, cell-partitioned access to the full place set.
///
/// Stores are `Send + Sync` (access counters use atomics) so query
/// processors built over an `Arc<dyn PlaceStore>` can move across threads,
/// e.g. into the ingestion pipeline's worker.
pub trait PlaceStore: Send + Sync {
    /// The grid partitioning the space (shared with the higher level).
    fn grid(&self) -> &Grid;

    /// Total number of places.
    fn num_places(&self) -> usize;

    /// Loads every place of `cell` from the lower level, counting the
    /// access. Returns borrowed data for memory-resident stores and owned
    /// data for stores that must decode pages. Paged stores surface
    /// transient I/O failures and detected corruption as [`StorageError`];
    /// memory-resident stores never fail.
    fn read_cell(&self, cell: CellId) -> Result<Cow<'_, [PlaceRecord]>, StorageError>;

    /// Largest extent margin among the places of `cell`
    /// (see [`PlaceRecord::extent_margin`]); zero for point data sets.
    fn cell_extent_margin(&self, cell: CellId) -> f64;

    /// Lower-level footprint of `cell` in pages — the weight a cell-read
    /// cache charges for keeping it resident. Unpaged stores count every
    /// cell as one page.
    fn cell_pages(&self, _cell: CellId) -> u64 {
        1
    }

    /// The physical cell layout of the lower level — the order adjacent
    /// cells are packed on disk. Memory-resident stores are layout-agnostic
    /// and report the row-major default; checkpoints carry this tag so
    /// recovery re-binds to the same physical layout.
    fn layout(&self) -> CellLayout {
        CellLayout::RowMajor
    }

    /// Hands the store a batch-scoped working-set hint — the cells the
    /// next batch of demand reads may touch — so it can steer whatever
    /// read acceleration it has (e.g. pin them in a cell-read cache and
    /// re-warm just-evicted ones). Best effort: failures are swallowed
    /// here and surface on the demand read. The default is a no-op;
    /// callers should gate the (possibly expensive) cell-set computation
    /// on [`PlaceStore::wants_prefetch`].
    fn prefetch(&self, _cells: &[CellId]) {}

    /// Whether [`PlaceStore::prefetch`] does anything useful for this
    /// store. `false` for stores without a warmable cache.
    fn wants_prefetch(&self) -> bool {
        false
    }

    /// The access counters.
    fn stats(&self) -> &StorageStats;

    /// Iterates over all places without touching the counters — intended
    /// for initialization oracles and tests, not for query processing.
    /// Stops at the first undecodable page.
    fn for_each_place(&self, f: &mut dyn FnMut(&PlaceRecord)) -> Result<(), StorageError>;
}

/// Helper shared by store builders: partitions places into per-cell vectors
/// by the cell of their position.
pub(crate) fn partition_by_cell(
    grid: &Grid,
    places: Vec<PlaceRecord>,
) -> (Vec<Vec<PlaceRecord>>, Vec<f64>) {
    let mut cells: Vec<Vec<PlaceRecord>> = vec![Vec::new(); grid.num_cells()];
    let mut margins = vec![0.0f64; grid.num_cells()];
    for place in places {
        let cell = grid.cell_of(place.pos);
        let m = place.extent_margin();
        if m > margins[cell.index()] {
            margins[cell.index()] = m;
        }
        cells[cell.index()].push(place);
    }
    (cells, margins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlaceId;
    use ctup_spatial::{Point, Rect};

    #[test]
    fn partition_assigns_by_position() {
        let grid = Grid::unit_square(2);
        let places = vec![
            PlaceRecord::point(PlaceId(0), Point::new(0.1, 0.1), 1),
            PlaceRecord::point(PlaceId(1), Point::new(0.9, 0.1), 1),
            PlaceRecord::point(PlaceId(2), Point::new(0.9, 0.9), 1),
            PlaceRecord::extended(
                PlaceId(3),
                Point::new(0.25, 0.75),
                2,
                Rect::from_coords(0.2, 0.7, 0.3, 0.8),
            ),
        ];
        let (cells, margins) = partition_by_cell(&grid, places);
        assert_eq!(cells[0].len(), 1);
        assert_eq!(cells[1].len(), 1);
        assert_eq!(cells[2].len(), 1); // cell (0,1) holds the extended place
        assert_eq!(cells[3].len(), 1);
        assert_eq!(margins[0], 0.0);
        let half_diag = (0.05f64 * 0.05 * 2.0).sqrt();
        assert!((margins[2] - half_diag).abs() < 1e-12);
    }
}
