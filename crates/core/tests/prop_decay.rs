//! Property-based conformance of the decayed-protection monitor (future
//! work #2): on arbitrary configurations and update streams, the grid
//! monitor must agree with the brute-force decay oracle for every kernel,
//! up to floating-point accumulation tolerance.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_core::ext::decay::{DecayConfig, DecayCtup, DecayKernel, DecayMode, DecayOracle};
use ctup_core::types::{Place, PlaceId};
use ctup_spatial::{Grid, Point};
use ctup_storage::{CellLocalStore, PlaceStore};
use proptest::prelude::*;
use std::sync::Arc;

fn point() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn kernel() -> impl Strategy<Value = DecayKernel> {
    prop_oneof![
        (0.03f64..0.3).prop_map(|radius| DecayKernel::Step { radius }),
        (0.03f64..0.3).prop_map(|radius| DecayKernel::Cone { radius }),
        (0.02f64..0.1, 0.05f64..0.3)
            .prop_map(|(sigma, cutoff)| DecayKernel::Gaussian { sigma, cutoff }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn decay_monitor_matches_oracle(
        places_raw in prop::collection::vec((point(), 0u32..5), 1..40),
        units in prop::collection::vec(point(), 1..8),
        updates_raw in prop::collection::vec((any::<prop::sample::Index>(), point()), 1..30),
        kernel in kernel(),
        k in 1usize..6,
        delta in 0.0f64..2.0,
        g in 2u32..8,
    ) {
        let places: Vec<Place> = places_raw
            .into_iter()
            .enumerate()
            .map(|(i, (pos, rp))| Place::point(PlaceId(i as u32), pos, rp))
            .collect();
        let oracle = DecayOracle::new(places.clone(), kernel);
        let store: Arc<dyn PlaceStore> =
            Arc::new(CellLocalStore::build(Grid::unit_square(g), places));
        let mode = DecayMode::TopK(k);
        let mut positions = units.clone();
        let mut monitor =
            DecayCtup::new(DecayConfig { kernel, mode, delta }, store, &units)
                .expect("clean store");

        let check = |monitor: &DecayCtup, positions: &[Point]| {
            let got = monitor.result();
            let want = oracle.result(positions, mode);
            prop_assert_eq!(got.len(), want.len());
            for (g_entry, w_entry) in got.iter().zip(&want) {
                prop_assert!(
                    (g_entry.safety - w_entry.safety).abs() < 1e-6,
                    "got {:?} want {:?}", got, want
                );
            }
            Ok(())
        };
        check(&monitor, &positions)?;
        for (idx, new) in updates_raw {
            let unit = idx.index(positions.len());
            monitor.handle_update(unit as u32, new).expect("clean store");
            positions[unit] = new;
            check(&monitor, &positions)?;
        }
        monitor.check_lb_invariant(1e-6);
    }
}
