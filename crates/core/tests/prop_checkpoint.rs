//! Property tests of the checkpoint text codec: arbitrary monitor states —
//! lease/gate state included — must round-trip exactly, and truncated or
//! byte-corrupted files must come back as typed errors, never panics or
//! absurd allocations.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_core::checkpoint::Checkpoint;
use ctup_core::config::{CtupConfig, QueryMode};
use ctup_core::ingest::{GateState, GateUnitState};
use ctup_core::types::{Place, PlaceId, UnitId, LB_NONE};
use ctup_spatial::{CellId, CellLayout, Point, Rect};
use proptest::prelude::*;

fn point01() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn config() -> impl Strategy<Value = CtupConfig> {
    (
        prop_oneof![
            (1usize..30).prop_map(QueryMode::TopK),
            (-10i64..10).prop_map(QueryMode::Threshold),
        ],
        0.01f64..0.5,
        0i64..10,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(mode, radius, delta, doo, purge)| CtupConfig {
            mode,
            protection_radius: radius,
            delta,
            doo_enabled: doo,
            purge_dechash_on_access: purge,
        })
}

fn place() -> impl Strategy<Value = Place> {
    (
        0u32..5_000,
        point01(),
        0u32..6,
        proptest::option::of((0.0f64..0.2, 0.0f64..0.2, 0.0f64..0.2, 0.0f64..0.2)),
    )
        .prop_map(|(id, pos, rp, extent)| match extent {
            None => Place::point(PlaceId(id), pos, rp),
            // The extent is grown outward from `pos` so it always contains
            // it — `Place::extended` debug-asserts exactly that.
            Some((l, r, d, u)) => Place::extended(
                PlaceId(id),
                pos,
                rp,
                Rect::from_coords(pos.x - l, pos.y - d, pos.x + r, pos.y + u),
            ),
        })
}

fn gate_unit() -> impl Strategy<Value = GateUnitState> {
    (
        proptest::option::of(any::<u64>()),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(last_seq, last_seen, alive)| GateUnitState {
            last_seq,
            last_seen,
            alive,
        })
}

fn gate() -> impl Strategy<Value = Option<GateState>> {
    proptest::option::of(
        (any::<u64>(), prop::collection::vec(gate_unit(), 0..8))
            .prop_map(|(now, units)| GateState { now, units }),
    )
}

fn layout() -> impl Strategy<Value = CellLayout> {
    prop_oneof![Just(CellLayout::RowMajor), Just(CellLayout::ZOrder)]
}

fn checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        config(),
        layout(),
        prop::collection::vec(point01(), 0..12),
        prop::collection::vec(prop_oneof![Just(LB_NONE), -15i64..15], 0..20),
        prop::collection::vec((place(), -10i64..10, 0u32..64), 0..10),
        prop::collection::vec((0u32..40, 0u32..64), 0..10),
        gate(),
    )
        .prop_map(
            |(config, layout, unit_positions, lower_bounds, maintained, dechash, gate)| {
                Checkpoint {
                    config,
                    layout,
                    unit_positions,
                    lower_bounds,
                    maintained: maintained
                        .into_iter()
                        .map(|(p, s, c)| (p, s, CellId(c)))
                        .collect(),
                    dechash: dechash
                        .into_iter()
                        .map(|(u, c)| (UnitId(u), CellId(c)))
                        .collect(),
                    gate,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn text_codec_roundtrips_exactly(cp in checkpoint()) {
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back, cp);
    }

    #[test]
    fn truncation_yields_an_error_not_a_panic(cp in checkpoint(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let cut = ((buf.len() as f64 * frac) as usize).min(buf.len().saturating_sub(1));
        let parsed = Checkpoint::read(&buf[..cut]);
        // Cutting only the final newline still parses; any deeper cut must
        // surface as an error.
        if cut + 1 < buf.len() {
            prop_assert!(parsed.is_err());
        }
    }

    #[test]
    fn byte_corruption_never_panics(
        cp in checkpoint(),
        pos_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut buf = Vec::new();
        cp.write(&mut buf).unwrap();
        let pos = ((buf.len() as f64 * pos_frac) as usize).min(buf.len() - 1);
        buf[pos] = byte;
        // Typed result either way — a lucky corruption may still parse
        // (e.g. flipping a digit), but it must never panic or hang.
        let _ = Checkpoint::read(buf.as_slice());
    }
}
