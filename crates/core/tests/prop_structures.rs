//! Property-based model tests of the core data structures: the
//! safety-ordered multiset and the lower-bound directory must behave like
//! their obvious reference models under arbitrary operation sequences.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_core::lbdir::LbDirectory;
use ctup_core::topk::SafetyOrdered;
use ctup_core::types::{PlaceId, Safety, LB_NONE};
use ctup_spatial::CellId;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum TopOp {
    Insert(u32, Safety),
    Remove(u32),
    Update(u32, Safety),
}

fn top_ops() -> impl Strategy<Value = Vec<TopOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..30, -20i64..20).prop_map(|(id, s)| TopOp::Insert(id, s)),
            (0u32..30).prop_map(TopOp::Remove),
            (0u32..30, -20i64..20).prop_map(|(id, s)| TopOp::Update(id, s)),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn safety_ordered_matches_model(ops in top_ops(), k in 1usize..8, bound in -10i64..10) {
        let mut sut = SafetyOrdered::new();
        let mut model: HashMap<u32, Safety> = HashMap::new();
        for op in ops {
            match op {
                TopOp::Insert(id, s) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(id) {
                        e.insert(s);
                        sut.insert(PlaceId(id), s);
                    }
                }
                TopOp::Remove(id) => {
                    if let Some(s) = model.remove(&id) {
                        sut.remove(PlaceId(id), s);
                    }
                }
                TopOp::Update(id, s) => {
                    if let Some(old) = model.get(&id).copied() {
                        sut.update(PlaceId(id), old, s);
                        model.insert(id, s);
                    }
                }
            }
        }
        prop_assert_eq!(sut.len(), model.len());
        let mut sorted: Vec<(Safety, u32)> =
            model.iter().map(|(&id, &s)| (s, id)).collect();
        sorted.sort_unstable();
        // kth_safety.
        let expect_kth = sorted.get(k - 1).map(|&(s, _)| s);
        prop_assert_eq!(sut.kth_safety(k), expect_kth);
        // top_k order.
        let got: Vec<(Safety, u32)> =
            sut.top_k(k).into_iter().map(|e| (e.safety, e.place.0)).collect();
        let expect: Vec<(Safety, u32)> = sorted.iter().take(k).copied().collect();
        prop_assert_eq!(got, expect);
        // below(bound).
        let got_below: Vec<(Safety, u32)> =
            sut.below(bound).into_iter().map(|e| (e.safety, e.place.0)).collect();
        let expect_below: Vec<(Safety, u32)> =
            sorted.iter().take_while(|&&(s, _)| s < bound).copied().collect();
        prop_assert_eq!(got_below, expect_below);
    }
}

#[derive(Debug, Clone)]
enum LbOp {
    Set(u8, Safety),
    Add(u8, Safety),
    Detach(u8),
    Attach(u8, Safety),
}

fn lb_ops() -> impl Strategy<Value = Vec<LbOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..12, -15i64..15).prop_map(|(c, s)| LbOp::Set(c, s)),
            (0u8..12, -3i64..3).prop_map(|(c, s)| LbOp::Add(c, s)),
            (0u8..12).prop_map(LbOp::Detach),
            (0u8..12, -15i64..15).prop_map(|(c, s)| LbOp::Attach(c, s)),
        ],
        0..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn lb_directory_matches_model(ops in lb_ops()) {
        let mut sut = LbDirectory::new(12);
        // Model: Some(lb) = attached, None = detached.
        let mut model: Vec<Option<Safety>> = vec![Some(LB_NONE); 12];
        for op in ops {
            match op {
                LbOp::Set(c, s) => {
                    if model[c as usize].is_some() {
                        model[c as usize] = Some(s);
                        sut.set(CellId(c as u32), s);
                    }
                }
                LbOp::Add(c, s) => {
                    if let Some(old) = model[c as usize] {
                        let fresh = if old == LB_NONE { LB_NONE } else { old + s };
                        model[c as usize] = Some(fresh);
                        prop_assert_eq!(sut.add(CellId(c as u32), s), fresh);
                    }
                }
                LbOp::Detach(c) => {
                    if model[c as usize].take().is_some() {
                        sut.detach(CellId(c as u32));
                    }
                }
                LbOp::Attach(c, s) => {
                    if model[c as usize].is_none() {
                        model[c as usize] = Some(s);
                        sut.attach(CellId(c as u32), s);
                    }
                }
            }
        }
        sut.check_invariants();
        for (i, slot) in model.iter().enumerate() {
            let cell = CellId(i as u32);
            prop_assert_eq!(sut.is_attached(cell), slot.is_some());
            if let Some(lb) = slot {
                prop_assert_eq!(sut.get(cell), *lb);
            }
        }
        // Ordered iteration equals the sorted attached model.
        let mut expect: Vec<(Safety, u32)> = model
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|lb| (lb, i as u32)))
            .collect();
        expect.sort_unstable();
        let got: Vec<(Safety, u32)> =
            sut.iter_increasing().map(|(lb, c)| (lb, c.0)).collect();
        prop_assert_eq!(sut.first().map(|(lb, c)| (lb, c.0)), expect.first().copied());
        prop_assert_eq!(got, expect);
    }
}
