//! Property tests of the wire frame codec, replication frames included:
//! arbitrary messages must round-trip bit-exactly through the incremental
//! decoder (whole, truncated-and-resumed, or trickled byte by byte), and
//! hostile headers — oversized frames, foreign protocol versions, unknown
//! tags, oversized checkpoint chunks — must come back as typed
//! `WireError`s, never panics or unbounded allocations.
//!
//! Test code: the workspace-wide expect/unwrap denies target library
//! code; panicking on an unexpected fault is exactly what a test should
//! do (clippy's test exemption does not reach integration-test helpers).
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ctup_core::net::wire::{
    ByeReason, DecodeError, FrameDecoder, Message, WireError, MAX_CHUNK_DATA, MAX_FRAME_LEN,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use ctup_core::net::ShedReason;
use proptest::prelude::*;
use std::io::Read;

fn coord() -> impl Strategy<Value = f64> {
    // Finite coordinates only: NaN breaks the equality the round-trip
    // asserts; bit-exact NaN transport is pinned by the unit tests.
    prop_oneof![
        -1.0e6f64..1.0e6,
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE),
    ]
}

fn shed_reason() -> impl Strategy<Value = ShedReason> {
    prop_oneof![
        Just(ShedReason::QueueFull),
        Just(ShedReason::DeadlineExceeded),
        Just(ShedReason::SessionQuota),
        Just(ShedReason::EngineDegraded),
    ]
}

fn bye_reason() -> impl Strategy<Value = ByeReason> {
    prop_oneof![
        Just(ByeReason::Done),
        Just(ByeReason::ServerFull),
        Just(ByeReason::ProtocolError),
        Just(ByeReason::Shutdown),
    ]
}

/// Every message variant, replication frames included.
fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u64>().prop_map(|resume_session| Message::Hello { resume_session }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            coord(),
            coord(),
            any::<u64>()
        )
            .prop_map(|(seq, unit_seq, ts, unit, x, y, trace)| Message::Report {
                seq,
                unit_seq,
                ts,
                unit,
                x,
                y,
                trace,
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(session, handled_up_to)| Message::Ack {
            session,
            handled_up_to,
        }),
        (any::<u64>(), shed_reason()).prop_map(|(seq, reason)| Message::Shed { seq, reason }),
        (
            any::<bool>(),
            proptest::collection::vec((any::<u32>(), any::<i64>()), 0..16)
        )
            .prop_map(|(degraded, entries)| Message::SnapshotPush { degraded, entries }),
        bye_reason().prop_map(|reason| Message::Bye { reason }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(epoch, slot_seq, total_len)| {
            Message::CheckpointOffer {
                epoch,
                slot_seq,
                total_len,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(epoch, offset, data)| Message::CheckpointChunk {
                epoch,
                offset,
                data,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            coord(),
            coord(),
            any::<u64>()
        )
            .prop_map(
                |(epoch, unit_seq, ts, unit, x, y, trace)| Message::WalAppend {
                    epoch,
                    unit_seq,
                    ts,
                    unit,
                    x,
                    y,
                    trace,
                }
            ),
        any::<u64>().prop_map(|epoch| Message::PromoteQuery { epoch }),
    ]
}

/// A reader that hands out the stream in caller-chosen slice sizes, so
/// the decoder's partial-frame state machine is exercised at arbitrary
/// split points.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    sizes: Vec<usize>,
    next_size: usize,
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let step = self.sizes[self.next_size % self.sizes.len()].max(1);
        self.next_size += 1;
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Drives the decoder to the next message, riding through the
/// read-budget timeouts a trickling reader provokes.
fn decode_next(decoder: &mut FrameDecoder, reader: &mut Chunked) -> Result<Message, DecodeError> {
    loop {
        match decoder.read_from(reader) {
            Err(e) if e.is_timeout() => {}
            other => return other,
        }
    }
}

proptest! {
    /// A stream of arbitrary messages delivered at arbitrary split points
    /// round-trips exactly, in order.
    #[test]
    fn streams_round_trip_at_any_split(
        msgs in proptest::collection::vec(message(), 1..8),
        sizes in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let mut bytes = Vec::new();
        for msg in &msgs {
            msg.encode(&mut bytes);
        }
        let mut reader = Chunked { data: bytes, pos: 0, sizes, next_size: 0 };
        let mut decoder = FrameDecoder::new();
        for expected in &msgs {
            let got = decode_next(&mut decoder, &mut reader).expect("decode");
            prop_assert_eq!(&got, expected);
        }
        match decode_next(&mut decoder, &mut reader) {
            Err(DecodeError::Closed { mid_frame }) => prop_assert!(!mid_frame),
            other => prop_assert!(false, "expected clean close: {:?}", other),
        }
    }

    /// Cutting a frame anywhere is reported as a closed stream — torn
    /// exactly when bytes of the frame had already arrived — never a
    /// panic or a phantom message.
    #[test]
    fn truncation_is_a_typed_close(msg in message(), cut_sel in any::<proptest::sample::Index>()) {
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        let cut = cut_sel.index(bytes.len()); // 0..len: always a strict prefix
        bytes.truncate(cut);
        let mut reader = Chunked { data: bytes, pos: 0, sizes: vec![usize::MAX], next_size: 0 };
        let mut decoder = FrameDecoder::new();
        match decode_next(&mut decoder, &mut reader) {
            Err(DecodeError::Closed { mid_frame }) => prop_assert_eq!(mid_frame, cut > 0),
            other => prop_assert!(false, "expected closed: {:?}", other),
        }
    }

    /// A header claiming a payload beyond [`MAX_FRAME_LEN`] is rejected
    /// from the header alone — before any payload is read or buffered.
    #[test]
    fn oversized_frames_are_rejected_from_the_header(
        claimed in (u32::try_from(MAX_FRAME_LEN).unwrap() + 1)..=u32::MAX,
        tag in any::<u8>(),
    ) {
        let mut bytes = claimed.to_le_bytes().to_vec();
        bytes.push(PROTOCOL_VERSION);
        bytes.push(tag);
        let mut reader = Chunked { data: bytes, pos: 0, sizes: vec![usize::MAX], next_size: 0 };
        let mut decoder = FrameDecoder::new();
        match decode_next(&mut decoder, &mut reader) {
            Err(DecodeError::Wire(WireError::FrameTooLong { claimed: c })) => {
                prop_assert_eq!(c, u64::from(claimed));
            }
            other => prop_assert!(false, "expected FrameTooLong: {:?}", other),
        }
    }

    /// A well-formed frame at a foreign protocol version is refused with
    /// the offending version, whatever the message was.
    #[test]
    fn foreign_versions_are_rejected(msg in message(), version in any::<u8>()) {
        // Anything inside MIN..=current is a *supported* wire version
        // (v1 frames decode with trace = 0); only versions outside the
        // band are foreign.
        prop_assume!(!(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version));
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        bytes[4] = version; // header layout: [len:4][version:1][type:1]
        let mut reader = Chunked { data: bytes, pos: 0, sizes: vec![usize::MAX], next_size: 0 };
        let mut decoder = FrameDecoder::new();
        match decode_next(&mut decoder, &mut reader) {
            Err(DecodeError::Wire(WireError::UnsupportedVersion(v))) => {
                prop_assert_eq!(v, version);
            }
            other => prop_assert!(false, "expected UnsupportedVersion: {:?}", other),
        }
    }

    /// An unknown message tag is refused with the offending tag.
    #[test]
    fn unknown_tags_are_rejected(msg in message(), tag in 11u8..=u8::MAX) {
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        bytes[5] = tag;
        let mut reader = Chunked { data: bytes, pos: 0, sizes: vec![usize::MAX], next_size: 0 };
        let mut decoder = FrameDecoder::new();
        match decode_next(&mut decoder, &mut reader) {
            Err(DecodeError::Wire(WireError::UnknownType(t))) => prop_assert_eq!(t, tag),
            other => prop_assert!(false, "expected UnknownType: {:?}", other),
        }
    }

    /// A hand-crafted checkpoint chunk claiming more than
    /// [`MAX_CHUNK_DATA`] bytes is refused even though it fits under the
    /// frame cap — and the honest encoder can never produce one: it clamps
    /// oversized data to the cap on the way out.
    #[test]
    fn oversized_chunks_are_rejected(
        epoch in any::<u64>(),
        offset in any::<u64>(),
        extra in 1u32..512,
    ) {
        let chunk_cap = u32::try_from(MAX_CHUNK_DATA).unwrap();
        let claimed = chunk_cap + extra;
        let mut payload = Vec::new();
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.extend_from_slice(&offset.to_le_bytes());
        payload.extend_from_slice(&claimed.to_le_bytes());
        payload.resize(payload.len() + usize::try_from(claimed).unwrap(), 0xA5);
        let mut bytes = u32::try_from(payload.len()).unwrap().to_le_bytes().to_vec();
        bytes.push(PROTOCOL_VERSION);
        bytes.push(8); // tag::CHECKPOINT_CHUNK
        bytes.extend_from_slice(&payload);
        let mut reader = Chunked { data: bytes, pos: 0, sizes: vec![usize::MAX], next_size: 0 };
        let mut decoder = FrameDecoder::new();
        match decode_next(&mut decoder, &mut reader) {
            Err(DecodeError::Wire(WireError::ChunkTooLong(n))) => {
                prop_assert_eq!(n, u64::from(claimed));
            }
            other => prop_assert!(false, "expected ChunkTooLong: {:?}", other),
        }

        // The honest encoder clamps instead: an oversized chunk goes out
        // (and comes back) truncated to the cap, never as a codec error.
        let msg = Message::CheckpointChunk {
            epoch,
            offset,
            data: vec![0xA5; MAX_CHUNK_DATA + usize::try_from(extra).unwrap()],
        };
        let mut bytes = Vec::new();
        msg.encode(&mut bytes);
        let mut reader = Chunked { data: bytes, pos: 0, sizes: vec![usize::MAX], next_size: 0 };
        let mut decoder = FrameDecoder::new();
        match decode_next(&mut decoder, &mut reader) {
            Ok(Message::CheckpointChunk { data, .. }) => {
                prop_assert_eq!(data.len(), MAX_CHUNK_DATA);
            }
            other => prop_assert!(false, "expected clamped chunk: {:?}", other),
        }
    }
}
