//! Brute-force ground truth for testing and verification.
//!
//! The oracle recomputes every place's safety from scratch against the full
//! unit set. It is deliberately simple (no shared code with the monitored
//! algorithms beyond the protection predicate) so that agreement between an
//! algorithm and the oracle is meaningful evidence of correctness.

use crate::config::QueryMode;
use crate::types::{protects, Place, Safety, TopKEntry};
use ctup_spatial::Point;
use ctup_storage::{PlaceStore, StorageError};

/// A reference implementation computing exact results by exhaustive scan.
#[derive(Debug, Clone)]
pub struct Oracle {
    places: Vec<Place>,
}

impl Oracle {
    /// Creates an oracle over an explicit place list.
    pub fn new(places: Vec<Place>) -> Self {
        Oracle { places }
    }

    /// Creates an oracle over every place of a store (bypasses I/O
    /// accounting). Fails if the store's bulk scan hits corruption.
    pub fn from_store(store: &dyn PlaceStore) -> Result<Self, StorageError> {
        let mut places = Vec::with_capacity(store.num_places());
        store.for_each_place(&mut |p| places.push(p.clone()))?;
        Ok(Oracle { places })
    }

    /// The place set.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Exact safety of one place given all unit positions.
    pub fn safety_of(&self, place: &Place, units: &[Point], radius: f64) -> Safety {
        let ap = units
            .iter()
            .filter(|&&u| protects(u, radius, place))
            .count();
        ap as Safety - place.rp as Safety
    }

    /// Exact safeties of all places, in place order.
    pub fn safeties(&self, units: &[Point], radius: f64) -> Vec<Safety> {
        self.places
            .iter()
            .map(|p| self.safety_of(p, units, radius))
            .collect()
    }

    /// The exact monitored result under `mode`, sorted by `(safety, id)`.
    pub fn result(&self, units: &[Point], radius: f64, mode: QueryMode) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self
            .places
            .iter()
            .map(|p| TopKEntry {
                place: p.id,
                safety: self.safety_of(p, units, radius),
            })
            .collect();
        entries.sort_by_key(|e| (e.safety, e.place));
        match mode {
            QueryMode::TopK(k) => {
                entries.truncate(k);
                entries
            }
            QueryMode::Threshold(tau) => {
                entries.retain(|e| e.safety < tau);
                entries
            }
        }
    }

    /// The exact `SK` (safety of the k-th unsafe place), `None` when fewer
    /// than `k` places exist.
    pub fn sk(&self, units: &[Point], radius: f64, k: usize) -> Option<Safety> {
        let mut safeties = self.safeties(units, radius);
        if safeties.len() < k {
            return None;
        }
        safeties.sort_unstable();
        Some(safeties[k - 1])
    }

    /// Asserts that `got` is a correct answer for `mode`: the safety
    /// multiset must match the exact result (place ids may differ among
    /// equal-safety entries at the `SK` boundary — ties are unordered by
    /// definition) and every reported safety must be the place's true one.
    ///
    /// # Panics
    /// Panics with a diagnostic when the result is wrong.
    pub fn assert_result_matches(
        &self,
        got: &[TopKEntry],
        units: &[Point],
        radius: f64,
        mode: QueryMode,
    ) {
        let expect = self.result(units, radius, mode);
        let got_safeties: Vec<Safety> = got.iter().map(|e| e.safety).collect();
        let expect_safeties: Vec<Safety> = expect.iter().map(|e| e.safety).collect();
        assert_eq!(
            got_safeties, expect_safeties,
            "safety multiset mismatch: got {got:?}, expected {expect:?}"
        );
        // Each reported entry must carry the true safety of that place.
        for entry in got {
            let place = self
                .places
                .iter()
                .find(|p| p.id == entry.place)
                // ctup-lint: allow(L001, the oracle is an assertion harness — a reported place missing from the data set must fail the calling test)
                .unwrap_or_else(|| panic!("{:?} reported but not in data set", entry.place));
            let truth = self.safety_of(place, units, radius);
            assert_eq!(
                entry.safety, truth,
                "{:?} reported with safety {} but truth is {truth}",
                entry.place, entry.safety
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PlaceId;

    fn places() -> Vec<Place> {
        vec![
            Place::point(PlaceId(0), Point::new(0.5, 0.5), 2),
            Place::point(PlaceId(1), Point::new(0.52, 0.5), 1),
            Place::point(PlaceId(2), Point::new(0.9, 0.9), 4),
        ]
    }

    #[test]
    fn safeties_and_sk() {
        let oracle = Oracle::new(places());
        let units = vec![Point::new(0.51, 0.5), Point::new(0.55, 0.5)];
        // Places 0 and 1 protected by both units; place 2 by none.
        assert_eq!(oracle.safeties(&units, 0.1), vec![0, 1, -4]);
        assert_eq!(oracle.sk(&units, 0.1, 1), Some(-4));
        assert_eq!(oracle.sk(&units, 0.1, 3), Some(1));
        assert_eq!(oracle.sk(&units, 0.1, 4), None);
    }

    #[test]
    fn result_topk_and_threshold() {
        let oracle = Oracle::new(places());
        let units = vec![Point::new(0.51, 0.5)];
        let top2 = oracle.result(&units, 0.1, QueryMode::TopK(2));
        assert_eq!(
            top2[0],
            TopKEntry {
                place: PlaceId(2),
                safety: -4
            }
        );
        assert_eq!(
            top2[1],
            TopKEntry {
                place: PlaceId(0),
                safety: -1
            }
        );
        let below = oracle.result(&units, 0.1, QueryMode::Threshold(0));
        assert_eq!(below.len(), 2);
    }

    #[test]
    fn assert_result_accepts_tie_swaps() {
        let mut ps = places();
        ps.push(Place::point(PlaceId(3), Point::new(0.1, 0.1), 4)); // also -4
        let oracle = Oracle::new(ps);
        let units = vec![];
        // True order by id: 2 then 3 (both -4). Swapped ids with the same
        // safeties must be accepted.
        let got = vec![
            TopKEntry {
                place: PlaceId(3),
                safety: -4,
            },
            TopKEntry {
                place: PlaceId(2),
                safety: -4,
            },
        ];
        oracle.assert_result_matches(&got, &units, 0.1, QueryMode::TopK(2));
    }

    #[test]
    #[should_panic(expected = "safety multiset mismatch")]
    fn assert_result_rejects_wrong_safeties() {
        let oracle = Oracle::new(places());
        let got = vec![TopKEntry {
            place: PlaceId(2),
            safety: -3,
        }];
        oracle.assert_result_matches(&got, &[], 0.1, QueryMode::TopK(1));
    }

    #[test]
    #[should_panic(expected = "but truth is")]
    fn assert_result_rejects_mislabelled_place() {
        let oracle = Oracle::new(places());
        let units = vec![];
        // Multiset {-4, -2} is right but place 0 truly has -2, not -4.
        let got = vec![
            TopKEntry {
                place: PlaceId(0),
                safety: -4,
            },
            TopKEntry {
                place: PlaceId(2),
                safety: -2,
            },
        ];
        oracle.assert_result_matches(&got, &units, 0.1, QueryMode::TopK(2));
    }
}
