//! Logical cost counters collected by every CTUP algorithm.
//!
//! Wall-clock numbers depend on hardware; these counters capture the
//! algorithmic quantities the paper argues about — how often cells are
//! accessed, how many lower bounds move, how much state is maintained.

use serde::{Deserialize, Serialize};

/// Cumulative counters; cheap enough to update on every operation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Location updates processed since construction.
    pub updates_processed: u64,
    /// Cells illuminated/accessed (lower-level reads triggered by the
    /// algorithm, excluding initialization).
    pub cells_accessed: u64,
    /// Place records loaded by those accesses.
    pub places_loaded: u64,
    /// Lower-bound increments applied.
    pub lb_increments: u64,
    /// Lower-bound decrements applied.
    pub lb_decrements: u64,
    /// Decrements suppressed by the Decrease-Once Optimization.
    pub lb_decrements_suppressed: u64,
    /// Cells darkened / maintained places evicted back under a lower bound.
    pub cells_darkened: u64,
    /// Number of places currently maintained at the higher level.
    pub maintained_now: u64,
    /// Peak of `maintained_now`.
    pub maintained_peak: u64,
    /// Current number of `(unit, cell)` pairs in DecHash (OptCTUP only).
    pub dechash_len: u64,
    /// Nanoseconds spent updating maintained information (steps 1–2 of the
    /// update algorithms: maintained safeties + lower bounds).
    pub maintain_nanos: u64,
    /// Nanoseconds spent accessing cells (step 3: loading places,
    /// recomputing safeties, filtering).
    pub access_nanos: u64,
    /// Updates after which the reported result changed.
    pub result_changes: u64,
}

impl Metrics {
    /// Records the current maintained-place count, tracking the peak.
    pub fn set_maintained(&mut self, now: u64) {
        self.maintained_now = now;
        if now > self.maintained_peak {
            self.maintained_peak = now;
        }
    }

    /// Component-wise difference since `earlier` for the cumulative fields;
    /// gauge fields (`maintained_now`, `dechash_len`) keep their current
    /// values.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            updates_processed: self.updates_processed - earlier.updates_processed,
            cells_accessed: self.cells_accessed - earlier.cells_accessed,
            places_loaded: self.places_loaded - earlier.places_loaded,
            lb_increments: self.lb_increments - earlier.lb_increments,
            lb_decrements: self.lb_decrements - earlier.lb_decrements,
            lb_decrements_suppressed: self.lb_decrements_suppressed
                - earlier.lb_decrements_suppressed,
            cells_darkened: self.cells_darkened - earlier.cells_darkened,
            maintained_now: self.maintained_now,
            maintained_peak: self.maintained_peak,
            dechash_len: self.dechash_len,
            maintain_nanos: self.maintain_nanos - earlier.maintain_nanos,
            access_nanos: self.access_nanos - earlier.access_nanos,
            result_changes: self.result_changes - earlier.result_changes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_maximum() {
        let mut m = Metrics::default();
        m.set_maintained(10);
        m.set_maintained(3);
        m.set_maintained(7);
        assert_eq!(m.maintained_now, 7);
        assert_eq!(m.maintained_peak, 10);
    }

    #[test]
    fn since_subtracts_counters_but_keeps_gauges() {
        let a = Metrics {
            updates_processed: 10,
            cells_accessed: 4,
            maintained_now: 5,
            ..Metrics::default()
        };
        let mut b = a.clone();
        b.updates_processed = 25;
        b.cells_accessed = 6;
        b.maintained_now = 9;
        let d = b.since(&a);
        assert_eq!(d.updates_processed, 15);
        assert_eq!(d.cells_accessed, 2);
        assert_eq!(d.maintained_now, 9);
    }
}
